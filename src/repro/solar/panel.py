"""PV panel: rated power and energy calibration.

The panel converts the (clear-sky fraction x cloud attenuation) signal to
watts. Rather than exposing raw panel areas and efficiencies — irrelevant
at system level — the panel is *sized by energy budget*: given a clear-sky
model, :meth:`PVPanel.sized_for_daily_energy` returns the rated wattage
that delivers a target kWh on a sunny day, which is how we pin the paper's
8 kWh sunny-day budget for the six-server prototype.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.solar.irradiance import ClearSkyModel
from repro.units import kwh_to_wh


@dataclass(frozen=True)
class PVPanel:
    """A PV array with a rated (peak) power output."""

    rated_w: float
    clear_sky: ClearSkyModel = ClearSkyModel()

    def __post_init__(self) -> None:
        if self.rated_w <= 0:
            raise ConfigurationError("rated_w must be positive")

    def power(self, t: float, attenuation: float = 1.0) -> float:
        """Output power (W) at time ``t`` under a given cloud attenuation."""
        if attenuation < 0:
            raise ConfigurationError("attenuation must be >= 0")
        return self.rated_w * self.clear_sky.fraction(t) * attenuation

    def sunny_day_energy_wh(self) -> float:
        """Energy (Wh) delivered over one fully clear day."""
        return self.rated_w * self.clear_sky.daily_fraction_integral_h()

    @classmethod
    def sized_for_daily_energy(
        cls, sunny_kwh: float, clear_sky: ClearSkyModel | None = None
    ) -> "PVPanel":
        """Size a panel so a clear day yields ``sunny_kwh`` kilowatt-hours.

        The paper's prototype budget is 8 kWh on a sunny day for six
        servers.
        """
        if sunny_kwh <= 0:
            raise ConfigurationError("sunny_kwh must be positive")
        model = clear_sky or ClearSkyModel()
        hours = model.daily_fraction_integral_h()
        if hours <= 0:
            raise ConfigurationError("clear-sky model yields no daylight")
        return cls(rated_w=kwh_to_wh(sunny_kwh) / hours, clear_sky=model)
