"""Solar generation substrate.

Replaces the prototype's rooftop PV line with a synthetic but
shape-faithful generator: a clear-sky diurnal bell modulated by a Markov
cloud process, calibrated so the paper's three weather classes deliver the
daily energy budgets reported in section VI-A (Sunny 8 kWh, Cloudy 6 kWh,
Rainy 3 kWh), plus a sunshine-fraction day-class sampler for the Fig. 14
and Fig. 17 geographic sweeps.
"""

from repro.solar.irradiance import ClearSkyModel
from repro.solar.weather import DayClass, WeatherModel, CloudProcess, day_class_probabilities
from repro.solar.panel import PVPanel
from repro.solar.trace import SolarTrace, SolarTraceGenerator

__all__ = [
    "ClearSkyModel",
    "DayClass",
    "WeatherModel",
    "CloudProcess",
    "day_class_probabilities",
    "PVPanel",
    "SolarTrace",
    "SolarTraceGenerator",
]
