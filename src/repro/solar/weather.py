"""Weather: day classes and the intra-day cloud process.

Two levels of stochasticity:

- **Day classes** (Sunny / Cloudy / Rainy) set a day's mean clearness,
  calibrated to the paper's section VI-A daily energy budgets (8 / 6 /
  3 kWh). The class sequence across days is sampled from probabilities
  derived from the location's *sunshine fraction* — "the percentage of
  time when sunshine is recorded" — the Fig. 14 / Fig. 17 sweep variable.
- **Cloud process**: within a day, a three-state Markov chain
  (clear / partly / overcast) modulates the clear-sky curve, giving the
  intermittency that makes batteries cycle. Transition rates and state
  attenuations depend on the day class (sunny days are steady, cloudy
  days are volatile, rainy days are dim and fairly steady).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.units import clamp


class DayClass(enum.Enum):
    """The paper's three weather scenarios."""

    SUNNY = "sunny"
    CLOUDY = "cloudy"
    RAINY = "rainy"


#: Mean clearness (fraction of clear-sky energy actually delivered) per
#: class, calibrated so a panel sized for 8 kWh on a sunny day yields
#: ~6 kWh cloudy and ~3 kWh rainy (paper section VI-A).
DAY_CLEARNESS: Dict[DayClass, float] = {
    DayClass.SUNNY: 1.00,
    DayClass.CLOUDY: 0.75,
    DayClass.RAINY: 0.375,
}

#: Cloud-state attenuation factors (clear, partly, overcast) per class.
_STATE_ATTENUATION: Dict[DayClass, Tuple[float, float, float]] = {
    DayClass.SUNNY: (1.0, 0.75, 0.45),
    DayClass.CLOUDY: (1.0, 0.55, 0.25),
    DayClass.RAINY: (0.75, 0.45, 0.20),
}

#: Stationary cloud-state probabilities (clear, partly, overcast) per class,
#: chosen so the expected attenuation matches DAY_CLEARNESS.
_STATE_PROBS: Dict[DayClass, Tuple[float, float, float]] = {
    DayClass.SUNNY: (0.92, 0.06, 0.02),
    DayClass.CLOUDY: (0.45, 0.35, 0.20),
    DayClass.RAINY: (0.10, 0.35, 0.55),
}

#: Mean sojourn time (seconds) in a cloud state per class — sunny skies
#: change slowly, broken clouds churn.
_STATE_SOJOURN_S: Dict[DayClass, float] = {
    DayClass.SUNNY: 3600.0,
    DayClass.CLOUDY: 900.0,
    DayClass.RAINY: 1800.0,
}


def day_class_probabilities(sunshine_fraction: float) -> Dict[DayClass, float]:
    """Day-class distribution for a location's sunshine fraction.

    Monotone by construction: more recorded sunshine means more sunny
    days, with the residual split between cloudy and rainy (cloud-heavy
    near the middle, rain-heavy at the dark end).
    """
    if not 0.0 <= sunshine_fraction <= 1.0:
        raise ConfigurationError("sunshine_fraction must be in [0, 1]")
    p_sunny = sunshine_fraction**1.1
    residual = 1.0 - p_sunny
    p_rainy = residual * (1.0 - 0.6 * sunshine_fraction)
    p_cloudy = residual - p_rainy
    return {
        DayClass.SUNNY: p_sunny,
        DayClass.CLOUDY: max(0.0, p_cloudy),
        DayClass.RAINY: max(0.0, p_rainy),
    }


class CloudProcess:
    """Intra-day Markov cloud attenuation for one day class."""

    def __init__(self, day_class: DayClass, rng: np.random.Generator):
        self.day_class = day_class
        self.rng = rng
        self._probs = np.array(_STATE_PROBS[day_class])
        self._atten = _STATE_ATTENUATION[day_class]
        self._sojourn_s = _STATE_SOJOURN_S[day_class]
        self._state = int(rng.choice(3, p=self._probs))
        self._remaining_s = self._draw_sojourn()
        # Normalise so the expected attenuation equals the class clearness.
        expected = float(np.dot(self._probs, self._atten))
        self._scale = DAY_CLEARNESS[day_class] / expected if expected > 0 else 1.0

    def _draw_sojourn(self) -> float:
        return float(self.rng.exponential(self._sojourn_s))

    def attenuation(self, dt: float) -> float:
        """Attenuation factor for the next ``dt`` seconds, advancing the
        chain. Values are clipped to [0, 1.05] (brief cloud-edge
        over-irradiance is real but small)."""
        self._remaining_s -= dt
        if self._remaining_s <= 0.0:
            self._state = int(self.rng.choice(3, p=self._probs))
            self._remaining_s = self._draw_sojourn()
        raw = self._atten[self._state] * self._scale
        return clamp(raw, 0.0, 1.05)


@dataclass
class WeatherModel:
    """Samples day classes for a location.

    Attributes
    ----------
    sunshine_fraction:
        The Fig. 14 sweep variable; 0.5 is a temperate default.
    """

    sunshine_fraction: float = 0.5

    def sample_days(self, n_days: int, rng: np.random.Generator) -> list:
        """Sample ``n_days`` day classes i.i.d. from the location mix."""
        probs = day_class_probabilities(self.sunshine_fraction)
        classes = list(probs.keys())
        p = np.array([probs[c] for c in classes])
        p = p / p.sum()
        draws = rng.choice(len(classes), size=n_days, p=p)
        return [classes[i] for i in draws]
