"""Solar power traces: precomputed per-step generation series.

A :class:`SolarTrace` is the immutable product the simulation engine
consumes: a step duration plus an array of watts. Precomputing traces (a)
makes runs reproducible and policy-independent — every policy in a Fig. 13
comparison sees *exactly* the same irradiance, mirroring the paper's
careful matching of "most similar solar generation scenarios" across
experiment days — and (b) lets experiments synthesise specific day
sequences (one sunny day, a rainy week, a 6-month season for a sunshine
fraction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, TraceError
from repro.rng import spawn
from repro.solar.panel import PVPanel
from repro.solar.weather import CloudProcess, DayClass, WeatherModel
from repro.units import SECONDS_PER_DAY, SECONDS_PER_HOUR


@dataclass(frozen=True)
class SolarTrace:
    """A fixed-step solar generation series.

    Attributes
    ----------
    dt_s:
        Step duration in seconds.
    power_w:
        Generation at each step (numpy array, watts).
    day_classes:
        The day-class label of each simulated day, for reporting.
    """

    dt_s: float
    power_w: np.ndarray
    day_classes: tuple

    def __post_init__(self) -> None:
        if self.dt_s <= 0:
            raise TraceError("dt_s must be positive")
        if len(self.power_w) == 0:
            raise TraceError("trace must be non-empty")
        if np.any(self.power_w < 0):
            raise TraceError("negative solar power in trace")

    @property
    def duration_s(self) -> float:
        """Total trace duration in seconds."""
        return self.dt_s * len(self.power_w)

    @property
    def n_days(self) -> int:
        """Number of whole days covered."""
        return int(round(self.duration_s / SECONDS_PER_DAY))

    def power_at(self, t: float) -> float:
        """Generation at absolute time ``t`` (seconds from trace start)."""
        idx = int(t // self.dt_s)
        if not 0 <= idx < len(self.power_w):
            raise TraceError(f"time {t} outside trace of {self.duration_s}s")
        return float(self.power_w[idx])

    def energy_wh(self) -> float:
        """Total trace energy in watt-hours."""
        return float(self.power_w.sum() * self.dt_s / SECONDS_PER_HOUR)

    def daily_energy_wh(self) -> List[float]:
        """Energy per day, in watt-hours."""
        steps_per_day = int(round(SECONDS_PER_DAY / self.dt_s))
        out = []
        for start in range(0, len(self.power_w), steps_per_day):
            chunk = self.power_w[start : start + steps_per_day]
            out.append(float(chunk.sum() * self.dt_s / SECONDS_PER_HOUR))
        return out


class SolarTraceGenerator:
    """Builds reproducible solar traces from a panel + weather model."""

    def __init__(
        self,
        panel: PVPanel,
        seed: int = 0,
        dt_s: float = 60.0,
    ):
        if dt_s <= 0:
            raise ConfigurationError("dt_s must be positive")
        self.panel = panel
        self.seed = seed
        self.dt_s = dt_s

    def day(self, day_class: DayClass, day_index: int = 0) -> SolarTrace:
        """One day of generation for a given weather class."""
        return self.days([day_class], first_day_index=day_index)

    def days(
        self, day_classes: Sequence[DayClass], first_day_index: int = 0
    ) -> SolarTrace:
        """A multi-day trace following an explicit day-class sequence."""
        if not day_classes:
            raise ConfigurationError("need at least one day")
        steps_per_day = int(round(SECONDS_PER_DAY / self.dt_s))
        values = np.zeros(steps_per_day * len(day_classes))
        for d, day_class in enumerate(day_classes):
            rng = spawn(self.seed, f"solar/day{first_day_index + d}")
            clouds = CloudProcess(day_class, rng)
            base = d * steps_per_day
            for i in range(steps_per_day):
                t = (base + i) * self.dt_s
                att = clouds.attenuation(self.dt_s)
                values[base + i] = self.panel.power(t, att)
        return SolarTrace(
            dt_s=self.dt_s, power_w=values, day_classes=tuple(day_classes)
        )

    def season(
        self,
        n_days: int,
        weather: Optional[WeatherModel] = None,
        sunshine_fraction: Optional[float] = None,
    ) -> SolarTrace:
        """A season of days sampled from a location's weather mix.

        Exactly one of ``weather`` or ``sunshine_fraction`` may be given;
        with neither, a temperate 0.5 sunshine fraction is used.
        """
        if weather is not None and sunshine_fraction is not None:
            raise ConfigurationError("pass weather or sunshine_fraction, not both")
        if weather is None:
            weather = WeatherModel(
                sunshine_fraction if sunshine_fraction is not None else 0.5
            )
        rng = spawn(self.seed, "weather/day-classes")
        classes = weather.sample_days(n_days, rng)
        return self.days(classes)
