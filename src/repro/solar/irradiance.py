"""Clear-sky irradiance profile.

The paper cites Wang & Chow's solar radiation model [41]; for a
system-level simulator only the *shape* of the diurnal curve matters. We
use the standard raised-sine clear-sky approximation: zero outside
daylight, and between sunrise and sunset

    s(t) = sin(pi * (t - sunrise) / (sunset - sunrise)) ** exponent

with ``exponent ~ 1.2`` matching the slightly peaked midday shape of
measured global horizontal irradiance. ``s`` is a dimensionless fraction
of the panel's rated output under standard conditions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import SECONDS_PER_DAY, SECONDS_PER_HOUR


@dataclass(frozen=True)
class ClearSkyModel:
    """Deterministic clear-sky fraction of rated PV output.

    Attributes
    ----------
    sunrise_h / sunset_h:
        Daylight window in local hours (defaults bracket the prototype's
        8:30-18:30 operating day with morning/evening shoulder).
    exponent:
        Peakedness of the diurnal bell.
    """

    sunrise_h: float = 6.5
    sunset_h: float = 19.0
    exponent: float = 1.2

    def __post_init__(self) -> None:
        if not 0.0 <= self.sunrise_h < self.sunset_h <= 24.0:
            raise ConfigurationError("need 0 <= sunrise < sunset <= 24")
        if self.exponent <= 0:
            raise ConfigurationError("exponent must be positive")

    @property
    def daylight_seconds(self) -> float:
        """Length of the daylight window in seconds."""
        return (self.sunset_h - self.sunrise_h) * SECONDS_PER_HOUR

    def fraction(self, t: float) -> float:
        """Clear-sky output fraction at simulation time ``t`` (seconds,
        where ``t % 86400`` is local time-of-day)."""
        tod_h = (t % SECONDS_PER_DAY) / SECONDS_PER_HOUR
        if tod_h <= self.sunrise_h or tod_h >= self.sunset_h:
            return 0.0
        x = (tod_h - self.sunrise_h) / (self.sunset_h - self.sunrise_h)
        return math.sin(math.pi * x) ** self.exponent

    def daily_fraction_integral_h(self, dt: float = 300.0) -> float:
        """Integral of the clear-sky fraction over one day, in hours.

        This is the day's "equivalent full-output hours"; used to size the
        panel so a sunny day delivers the paper's 8 kWh budget.
        """
        total = 0.0
        t = 0.0
        while t < SECONDS_PER_DAY:
            total += self.fraction(t) * dt
            t += dt
        return total / SECONDS_PER_HOUR
