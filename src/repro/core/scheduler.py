"""Aging-hiding scheduler (paper section IV-B, Fig. 8).

Balances aging variation across battery nodes by placing new workloads —
and consolidation moves — on the *slowest-aging* node, so "the aging
slowest battery node can age faster, while the fast-aging battery node
ages slower".

Two placement modes are provided:

- :meth:`AgingHidingScheduler.place` — the full BAAT procedure: profile
  the workload's power/energy demand, classify it into a Table-3 quadrant,
  derive Eq.-6 weights, rank all battery nodes by weighted aging, and put
  the VM on the healthiest node with CPU headroom;
- :meth:`AgingHidingScheduler.place_naive` — a load-balance-only baseline
  (least-utilised node) used by the non-hiding policies, so placement
  differences are attributable to aging awareness alone.
"""

from __future__ import annotations

from typing import Optional

from repro.core.controller import BAATController
from repro.datacenter.cluster import Cluster
from repro.datacenter.node import Node
from repro.datacenter.vm import VM
from repro.errors import SchedulingError
from repro.metrics.weighted import (
    EQUAL_WEIGHTS,
    classify_demand,
    weights_for_demand,
)


class AgingHidingScheduler:
    """Places and consolidates VMs in an aging-driven manner."""

    def __init__(self, cluster: Cluster, controller: BAATController):
        self.cluster = cluster
        self.controller = controller
        self.placements = 0

    # ------------------------------------------------------------------
    # Load power demand profiling (section IV-B-2a)
    # ------------------------------------------------------------------
    def profile_weights(self, vm: VM, node: Node):
        """Derive Eq.-6 weights from the VM's coarse power/energy profile.

        Uses the workload's mean power against the server's peak envelope
        for the Large/Small split, and its daily energy against half the
        server's daily dynamic budget for the More/Less split.
        """
        params = node.server.params
        mean_power = vm.workload.mean_power_w(params.idle_w, params.peak_w)
        energy = vm.workload.energy_per_day_wh(params.idle_w, params.peak_w)
        threshold = 0.5 * (params.peak_w - params.idle_w) * 24.0 * 0.5
        demand = classify_demand(
            mean_power_w=mean_power + params.idle_w * 0.5,
            peak_power_w=params.peak_w,
            energy_wh=energy,
            energy_threshold_wh=threshold,
        )
        return weights_for_demand(demand)

    # ------------------------------------------------------------------
    # Placement (Fig. 8)
    # ------------------------------------------------------------------
    def place(self, vm: VM) -> str:
        """Aging-driven placement; returns the chosen node name.

        Raises :class:`SchedulingError` when no node has headroom.
        """
        reference = self.cluster.nodes[0]
        weights = self.profile_weights(vm, reference)
        ranked = self.controller.rank_nodes(weights)
        # Tie-break near-equal aging scores by current CPU load so a fresh
        # cluster still spreads work (packing costs contention for no
        # aging benefit).
        ordered = sorted(
            ranked,
            key=lambda pair: (
                round(pair[1], 3),
                sum(v.workload.mean_util for v in pair[0].server.vms),
                pair[0].name,
            ),
        )
        for node, _score in ordered:
            if self.cluster._fits(node, vm):
                self.cluster.place(vm, node.name)
                self.placements += 1
                return node.name
        raise SchedulingError(f"no node has headroom for VM {vm.name}")

    def place_naive(self, vm: VM) -> str:
        """Aging-blind placement: least mean-utilised node with headroom."""
        candidates = sorted(
            self.cluster.nodes,
            key=lambda n: (
                sum(v.workload.mean_util for v in n.server.vms),
                n.name,
            ),
        )
        for node in candidates:
            if self.cluster._fits(node, vm):
                self.cluster.place(vm, node.name)
                self.placements += 1
                return node.name
        raise SchedulingError(f"no node has headroom for VM {vm.name}")

    # ------------------------------------------------------------------
    # Consolidation target selection
    # ------------------------------------------------------------------
    def migration_target(
        self, vm: VM, source: str, weights=EQUAL_WEIGHTS
    ) -> Optional[str]:
        """Best destination for migrating ``vm`` off ``source``: the node
        with the minimal weighted aging score that can host it, or None."""
        for node, _score in self.controller.rank_nodes(weights):
            if node.name == source:
                continue
            if self.cluster.can_migrate(vm.name, node.name):
                return node.name
        return None
