"""BAAT: the battery anti-aging treatment framework (paper section IV).

The framework couples a sensor-table power-monitoring architecture with a
workload scheduler on top of distributed energy storage:

- :class:`~repro.core.power_table.PowerTable` — per-battery utilisation
  history logs (Table 2);
- :class:`~repro.core.controller.BAATController` — computes the five
  aging metrics from the logs and ranks battery nodes by the Eq.-6
  weighted aging score;
- :mod:`~repro.core.scheduler` — aging-hiding placement/consolidation
  (Fig. 8);
- :mod:`~repro.core.slowdown` — DDT/DR threshold monitoring with VM
  migration preferred over DVFS (Fig. 9);
- :mod:`~repro.core.planner` — planned aging via DoD-goal regulation
  (Eq. 7, Fig. 10);
- :mod:`~repro.core.policies` — the four comparable management schemes of
  Table 4 (e-Buff, BAAT-s, BAAT-h, BAAT) plus the planned-aging variant.
"""

from repro.core.power_table import PowerTable, PowerTableEntry
from repro.core.controller import BAATController
from repro.core.scheduler import AgingHidingScheduler
from repro.core.slowdown import SlowdownConfig, SlowdownMonitor, reserve_seconds
from repro.core.planner import PlannedAgingManager, dod_goal
from repro.core.policies import (
    Policy,
    EBuffPolicy,
    BAATSlowdownPolicy,
    BAATHidingPolicy,
    BAATPolicy,
    PlannedAgingPolicy,
    make_policy,
    POLICY_NAMES,
)

__all__ = [
    "PowerTable",
    "PowerTableEntry",
    "BAATController",
    "AgingHidingScheduler",
    "SlowdownConfig",
    "SlowdownMonitor",
    "reserve_seconds",
    "PlannedAgingManager",
    "dod_goal",
    "Policy",
    "EBuffPolicy",
    "BAATSlowdownPolicy",
    "BAATHidingPolicy",
    "BAATPolicy",
    "PlannedAgingPolicy",
    "make_policy",
    "POLICY_NAMES",
]
