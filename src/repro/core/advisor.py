"""Provisioning advisor: pick a battery size and policy for a site.

"One should carefully plan the battery capacity" (section VI-C, finding
3). The advisor answers a green-datacenter operator's opening questions
with the library's own machinery:

1. given a site's sunshine fraction and fleet size, sweep candidate
   battery capacities, estimate battery lifetime and throughput under
   BAAT, and score each design point by annual cost per delivered
   compute;
2. recommend the design with the best cost-per-throughput, flagging
   over-provisioned points (the paper's diminishing-returns warning) and
   under-provisioned ones (high downtime).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.analysis.lifetime import estimate_lifetime_days, season_day_classes
from repro.battery.params import BatteryParams
from repro.cost.depreciation import DepreciationModel
from repro.cost.tco import TCOModel
from repro.errors import ConfigurationError
from repro.rng import DEFAULT_SEED
from repro.sim.scenario import Scenario


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated provisioning option."""

    capacity_ah: float
    server_to_battery_ratio: float
    lifetime_days: float
    throughput_per_day: float
    annual_cost_usd: float
    downtime_h_per_day: float

    @property
    def cost_per_mthroughput(self) -> float:
        """Annual dollars per million daily progress units (the score)."""
        if self.throughput_per_day <= 0:
            return float("inf")
        return self.annual_cost_usd / (self.throughput_per_day / 1e6)


@dataclass(frozen=True)
class Recommendation:
    """The advisor's output."""

    best: DesignPoint
    points: Tuple[DesignPoint, ...]
    notes: Tuple[str, ...]


class ProvisioningAdvisor:
    """Sweeps battery capacities for a site and recommends one."""

    def __init__(
        self,
        sunshine_fraction: float = 0.5,
        n_nodes: int = 6,
        n_days: int = 4,
        seed: int = DEFAULT_SEED,
    ):
        if not 0.0 <= sunshine_fraction <= 1.0:
            raise ConfigurationError("sunshine_fraction must be in [0, 1]")
        if n_days <= 0:
            raise ConfigurationError("n_days must be positive")
        self.sunshine_fraction = sunshine_fraction
        self.n_nodes = n_nodes
        self.n_days = n_days
        self.seed = seed

    def evaluate(self, capacity_ah: float) -> DesignPoint:
        """Evaluate one battery capacity under BAAT."""
        if capacity_ah <= 0:
            raise ConfigurationError("capacity_ah must be positive")
        battery = BatteryParams().with_capacity(capacity_ah)
        scenario = Scenario(
            n_nodes=self.n_nodes, dt_s=120.0, battery=battery, seed=self.seed
        )
        estimate = estimate_lifetime_days(
            "baat",
            scenario,
            sunshine_fraction=self.sunshine_fraction,
            n_days=self.n_days,
        )
        result = estimate.season_result
        depreciation = DepreciationModel(battery, n_batteries=self.n_nodes)
        tco = TCOModel(depreciation=depreciation)
        cost = tco.annual(self.n_nodes, estimate.lifetime_days).total_usd
        return DesignPoint(
            capacity_ah=capacity_ah,
            server_to_battery_ratio=scenario.server_to_battery_ratio,
            lifetime_days=estimate.lifetime_days,
            throughput_per_day=result.throughput_per_day(),
            annual_cost_usd=cost,
            downtime_h_per_day=result.total_downtime_s / 3600.0 / result.days,
        )

    def recommend(
        self, capacities_ah: Sequence[float] = (20.0, 35.0, 55.0, 80.0)
    ) -> Recommendation:
        """Sweep capacities and recommend the best cost-per-throughput."""
        if not capacities_ah:
            raise ConfigurationError("need at least one candidate capacity")
        points = tuple(self.evaluate(c) for c in sorted(capacities_ah))
        best = min(points, key=lambda p: p.cost_per_mthroughput)

        notes: List[str] = []
        largest = points[-1]
        if largest is not best and largest.capacity_ah >= 2 * best.capacity_ah:
            gain = largest.lifetime_days / max(best.lifetime_days, 1e-9) - 1.0
            notes.append(
                f"doubling battery beyond {best.capacity_ah:.0f} Ah buys only "
                f"{gain * 100:.0f}% more lifetime (diminishing returns, "
                "paper Fig. 15 finding 3)"
            )
        smallest = points[0]
        if smallest.downtime_h_per_day > 1.0:
            notes.append(
                f"{smallest.capacity_ah:.0f} Ah is under-provisioned: "
                f"{smallest.downtime_h_per_day:.1f} h/day of downtime"
            )
        return Recommendation(best=best, points=points, notes=tuple(notes))
