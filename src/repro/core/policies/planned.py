"""Planned-aging policy: BAAT with Eq.-7 DoD-goal regulation.

"We implement planned aging by replacing the low SoC value in [the]
slowdown aging technique with (1 - DoD_goal)" (section IV-D). The policy
recomputes each battery's DoD goal from its live usage log at every day
boundary and overrides the slowdown monitor's per-node low-SoC threshold
accordingly; hiding continues to balance nodes around the planned rate.

A battery close to its discard date gets a *larger* DoD goal (deeper
allowed discharge -> more performance), bounded at 90 % DoD; a battery
whose remaining life is ample gets a smaller one, conserving it.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.planner import PlannedAgingManager
from repro.core.policies.baat import BAATPolicy
from repro.core.slowdown import SlowdownConfig
from repro.obs import ALERTS, BUS, REGISTRY
from repro.obs.events import DoDGoalEvent
from repro.obs.spans import SPANS, caused_by


class PlannedAgingPolicy(BAATPolicy):
    """BAAT plus aging-rate planning toward a known discard date."""

    name = "baat-planned"

    def __init__(
        self,
        service_life_days: float,
        cycles_per_day: float = 1.0,
        config: Optional[SlowdownConfig] = None,
        fixed_dod_goal: Optional[float] = None,
    ) -> None:
        """
        Parameters
        ----------
        service_life_days:
            Days from battery installation to the planned discard (the
            datacenter end-of-life), the Fig. 22 sweep variable.
        fixed_dod_goal:
            If given, skip Eq. 7 and pin the DoD goal (used for the
            Fig. 21 DoD sweep).
        """
        super().__init__(config=config)
        self.manager = PlannedAgingManager(
            service_life_days=service_life_days, cycles_per_day=cycles_per_day
        )
        self.fixed_dod_goal = fixed_dod_goal

    def on_day_start(self, t: float) -> None:
        super().on_day_start(t)
        self._refresh_thresholds(t)

    def _after_bind(self) -> None:
        super()._after_bind()
        self._refresh_thresholds(0.0)

    def _refresh_thresholds(self, t: float = 0.0) -> None:
        """Recompute per-node overrides from the plan.

        Two knobs move together:

        - the *monitoring threshold* is ``1 - DoD_goal`` but never below
          the 40 % default — a deep goal licenses deeper discharge, it
          does not switch the sensors off (otherwise deep goals would
          degenerate into unmanaged e-Buff behaviour: cut-offs, downtime);
        - the *protected spending floor* tracks ``1 - DoD_goal`` directly
          (with a small cut-off guard band), so the licensed charge is
          genuinely spendable under graceful rationing.
        """
        assert self.cluster is not None and self.monitor is not None
        base_threshold = self.monitor.config.low_soc_threshold
        for node in self.cluster:
            if self.fixed_dod_goal is not None:
                goal = self.fixed_dod_goal
            else:
                goal = self.manager.current_dod_goal(node.battery)
            threshold = max(base_threshold, 1.0 - goal)
            floor = max(node.battery.params.cutoff_soc + 0.04, 1.0 - goal - 0.08)
            self.monitor.low_soc_override[node.name] = threshold
            self.monitor.floor_override[node.name] = floor
            cause = 0
            if BUS.enabled:
                goal_event = DoDGoalEvent(
                    t=t,
                    node=node.name,
                    goal=goal,
                    threshold=threshold,
                    floor=floor,
                )
                # Each refresh closes the node's previous plan window and
                # opens the next one, caused by the new goal.
                SPANS.end("dod_plan", node=node.name, t=t)
                BUS.emit(goal_event)
                SPANS.start("dod_plan", node=node.name, t=t, cause=goal_event.eid)
                cause = goal_event.eid
            if REGISTRY.enabled:
                REGISTRY.gauge(f"planned/dod_goal/{node.name}").set(goal)
            if ALERTS.enabled:
                with caused_by(cause):
                    ALERTS.observe("dod_goal_saturated", node.name, goal, t)

    def current_goals(self) -> Dict[str, float]:
        """Present DoD goal per node (for logging/benches)."""
        assert self.cluster is not None
        if self.fixed_dod_goal is not None:
            return {n.name: self.fixed_dod_goal for n in self.cluster}
        return {
            n.name: self.manager.current_dod_goal(n.battery) for n in self.cluster
        }

    def describe(self) -> str:
        return "BAAT plus Eq.-7 DoD-goal planned aging toward the discard date"
