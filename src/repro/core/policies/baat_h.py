"""BAAT-h: hiding-only scheme (paper Table 4).

"Only use aging-aware VM migration technique to hide battery aging
variation." Per section VI-B, BAAT-h reacts to a fast-aging node by
migrating load off it, but "lacks the holistic battery node aging
information (e.g., weighted aging metrics) and the migration is unaware
[of] the aging state of other battery nodes, which make[s] the migration
become random and low efficiency."

Faithfully reproduced here: the trigger is single-metric (window NAT of a
node exceeding the cluster mean by a tolerance), the *destination* is
chosen uniformly at random among feasible nodes (possibly another stressed
one), and migrations recur as long as the imbalance persists — generating
the stop-and-copy overhead that costs BAAT-h throughput in Fig. 20.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.core.policies.base import Policy
from repro.datacenter.vm import VM
from repro.errors import MigrationError
from repro.obs.spans import SPANS
from repro.rng import spawn

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.fleet import FleetState

#: A node is "fast aging" when its window NAT exceeds the cluster mean by
#: this multiplicative tolerance. Tight, so BAAT-h reacts eagerly — the
#: paper describes its migrations as frequent.
NAT_IMBALANCE_TOLERANCE = 1.15

#: Minimum seconds between successive migrations off the same node,
#: limiting (but not eliminating) migration churn.
MIGRATION_COOLDOWN_S = 300.0


class BAATHidingPolicy(Policy):
    """Aging-variation hiding through (crude) VM migration only."""

    name = "baat-h"

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self.seed = seed
        self._rng: Optional[np.random.Generator] = None
        self._last_migration_s: Dict[str, float] = {}
        self.migrations = 0

    def _after_bind(self) -> None:
        self._rng = spawn(self.seed, "baat-h/destinations")

    def place_vm(self, vm: VM) -> str:
        """Placement is aging-aware (NAT-ranked) but unweighted."""
        cluster = self._require_bound()
        assert self.controller is not None
        by_nat = sorted(
            cluster.nodes,
            key=lambda n: (self.controller.window_metrics(n).nat, n.name),
        )
        for node in by_nat:
            if cluster._fits(node, vm):
                cluster.place(vm, node.name)
                return node.name
        # Fall back to naive placement error behaviour.
        assert self.scheduler is not None
        return self.scheduler.place_naive(vm)

    def control(
        self,
        t: float,
        dt: float,
        node_draws: Dict[str, float],
        solar_w: float = 0.0,
    ) -> None:
        cluster = self._require_bound()
        assert self.controller is not None and self._rng is not None
        metrics = {n.name: self.controller.window_metrics(n) for n in cluster}
        nats = [m.nat for m in metrics.values()]
        mean_nat = sum(nats) / len(nats)
        if mean_nat <= 0.0:
            return
        for node in cluster:
            if not node.is_up or not node.server.vms:
                continue
            if metrics[node.name].nat <= NAT_IMBALANCE_TOLERANCE * mean_nat:
                continue
            last = self._last_migration_s.get(node.name, -float("inf"))
            if t - last < MIGRATION_COOLDOWN_S:
                continue
            self._migrate_random_vm(node.name, t)

    def control_fleet(
        self,
        t: float,
        dt: float,
        fleet: "FleetState",
        solar_w: float = 0.0,
    ) -> bool:
        """NAT-imbalance scan as one array pass; the rare candidate nodes
        fall back to the same object-path migration helper, so events and
        RNG draws are bit-identical to :meth:`control`."""
        assert self.controller is not None and self._rng is not None
        nat = self.controller.window_nat_array(fleet)
        mean_nat = sum(nat.tolist()) / fleet.n
        if mean_nat <= 0.0:
            return True
        cand = nat > (NAT_IMBALANCE_TOLERANCE * mean_nat)
        for i in np.nonzero(cand)[0].tolist():
            node = fleet.nodes[i]
            if not node.is_up or not node.server.vms:
                continue
            last = self._last_migration_s.get(node.name, -float("inf"))
            if t - last < MIGRATION_COOLDOWN_S:
                continue
            self._migrate_random_vm(node.name, t)
        return True

    def _migrate_random_vm(self, source: str, t: float) -> None:
        """Move one random VM from ``source`` to a random feasible node —
        deliberately not consulting other nodes' aging state."""
        cluster = self._require_bound()
        vms = cluster.vms_on(source)
        if not vms:
            return
        assert self._rng is not None
        vm = vms[int(self._rng.integers(len(vms)))]
        others = [n.name for n in cluster.nodes if n.name != source]
        self._rng.shuffle(others)
        # The span marks the migration as NAT-imbalance-driven churn, so
        # provenance stats can separate hiding moves from Fig.-9 ones.
        with SPANS.span("hiding_rebalance", node=source, t=t):
            for destination in others:
                if cluster.can_migrate(vm.name, destination):
                    try:
                        cluster.migrate(vm.name, destination)
                    except MigrationError:
                        continue
                    self.migrations += 1
                    self._last_migration_s[source] = t
                    return

    def describe(self) -> str:
        return "Only use aging-aware VM migration technique to hide battery aging variation"
