"""The battery management policies compared in the paper (Table 4).

========  ==========================================================
Scheme    Method
========  ==========================================================
e-Buff    Aggressively use battery as the green energy buffer to
          manage supply/load power variability (no aging awareness)
BAAT-s    Only aging-aware CPU frequency throttling (slow down)
BAAT-h    Only aging-aware VM migration (hide aging variation)
BAAT      Coordinated hiding + slowing down with weighted ranking
planned   BAAT plus Eq.-7 DoD-goal regulation (planned aging)
========  ==========================================================
"""

from repro.core.policies.base import Policy
from repro.core.policies.e_buff import EBuffPolicy
from repro.core.policies.baat_s import BAATSlowdownPolicy
from repro.core.policies.baat_h import BAATHidingPolicy
from repro.core.policies.baat import BAATPolicy
from repro.core.policies.planned import PlannedAgingPolicy
from repro.core.policies.factory import make_policy, POLICY_NAMES

__all__ = [
    "Policy",
    "EBuffPolicy",
    "BAATSlowdownPolicy",
    "BAATHidingPolicy",
    "BAATPolicy",
    "PlannedAgingPolicy",
    "make_policy",
    "POLICY_NAMES",
]
