"""Policy interface: the hooks the simulation engine calls.

A policy is bound to a cluster (and thereby to the BAAT controller and
helper schemes) before the run starts; afterwards the engine calls:

- :meth:`Policy.place_vm` once per VM at deployment time;
- :meth:`Policy.control` at every control interval with the latest
  per-node battery draws (the sensor feedback loop);
- :meth:`Policy.on_day_start` at day boundaries (metric windows reset).

Policies act exclusively through the cluster's public knobs — placement,
migration, DVFS ladders, and per-node discharge caps — mirroring the real
controller's SNMP/driver actuation paths.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Dict, Optional

from repro.core.controller import BAATController
from repro.core.scheduler import AgingHidingScheduler
from repro.datacenter.cluster import Cluster
from repro.datacenter.vm import VM
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.fleet import FleetState
    from repro.sim.scenario import Scenario


class Policy(abc.ABC):
    """Base class for battery management policies."""

    #: Stable identifier used in experiment tables.
    name: str = "policy"

    def __init__(self) -> None:
        self.cluster: Optional[Cluster] = None
        self.controller: Optional[BAATController] = None
        self.scheduler: Optional[AgingHidingScheduler] = None
        self.scenario: Optional["Scenario"] = None

    def bind(self, cluster: Cluster, scenario: Optional["Scenario"] = None) -> None:
        """Attach the policy to a cluster, building its controller and
        scheduler. Called once by the simulation engine, which also hands
        over the scenario so policies can derive deployment facts from it
        (e.g. the operating-window end the rationing horizon runs to).
        Binding without a scenario keeps the documented defaults."""
        self.cluster = cluster
        self.scenario = scenario
        self.controller = BAATController(cluster)
        self.scheduler = AgingHidingScheduler(cluster, self.controller)
        self._after_bind()

    def _scenario_window_end_h(self) -> Optional[float]:
        """The bound scenario's operating-window end (local hours), or
        None when bound without a scenario."""
        if self.scenario is None:
            return None
        return self.scenario.operating_window_h[1]

    def _after_bind(self) -> None:
        """Subclass hook run after binding (build monitors etc.)."""

    def _require_bound(self) -> Cluster:
        if self.cluster is None:
            raise ConfigurationError(f"policy {self.name} is not bound to a cluster")
        return self.cluster

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def place_vm(self, vm: VM) -> str:
        """Choose a node for a new VM; returns the node name."""

    def control(
        self,
        t: float,
        dt: float,
        node_draws: Dict[str, float],
        solar_w: float = 0.0,
    ) -> None:
        """Periodic control pass (default: no action — e-Buff style).

        ``solar_w`` is the present farm output; the real controller reads
        it through the power-switch module, so policies may use it.
        """

    def control_fleet(
        self,
        t: float,
        dt: float,
        fleet: "FleetState",
        solar_w: float = 0.0,
    ) -> bool:
        """Array-native control pass over the fleet stepper's state.

        Called by the engine *instead of* :meth:`control` on fleet runs.
        Returning True means this pass is fully handled (decisions were
        evaluated against the authoritative arrays and any effects were
        applied in place); returning False makes the engine materialize
        the arrays and run the object-path :meth:`control` — the default,
        so policies without an array pass keep reference behaviour.

        Implementations must be bit-compatible with :meth:`control`
        (same decisions, actions, RNG draws, and event stream) — the
        contract ``tests/test_fleet_equivalence.py`` enforces.
        """
        return False

    def on_day_start(self, t: float) -> None:
        """Day-boundary hook: reset assessment windows by default."""
        if self.controller is not None:
            self.controller.reset_window()

    def describe(self) -> str:
        """One-line human description (Table 4 wording)."""
        return self.name
