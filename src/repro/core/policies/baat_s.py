"""BAAT-s: slowdown-only scheme (paper Table 4).

"Only use aging-aware CPU frequency throttling to slow down battery
aging." Placement stays aging-blind; the Fig.-9 monitor runs with
``prefer_migration=False`` so every violation is answered with DVFS. The
paper calls this "a passive solution [that] leads to workload performance
degradation" — the throughput cost shows up in Fig. 20 while the aging
benefit shows up in Figs. 13/14.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.core.policies.base import Policy
from repro.core.slowdown import SlowdownConfig, SlowdownMonitor
from repro.datacenter.vm import VM

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.fleet import FleetState


class BAATSlowdownPolicy(Policy):
    """Aging-aware DVFS power capping only."""

    name = "baat-s"

    def __init__(self, config: Optional[SlowdownConfig] = None) -> None:
        super().__init__()
        base = config or SlowdownConfig()
        # Force the DVFS-only ladder regardless of the supplied config.
        self.slowdown_config = SlowdownConfig(
            low_soc_threshold=base.low_soc_threshold,
            ddt_threshold=base.ddt_threshold,
            reserve_seconds_threshold=base.reserve_seconds_threshold,
            recovery_soc=base.recovery_soc,
            protected_soc=base.protected_soc,
            window_end_h=base.window_end_h,
            prefer_migration=False,
            allow_parking=False,
        )
        self.monitor: Optional[SlowdownMonitor] = None

    def _after_bind(self) -> None:
        assert self.cluster is not None and self.controller is not None
        self.monitor = SlowdownMonitor(
            self.cluster,
            self.controller,
            scheduler=None,
            config=self.slowdown_config,
            window_end_h=self._scenario_window_end_h(),
        )

    def place_vm(self, vm: VM) -> str:
        self._require_bound()
        assert self.scheduler is not None
        return self.scheduler.place_naive(vm)

    def control(
        self,
        t: float,
        dt: float,
        node_draws: Dict[str, float],
        solar_w: float = 0.0,
    ) -> None:
        assert self.monitor is not None
        self.monitor.control(t, node_draws)

    def control_fleet(
        self,
        t: float,
        dt: float,
        fleet: "FleetState",
        solar_w: float = 0.0,
    ) -> bool:
        """BAAT-s control is the Fig.-9 monitor alone, so the array pass
        is exactly the monitor's batched threshold checks."""
        assert self.monitor is not None
        return self.monitor.fleet_control(t, fleet)

    def describe(self) -> str:
        return "Only use aging-aware CPU frequency throttling to slow down battery aging"
