"""e-Buff: the aggressive-buffering baseline (paper Table 4, refs [4, 7]).

Represents prior green-datacenter designs that "aggressively employ
battery energy to manage power mismatch between supply and demand":
placement is plain load balancing, batteries discharge without caps
whenever solar falls short, and no aging signal is ever consulted. Its
failure modes are exactly the paper's: deep discharges, long low-SoC
residence, occasional cut-offs with server downtime, and the fastest
aging of the four schemes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.core.policies.base import Policy
from repro.datacenter.vm import VM

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.fleet import FleetState


class EBuffPolicy(Policy):
    """Aging-blind aggressive battery buffering."""

    name = "e-buff"

    def place_vm(self, vm: VM) -> str:
        self._require_bound()
        assert self.scheduler is not None
        return self.scheduler.place_naive(vm)

    def control(
        self,
        t: float,
        dt: float,
        node_draws: Dict[str, float],
        solar_w: float = 0.0,
    ) -> None:
        """No control actions: batteries are used until they cut off."""

    def control_fleet(
        self,
        t: float,
        dt: float,
        fleet: "FleetState",
        solar_w: float = 0.0,
    ) -> bool:
        """e-Buff's buffering rule is "do nothing": the decision is a
        constant, so the array pass is trivially complete and the engine
        never needs to materialize fleet state for control."""
        return True

    def describe(self) -> str:
        return (
            "Aggressively use battery as the green energy buffer to manage "
            "supply/load power variability"
        )
