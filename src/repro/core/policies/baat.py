"""BAAT: the full coordinated scheme (paper Table 4).

"Coordinate hiding and slowing down techniques to dynamically manage
battery aging":

- placement uses the Eq.-6 weighted aging ranking with Table-3 workload
  profiling (hiding, Fig. 8);
- the Fig.-9 monitor answers low-SoC violations with weighted-target VM
  migration first and DVFS as a fallback, rationing battery discharge at
  critical points (slowing down);
- an energy-aware *consolidation* pass — the "workload consolidation"
  lever of section IV-B — estimates how many servers the present solar
  output plus rationed battery budget can sustain; when the cluster is
  over-committed it migrates VMs off the fastest-aging nodes onto the
  healthiest ones and parks the vacated servers, letting their batteries
  recharge (the route by which BAAT "shift[s] the most likely SoC region
  towards 90 %-100 %", Fig. 19). Parked servers wake as supply recovers.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.core.policies.base import Policy
from repro.core.slowdown import SlowdownConfig, SlowdownMonitor
from repro.datacenter.vm import VM
from repro.errors import MigrationError
from repro.obs import ALERTS, BUS, REGISTRY
from repro.obs.events import ConsolidationEvent, ParkEvent, WakeEvent
from repro.obs.spans import SPANS, caused_by
from repro.units import SECONDS_PER_DAY, SECONDS_PER_HOUR

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.fleet import FleetState

#: Minimum seconds between consolidation passes (stop-and-copy churn guard).
CONSOLIDATION_COOLDOWN_S = 1800.0

#: Consolidation never parks below this fraction of the fleet: a
#: datacenter has service obligations, so BAAT sheds load but does not
#: shut the site. Without this floor, heavily loaded configurations would
#: "extend" battery life by simply not computing.
MIN_ACTIVE_FRACTION = 0.5

#: Planning estimate of one server's demand: idle plus a near-saturated
#: dynamic share, because consolidation packs keepers to full utilisation.
#: Deliberately coarse — the real controller also plans from coarse power
#: profiles (Table 3).
TYPICAL_DYNAMIC_SHARE = 0.45


class BAATPolicy(Policy):
    """Full battery anti-aging treatment."""

    name = "baat"

    def __init__(self, config: Optional[SlowdownConfig] = None) -> None:
        super().__init__()
        self.slowdown_config = config or SlowdownConfig(
            prefer_migration=True,
            # One shallow DVFS step only: BAAT prefers migration and
            # consolidation, and deep throttling on idle-dominated servers
            # costs more throughput than the power it saves.
            max_throttle_index=1,
        )
        self.monitor: Optional[SlowdownMonitor] = None
        self.consolidations = 0
        self._last_consolidation_s = -float("inf")

    def _after_bind(self) -> None:
        assert self.cluster is not None
        assert self.controller is not None and self.scheduler is not None
        self.monitor = SlowdownMonitor(
            self.cluster,
            self.controller,
            scheduler=self.scheduler,
            config=self.slowdown_config,
            window_end_h=self._scenario_window_end_h(),
        )

    def place_vm(self, vm: VM) -> str:
        self._require_bound()
        assert self.scheduler is not None
        return self.scheduler.place(vm)

    def control(
        self,
        t: float,
        dt: float,
        node_draws: Dict[str, float],
        solar_w: float = 0.0,
    ) -> None:
        assert self.monitor is not None
        # Consolidation first: it is the cluster-wide plan; the monitor
        # then handles residual per-node stress on whatever stayed up.
        self._consolidate(t, solar_w)
        self.monitor.control(t, node_draws)

    # ------------------------------------------------------------------
    # Consolidation
    # ------------------------------------------------------------------
    def _per_server_planning_w(self) -> float:
        params = self._require_bound().nodes[0].server.params
        return params.idle_w + TYPICAL_DYNAMIC_SHARE * (params.peak_w - params.idle_w)

    def _battery_budget_w(self, t: float) -> float:
        """Aggregate sustainable battery power: per node, the charge above
        the protected SoC floor rationed over the remaining window.

        Parked (``policy_off``) nodes are excluded: their discharge cap
        is 0 W, so their hoarded charge cannot be spent on load and must
        not inflate the supportable-server estimate.
        """
        assert self.monitor is not None
        tod_h = (t % SECONDS_PER_DAY) / SECONDS_PER_HOUR
        remaining_s = max(
            600.0, (self.monitor.window_end_h - tod_h) * SECONDS_PER_HOUR
        )
        total = 0.0
        for node in self._require_bound():
            if node.server.policy_off:
                continue
            battery = node.battery
            floor = self.monitor.protected_floor(node)
            usable_ah = max(
                0.0, (battery.soc - floor) * battery.effective_capacity_ah
            )
            total += usable_ah * battery.terminal_voltage(0.0) * SECONDS_PER_HOUR / remaining_s
        return total

    # ------------------------------------------------------------------
    # Fleet fast path (array decision kernels)
    # ------------------------------------------------------------------
    def control_fleet(
        self,
        t: float,
        dt: float,
        fleet: "FleetState",
        solar_w: float = 0.0,
    ) -> bool:
        """Batch the consolidation *decision* (not the action ladder) and
        the Fig.-9 monitor checks as array passes. When either decides an
        action is needed, return False so the engine materializes and the
        object path acts — the rare case by construction.

        An idle pass emits no events on the object path either
        (consolidation/park/wake events only fire in the acting
        branches), so plain tracing keeps the array fast path; alerting
        still forces the object path because check/control feed
        ``ALERTS.observe`` for every node."""
        if ALERTS.enabled:
            return False
        if not self._consolidation_idle(t, solar_w, fleet):
            return False
        assert self.monitor is not None
        return self.monitor.fleet_control(t, fleet)

    def _consolidation_idle(self, t: float, solar_w: float, fleet: "FleetState") -> bool:
        """Array twin of :meth:`_consolidate`'s early returns: True iff
        the object-path pass would take no action this tick."""
        assert self.monitor is not None
        per_server = self._per_server_planning_w()
        n_off = int(fleet.policy_off_mask.sum())
        n_active = fleet.n - n_off
        # Wake branch: solar headroom over the active count with parked
        # nodes available always acts.
        solar_supportable = int(solar_w // per_server)
        if solar_supportable > n_active and n_off > 0:
            return False
        supportable = int(
            (solar_w + self._battery_budget_w_fleet(t, fleet)) // per_server
        )
        if supportable >= n_active:
            return True
        thr, _floor = self.monitor._fleet_thresholds(fleet)
        stressed = bool(((fleet.soc < thr) & ~fleet.policy_off_mask).any())
        if not stressed:
            return True
        if t - self._last_consolidation_s < CONSOLIDATION_COOLDOWN_S:
            return True
        return False

    def _battery_budget_w_fleet(self, t: float, fleet: "FleetState") -> float:
        """Array twin of :meth:`_battery_budget_w`: identical elementwise
        terms, summed in node order from int 0 like the object fold."""
        assert self.monitor is not None
        tod_h = (t % SECONDS_PER_DAY) / SECONDS_PER_HOUR
        remaining_s = max(
            600.0, (self.monitor.window_end_h - tod_h) * SECONDS_PER_HOUR
        )
        der = fleet.derived_now()
        v = fleet.ocv(fleet.soc, der)
        _thr, floor = self.monitor._fleet_thresholds(fleet)
        usable = np.maximum(0.0, (fleet.soc - floor) * der["eff_cap"])
        terms = usable * v * SECONDS_PER_HOUR / remaining_s
        return float(sum(terms[~fleet.policy_off_mask].tolist()))

    def _consolidate(self, t: float, solar_w: float) -> None:
        cluster = self._require_bound()
        assert self.controller is not None and self.scheduler is not None
        per_server = self._per_server_planning_w()
        supportable = int((solar_w + self._battery_budget_w(t)) // per_server)
        active = [n for n in cluster if not n.server.policy_off]
        sleeping = [n for n in cluster if n.server.policy_off]

        # Wake on *solar* headroom only: parked batteries are deliberately
        # being preserved, so recharged charge alone must not trigger a
        # wake (that oscillates park/wake and burns the hoard). Each wake
        # grows the active count toward the solar headroom; counting the
        # woken node on the active side (rather than decrementing the
        # headroom against a stale active snapshot) keeps the accounting
        # honest if either side ever changes mid-loop.
        solar_supportable = int(solar_w // per_server)
        n_active = len(active)
        if solar_supportable > n_active and sleeping:
            ranked = self.controller.rank_nodes(up_only=False)
            for node, _score in ranked:
                if not node.server.policy_off:
                    continue
                node.server.policy_off = False
                node.discharge_cap_w = float("inf")
                if BUS.enabled:
                    BUS.emit(
                        WakeEvent(
                            t=t,
                            span_id=SPANS.open_id("parked", node.name),
                            node=node.name,
                            reason="solar-headroom",
                        )
                    )
                    SPANS.end("parked", node=node.name, t=t)
                self._rebalance_onto(node.name)
                n_active += 1
                if n_active >= solar_supportable:
                    break
            return

        if supportable >= len(active):
            return
        # Consolidate only under demonstrated battery stress: with full
        # batteries in the morning the instantaneous-solar supportable
        # estimate is pessimistic (midday generation is still to come),
        # and parking then would needlessly forfeit throughput.
        stressed = any(
            node.battery.soc < self.monitor.low_soc_threshold(node)
            for node in active
        )
        if not stressed:
            return
        if t - self._last_consolidation_s < CONSOLIDATION_COOLDOWN_S:
            return
        self._last_consolidation_s = t
        self.consolidations += 1

        floor = max(1, math.ceil(MIN_ACTIVE_FRACTION * len(cluster.nodes)))
        keep = max(floor, supportable)
        ranked = self.controller.rank_nodes(up_only=False)  # slowest-aging first
        keepers = {node.name for node, _ in ranked[:keep]}
        victims = [node for node, _ in ranked[keep:] if not node.server.policy_off]

        cause = 0
        if BUS.enabled:
            plan = ConsolidationEvent(
                t=t,
                supportable=supportable,
                n_active=len(active),
                n_victims=len(victims),
            )
            BUS.emit(plan)
            cause = plan.eid
        if REGISTRY.enabled:
            REGISTRY.counter("baat/consolidations").inc()

        # The consolidation span groups the epoch's migrations and parks,
        # all caused by the plan event above.
        with SPANS.span("consolidation", t=t, cause=cause), caused_by(cause):
            for victim in reversed(victims):  # worst-aging first
                for vm in list(victim.server.vms):
                    target = self._target_among(vm, victim.name, keepers)
                    if target is None:
                        continue
                    try:
                        cluster.migrate(vm.name, target)
                    except MigrationError:
                        continue
                if victim.server.vms:
                    # Unmovable VMs keep their host up (throttled/rationed
                    # by the monitor) — parking them would zero their
                    # progress.
                    continue
                victim.server.policy_off = True
                victim.discharge_cap_w = 0.0
                if BUS.enabled:
                    span_id = SPANS.start("parked", node=victim.name, t=t)
                    BUS.emit(
                        ParkEvent(
                            t=t,
                            span_id=span_id,
                            node=victim.name,
                            reason="consolidation",
                        )
                    )

    def _rebalance_onto(self, woken: str) -> None:
        """Move one VM from the most CPU-loaded up node onto a just-woken
        node, undoing consolidation pressure as supply returns."""
        cluster = self._require_bound()
        donors = sorted(
            (n for n in cluster if n.is_up and not n.server.policy_off and n.name != woken),
            key=lambda n: -sum(v.workload.mean_util for v in n.server.vms),
        )
        for donor in donors:
            load = sum(v.workload.mean_util for v in donor.server.vms)
            if load <= 1.0 or not donor.server.vms:
                break
            vm = max(donor.server.vms, key=lambda v: v.workload.mean_util)
            if cluster.can_migrate(vm.name, woken):
                try:
                    cluster.migrate(vm.name, woken)
                except MigrationError:
                    continue
                return

    def _target_among(self, vm: VM, source: str, keepers: set) -> Optional[str]:
        """Healthiest keeper that can host the VM."""
        assert self.controller is not None
        cluster = self._require_bound()
        for node, _score in self.controller.rank_nodes(up_only=False):
            if node.name == source or node.name not in keepers:
                continue
            if cluster.can_migrate(vm.name, node.name):
                return node.name
        return None

    def describe(self) -> str:
        return (
            "Coordinate hiding and slowing down techniques to dynamically "
            "manage battery aging"
        )
