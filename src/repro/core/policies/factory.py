"""Policy factory: build any Table-4 scheme by name."""

from __future__ import annotations

from typing import Optional

from repro.core.policies.baat import BAATPolicy
from repro.core.policies.baat_h import BAATHidingPolicy
from repro.core.policies.baat_s import BAATSlowdownPolicy
from repro.core.policies.base import Policy
from repro.core.policies.e_buff import EBuffPolicy
from repro.core.policies.planned import PlannedAgingPolicy
from repro.core.slowdown import SlowdownConfig
from repro.errors import ConfigurationError

#: The four schemes of Table 4 in presentation order.
POLICY_NAMES = ("e-buff", "baat-s", "baat-h", "baat")


def make_policy(
    name: str,
    slowdown_config: Optional[SlowdownConfig] = None,
    seed: int = 0,
    service_life_days: float = 730.0,
) -> Policy:
    """Instantiate a policy by its Table-4 name.

    ``"baat-planned"`` additionally accepts ``service_life_days``.
    """
    if name == "e-buff":
        return EBuffPolicy()
    if name == "baat-s":
        return BAATSlowdownPolicy(config=slowdown_config)
    if name == "baat-h":
        return BAATHidingPolicy(seed=seed)
    if name == "baat":
        return BAATPolicy(config=slowdown_config)
    if name == "baat-planned":
        return PlannedAgingPolicy(
            service_life_days=service_life_days, config=slowdown_config
        )
    raise ConfigurationError(
        f"unknown policy {name!r}; choose from {POLICY_NAMES + ('baat-planned',)}"
    )
