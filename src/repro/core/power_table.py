"""Power table: per-battery utilisation history logs (paper Table 2).

"Each group of batteries has a power table which records the battery
utilization history logs ... collected from corresponding sensor of each
battery and ... sent to BAAT controller." The table stores the four
Table-2 variables — current, voltage, temperature, and working time — as a
bounded ring of entries per battery, from which the controller computes
the five aging metrics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List

from repro.battery.unit import BatteryState
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PowerTableEntry:
    """One logged sensor sample (the Table-2 variables)."""

    time_s: float
    current_a: float
    voltage_v: float
    temperature_c: float
    soc: float


class PowerTable:
    """Bounded history of sensor samples for a group of batteries."""

    def __init__(self, max_entries_per_battery: int = 10_000):
        if max_entries_per_battery <= 0:
            raise ConfigurationError("max_entries_per_battery must be positive")
        self.max_entries = max_entries_per_battery
        self._logs: Dict[str, Deque[PowerTableEntry]] = {}

    def record(self, state: BatteryState) -> None:
        """Append one battery sensor sample."""
        log = self._logs.setdefault(state.name, deque(maxlen=self.max_entries))
        log.append(
            PowerTableEntry(
                time_s=state.time_s,
                current_a=state.current_a,
                voltage_v=state.terminal_voltage_v,
                temperature_c=state.temperature_c,
                soc=state.soc,
            )
        )

    def history(self, battery_name: str) -> List[PowerTableEntry]:
        """All retained samples for one battery, oldest first."""
        return list(self._logs.get(battery_name, ()))

    def latest(self, battery_name: str) -> PowerTableEntry:
        """Most recent sample for one battery."""
        log = self._logs.get(battery_name)
        if not log:
            raise ConfigurationError(f"no samples recorded for {battery_name!r}")
        return log[-1]

    def batteries(self) -> List[str]:
        """Names of all batteries with recorded history."""
        return sorted(self._logs)

    def __len__(self) -> int:
        return sum(len(log) for log in self._logs.values())
