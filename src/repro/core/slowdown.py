"""Aging slowdown: server-level control (paper section IV-C, Fig. 9).

"It is dangerous to discharge battery with high discharge rate during low
SoC state." The slowdown monitor periodically checks two metrics once a
battery drops below 40 % SoC:

- **DDT** — deep-discharge time over the current assessment window; and
- **DR** — whether present discharge would exhaust the battery's reserve
  within the 2-minute emergency window (``P_threshold`` in the Fig. 9
  caption, derived from the Govindan et al. 2-minute UPS-reserve rule the
  paper cites).

On a violation the monitor prefers VM migration to a healthy node (chosen
by minimal weighted aging, like the hiding scheme); if no migration is
feasible it falls back to DVFS power capping, and it additionally caps the
node's battery discharge to the 2-minute-safe power. Frequencies recover
once the battery climbs back above the recovery SoC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.battery.peukert import peukert_factor, peukert_factor_array
from repro.battery.unit import BatteryUnit
from repro.core.controller import BAATController
from repro.core.scheduler import AgingHidingScheduler
from repro.datacenter.cluster import Cluster
from repro.datacenter.node import Node
from repro.errors import ConfigurationError, MigrationError
from repro.obs import ALERTS, BUS, REGISTRY
from repro.obs.events import (
    DvfsCapEvent,
    DvfsUncapEvent,
    EvacuationEvent,
    ParkEvent,
    SlowdownActionEvent,
)
from repro.obs.spans import SPANS, caused_by, in_span
from repro.units import SECONDS_PER_DAY, SECONDS_PER_HOUR

#: Operating-window end used when no scenario is bound (the paper's
#: prototype runs 8:30-18:30). A bound policy derives the real horizon
#: from ``Scenario.operating_window_h`` instead.
DEFAULT_WINDOW_END_H = 18.5


def reserve_seconds(battery: BatteryUnit, power_w: float) -> float:
    """How long the battery could sustain ``power_w`` before its cut-off.

    Inverts the Peukert-corrected drain at the implied current. Returns
    ``inf`` for zero draw.
    """
    if power_w <= 0.0:
        return float("inf")
    voltage = battery.terminal_voltage(0.0)
    if voltage <= 0:
        return 0.0
    current = power_w / voltage
    avail_ah = max(
        0.0, (battery.soc - battery.params.cutoff_soc) * battery.effective_capacity_ah
    )
    drain_per_s = current * peukert_factor(current, battery.params) / SECONDS_PER_HOUR
    if drain_per_s <= 0:
        return float("inf")
    return avail_ah / drain_per_s


def two_minute_safe_power(battery: BatteryUnit, t_threshold_s: float = 120.0) -> float:
    """The largest power the battery can sustain for ``t_threshold_s``.

    This is the Fig.-9 ``P_threshold``: discharging harder than this
    leaves less than the required emergency reserve.
    """
    if t_threshold_s <= 0:
        raise ConfigurationError("t_threshold_s must be positive")
    avail_ah = max(
        0.0, (battery.soc - battery.params.cutoff_soc) * battery.effective_capacity_ah
    )
    voltage = battery.terminal_voltage(0.0)
    if voltage <= 0 or avail_ah <= 0:
        return 0.0
    # Available energy spread over the threshold window, corrected for the
    # Peukert drain inflation at the implied (usually large) current via a
    # short fixed-point iteration.
    power = avail_ah * voltage * SECONDS_PER_HOUR / t_threshold_s
    for _ in range(4):
        current = power / voltage
        pf = peukert_factor(current, battery.params)
        power = avail_ah / pf * voltage * SECONDS_PER_HOUR / t_threshold_s
    return power


@dataclass(frozen=True)
class SlowdownConfig:
    """Thresholds of the Fig.-9 procedure.

    Attributes
    ----------
    low_soc_threshold:
        SoC below which checks begin (40 %; planned aging overrides it
        with ``1 - DoD_goal``).
    ddt_threshold:
        Window DDT fraction above which action is taken.
    reserve_seconds_threshold:
        The 2-minute emergency reserve (T_threshold).
    recovery_soc:
        SoC at which throttled servers return to full frequency.
    prefer_migration:
        Full BAAT migrates first and throttles only as a fallback; BAAT-s
        sets this False (DVFS only).
    """

    low_soc_threshold: float = 0.40
    ddt_threshold: float = 0.25
    reserve_seconds_threshold: float = 120.0
    recovery_soc: float = 0.60
    prefer_migration: bool = True
    #: SoC floor the rationing cap protects: once triggered, battery draw
    #: is limited so the charge above this floor stretches to the end of
    #: the operating window ("promote the chances of battery charging to a
    #: higher SoC when the intermittent power supply becomes sufficient").
    #: Just below the 40 % line, so slowdown parks batteries out of the
    #: sulphation-prone deep-discharge region.
    protected_soc: float = 0.28
    #: End of the operating window (local hours), for rationing horizons.
    #: ``None`` (the default) derives it from the bound scenario's
    #: ``operating_window_h`` — falling back to 18.5 for monitors built
    #: without a scenario. An explicit value always wins.
    window_end_h: Optional[float] = None
    #: A migration is worthwhile only onto a materially healthier node:
    #: the target battery must have at least this much more SoC than the
    #: source. Guards full BAAT against BAAT-h-style churn when every node
    #: is equally stressed.
    migration_soc_margin: float = 0.12
    #: Whether the action ladder may park a server (planned checkpointing)
    #: when even its idle draw is unsustainable. Full BAAT coordinates
    #: checkpoint/consolidation; BAAT-s is frequency-throttling only
    #: (Table 4) and must leave this False.
    allow_parking: bool = True
    #: Deepest DVFS ladder step the monitor will command (None = the
    #: hardware floor). With idle-dominated servers, deep throttling is
    #: power-*inefficient* per unit of compute, so full BAAT — which can
    #: migrate and park instead — stops at a shallow step; BAAT-s has no
    #: other lever and rides the whole ladder (its Fig. 20 penalty).
    max_throttle_index: int = 10**6

    def __post_init__(self) -> None:
        if not 0.0 < self.low_soc_threshold < 1.0:
            raise ConfigurationError("low_soc_threshold must be in (0, 1)")
        if not 0.0 <= self.ddt_threshold <= 1.0:
            raise ConfigurationError("ddt_threshold must be in [0, 1]")
        if self.recovery_soc <= self.low_soc_threshold:
            raise ConfigurationError("recovery_soc must exceed low_soc_threshold")
        if not 0.0 <= self.protected_soc < self.low_soc_threshold:
            raise ConfigurationError("protected_soc must be below low_soc_threshold")
        if self.window_end_h is not None and not 0.0 < self.window_end_h <= 24.0:
            raise ConfigurationError("window_end_h must be in (0, 24]")


class SlowdownMonitor:
    """Implements the Fig.-9 control loop for one cluster."""

    def __init__(
        self,
        cluster: Cluster,
        controller: BAATController,
        scheduler: Optional[AgingHidingScheduler] = None,
        config: Optional[SlowdownConfig] = None,
        window_end_h: Optional[float] = None,
    ):
        self.cluster = cluster
        self.controller = controller
        self.scheduler = scheduler
        self.config = config or SlowdownConfig()
        #: Rationing horizon (local hours): an explicit config value wins,
        #: then the scenario-derived window end passed by the binding
        #: policy, then the prototype's 18:30.
        if self.config.window_end_h is not None:
            self.window_end_h = self.config.window_end_h
        elif window_end_h is not None:
            self.window_end_h = window_end_h
        else:
            self.window_end_h = DEFAULT_WINDOW_END_H
        self.migrations = 0
        self.throttles = 0
        self.parks = 0
        #: Simulation time of the first action taken, or None. The paper's
        #: Fig. 12 marks when slowdown engages on each weather day ("the
        #: slowdown time varies in different weathers").
        self.first_action_t: Optional[float] = None
        #: Per-node override of the low-SoC threshold (planned aging).
        self.low_soc_override: dict = {}
        #: Per-node override of the protected spending floor (planned
        #: aging: a deep DoD goal lowers the floor so the charge may be
        #: spent, while monitoring still engages at the threshold).
        self.floor_override: dict = {}
        #: Per-node (trigger, cause eid) of the last :meth:`check` that
        #: fired — the provenance anchor :meth:`control` stamps onto the
        #: resulting action events.
        self.last_trigger: dict = {}
        self._last_t = 0.0
        # Cached (fleet, threshold, floor) arrays for the vectorized pass;
        # only valid while no per-node overrides exist (planned aging
        # rebuilds them every pass instead).
        self._thr_cache: Optional[tuple] = None

    def low_soc_threshold(self, node: Node) -> float:
        """Effective low-SoC trigger for a node."""
        return self.low_soc_override.get(node.name, self.config.low_soc_threshold)

    # ------------------------------------------------------------------
    def check(self, node: Node, current_draw_w: float) -> bool:
        """True when the Fig.-9 trigger fires for this node.

        Below the low-SoC line, any of three conditions acts:

        - the window DDT exceeds its threshold (chronic deep discharge);
        - the present draw leaves less than the 2-minute reserve; or
        - the present draw exceeds the *sustainable ration* — the power at
          which the remaining protected charge lasts to the end of the
          operating window. This is the "high discharge rate during low
          SoC" condition of section III-E: a draw that is fine at 80 % SoC
          is dangerous at 35 %.
        """
        battery = node.battery
        below = battery.soc < self.low_soc_threshold(node)
        alerting = ALERTS.enabled
        if not below and not alerting:
            return False
        if not below and not (
            ALERTS.is_active("ddt_window_breach", node.name)
            or ALERTS.is_active("dr_reserve_exhaustion", node.name)
        ):
            # Healthy node, no episode in flight: the DDT/DR watchdogs
            # only act below the low-SoC line (section III-E) and DDT
            # cannot accrue above it, so computing the window metrics
            # here would feed alerts that can neither fire nor clear —
            # skip the (comparatively expensive) window/reserve read.
            return False
        ddt = self.controller.window_metrics(node).ddt
        reserve = reserve_seconds(battery, current_draw_w)
        ddt_alert = dr_alert = None
        if alerting:
            # Feed the watched values even when healthy, so active alerts
            # can observe their hysteresis release. Observing inside the
            # node's deep-discharge span (if one is open) stamps the
            # excursion onto the alert events for provenance chains.
            with in_span(SPANS.open_id("deep_discharge", node.name)):
                ddt_alert = ALERTS.observe(
                    "ddt_window_breach",
                    node.name,
                    ddt,
                    self._last_t,
                    threshold=self.config.ddt_threshold,
                )
                dr_alert = ALERTS.observe(
                    "dr_reserve_exhaustion",
                    node.name,
                    reserve,
                    self._last_t,
                    threshold=self.config.reserve_seconds_threshold,
                )
        if not below:
            return False
        if ddt > self.config.ddt_threshold:
            self._record_trigger(node, "ddt", ddt_alert, "ddt_window_breach")
            return True
        if reserve < self.config.reserve_seconds_threshold:
            self._record_trigger(node, "dr", dr_alert, "dr_reserve_exhaustion")
            return True
        if current_draw_w > self._ration_w(node, self._last_t):
            self._record_trigger(node, "ration", None, None)
            return True
        return False

    def _record_trigger(self, node: Node, trigger: str, alert, rule_name) -> None:
        """Remember which check tripped and its causal anchor event.

        The cause is the alert emission backing the trip (fresh, or the
        still-active episode's when dedup suppressed one), falling back
        to the node's open deep-discharge span — the rationing check has
        no alert rule, and alerting may be off while tracing is on.
        """
        if not BUS.enabled:
            return
        cause = 0
        if alert is not None and not alert.cleared:
            cause = alert.eid
        elif rule_name is not None and ALERTS.enabled:
            cause = ALERTS.active_cause(rule_name, node.name)
        if not cause:
            cause = SPANS.open_id("deep_discharge", node.name)
        self.last_trigger[node.name] = (trigger, cause)

    def act(self, node: Node, t: float) -> str:
        """Apply the Fig.-9 action ladder to a triggered node.

        Returns the action taken: ``"migrated"``, ``"throttled"``, or
        ``"capped"`` (discharge cap only, when the server is already at
        its frequency floor).
        """
        cfg = self.config
        if cfg.prefer_migration and self.scheduler is not None and node.server.vms:
            # Move the heaviest migratable VM to the healthiest node —
            # but only when that node's battery is materially healthier,
            # otherwise migration is the BAAT-h churn the paper criticises.
            candidates = sorted(
                node.server.vms, key=lambda vm: -vm.workload.mean_util
            )
            for vm in candidates:
                target = self.scheduler.migration_target(vm, node.name)
                if target is None:
                    continue
                target_node = self.cluster.node(target)
                margin = target_node.battery.soc - node.battery.soc
                if margin < cfg.migration_soc_margin:
                    continue
                try:
                    self.cluster.migrate(vm.name, target)
                except MigrationError:
                    continue
                self.migrations += 1
                self._cap_discharge(node, t)
                return "migrated"
        # DVFS fallback ("if the VM cannot be migrated ... perform DVFS").
        if node.server.freq_index < cfg.max_throttle_index and node.server.throttle_down():
            self.throttles += 1
            if BUS.enabled:
                # One dvfs_cap span covers first throttle to full recovery
                # (start is idempotent while the episode stays open).
                span_id = SPANS.start("dvfs_cap", node=node.name, t=t)
                BUS.emit(
                    DvfsCapEvent(
                        t=t,
                        span_id=span_id,
                        node=node.name,
                        freq_index=node.server.freq_index,
                        freq=node.server.frequency,
                    )
                )
            if REGISTRY.enabled:
                REGISTRY.counter("slowdown/dvfs_caps").inc()
            self._cap_discharge(node, t)
            return "throttled"
        # Ladder exhausted. If even the idle draw is unsustainable, park
        # the server gracefully — the prototype's planned checkpointing
        # ("when solar power budget is temporarily unavailable, our system
        # can make checkpoint and all VM states are saved") — instead of
        # letting the battery run to an unplanned cut-off.
        if (
            cfg.allow_parking
            and self._ration_w(node, t) < node.server.params.idle_w
            and self._active_count() > max(1, len(self.cluster.nodes) // 2)
        ):
            self._evacuate(node, t)
            for vm in node.server.vms:
                vm.checkpoint()
            node.server.policy_off = True
            node.discharge_cap_w = 0.0
            self.parks += 1
            if BUS.enabled:
                span_id = SPANS.start("parked", node=node.name, t=t)
                BUS.emit(
                    ParkEvent(
                        t=t, span_id=span_id, node=node.name, reason="slowdown"
                    )
                )
            if REGISTRY.enabled:
                REGISTRY.counter("slowdown/parks").inc()
            return "parked"
        self._cap_discharge(node, t)
        return "capped"

    def _active_count(self) -> int:
        """Servers currently serving (up and not parked). Parking stops at
        half the fleet — the datacenter sheds load, it does not shut."""
        return sum(
            1 for n in self.cluster if n.is_up and not n.server.policy_off
        )

    def _evacuate(self, node: Node, t: float) -> None:
        """Move VMs off a node that is about to park.

        The SoC margin is waived here: a parked VM makes zero progress, so
        *any* live host beats staying.
        """
        if self.scheduler is None:
            return
        moved = 0
        # The evacuation span groups the burst of migrations it causes.
        with SPANS.span("evacuation", node=node.name, t=t) as span_id:
            for vm in list(node.server.vms):
                target = self.scheduler.migration_target(vm, node.name)
                if target is None:
                    continue
                try:
                    self.cluster.migrate(vm.name, target)
                except MigrationError:
                    continue
                self.migrations += 1
                moved += 1
            if moved and BUS.enabled:
                BUS.emit(
                    EvacuationEvent(
                        t=t, span_id=span_id, node=node.name, moved=moved
                    )
                )

    def recover(self, node: Node) -> None:
        """Release parking/throttling/caps gradually as the battery
        recovers.

        Stepping one DVFS level per control pass avoids the throttle/
        recover oscillation a full jump would cause at the recovery edge.
        """
        if node.server.policy_off:
            # Waking parked servers is a cluster-level decision (the
            # consolidation plan), not a per-node one: a freshly recharged
            # battery does not mean the fleet can afford another server.
            return
        if node.battery.soc >= self.config.recovery_soc:
            if node.server.throttle_up() and BUS.enabled:
                BUS.emit(
                    DvfsUncapEvent(
                        t=self._last_t,
                        span_id=SPANS.open_id("dvfs_cap", node.name),
                        node=node.name,
                        freq_index=node.server.freq_index,
                        freq=node.server.frequency,
                    )
                )
                if node.server.freq_index == 0:
                    # Back at full frequency: the cap episode is over.
                    SPANS.end("dvfs_cap", node=node.name, t=self._last_t)
            node.discharge_cap_w = float("inf")

    def protected_floor(self, node: Node) -> float:
        """SoC floor the rationing protects for this node.

        An explicit per-node override (planned aging's Eq.-7 spending
        allowance) wins; otherwise the floor tracks the node's low-SoC
        threshold at a fixed offset.
        """
        hard_floor = node.battery.params.cutoff_soc + 0.02
        if node.name in self.floor_override:
            return max(hard_floor, self.floor_override[node.name])
        threshold = self.low_soc_threshold(node)
        offset = self.config.low_soc_threshold - self.config.protected_soc
        return max(hard_floor, threshold - offset)

    def _ration_w(self, node: Node, t: float) -> float:
        """Sustainable battery power: the charge above the protected floor
        rationed over the remainder of the operating window."""
        battery = node.battery
        tod_h = (t % SECONDS_PER_DAY) / SECONDS_PER_HOUR
        remaining_s = max(300.0, (self.window_end_h - tod_h) * SECONDS_PER_HOUR)
        usable_ah = max(
            0.0,
            (battery.soc - self.protected_floor(node)) * battery.effective_capacity_ah,
        )
        voltage = battery.terminal_voltage(0.0)
        return usable_ah * voltage * SECONDS_PER_HOUR / remaining_s

    def _cap_discharge(self, node: Node, t: float) -> None:
        """Cap battery draw at the sustainable ration.

        Above the protected SoC floor the cap is floored at the server's
        idle draw — a throttled server should ride through at minimum
        speed rather than flap through brownout/boot cycles. At the floor
        itself the ration takes over fully; the battery is not drained
        past the protected charge.
        """
        # A parking-capable monitor parks before the floor matters; a
        # DVFS-only monitor cannot shed the idle draw, so the server keeps
        # eating (and eventually browns out) — the paper's "passive
        # solution" behaviour of BAAT-s.
        node.discharge_cap_w = max(self._ration_w(node, t), node.server.params.idle_w)

    # ------------------------------------------------------------------
    def control(self, t: float, node_draws: dict) -> List[str]:
        """One monitoring pass over all nodes.

        Parameters
        ----------
        node_draws:
            Mapping of node name to its battery draw (W) in the last step,
            used for the DR/reserve check.

        Returns the actions taken, for logging.
        """
        actions: List[str] = []
        self._last_t = t
        for node in self.cluster:
            # Skip down servers and consolidation-parked ones — a parked
            # node's zero discharge cap must not be overridden here.
            if not node.is_up or node.server.policy_off:
                continue
            draw = node_draws.get(node.name, 0.0)
            if ALERTS.enabled:
                ALERTS.observe(
                    "soc_floor_violation",
                    node.name,
                    node.battery.soc,
                    t,
                    threshold=self.protected_floor(node),
                )
            if self.check(node, draw):
                trigger, cause = self.last_trigger.pop(node.name, ("", 0))
                # Everything the action ladder emits — migrations, DVFS
                # caps, parks, evacuations — inherits the triggering
                # alert/excursion as its cause through the ambient
                # context, no signature plumbing needed.
                with caused_by(cause):
                    action = self.act(node, t)
                    actions.append(f"{node.name}:{action}")
                    if self.first_action_t is None:
                        self.first_action_t = t
                    if BUS.enabled:
                        BUS.emit(
                            SlowdownActionEvent(
                                t=t,
                                node=node.name,
                                action=action,
                                soc=node.battery.soc,
                                draw_w=draw,
                                cap_w=node.discharge_cap_w,
                                trigger=trigger,
                            )
                        )
                if REGISTRY.enabled:
                    REGISTRY.counter(f"slowdown/actions/{action}").inc()
            else:
                self.recover(node)
        return actions

    # ------------------------------------------------------------------
    # Vectorized fast path (fleet stepper)
    # ------------------------------------------------------------------
    def _fleet_thresholds(self, fleet):
        """Per-node (low-SoC threshold, protected floor) arrays.

        Without overrides both are pure config constants, cached per
        fleet; planned aging's per-node overrides force a rebuild through
        the object-path accessors every pass, keeping the arrays
        bit-identical to :meth:`low_soc_threshold`/:meth:`protected_floor`.
        """
        if not self.low_soc_override and not self.floor_override:
            cached = self._thr_cache
            if cached is not None and cached[0] is fleet:
                return cached[1], cached[2]
            thr = np.full(fleet.n, self.config.low_soc_threshold)
            offset = self.config.low_soc_threshold - self.config.protected_soc
            floor = np.maximum(fleet.cutoff_soc + 0.02, thr - offset)
            self._thr_cache = (fleet, thr, floor)
            return thr, floor
        thr = np.array([self.low_soc_threshold(nd) for nd in fleet.nodes])
        floor = np.array([self.protected_floor(nd) for nd in fleet.nodes])
        return thr, floor

    def _reserve_seconds_array(self, fleet, idx, draws, voltage, der):
        """Vector :func:`reserve_seconds` for the node subset ``idx``.

        Same branch structure as the scalar: zero draw -> inf, dead
        voltage -> 0, Peukert-inflated drain otherwise.
        """
        out = np.full(len(idx), float("inf"))
        out[(draws > 0.0) & (voltage <= 0.0)] = 0.0
        li = np.nonzero((draws > 0.0) & (voltage > 0.0))[0]
        if len(li):
            sub = idx[li]
            current = draws[li] / voltage[li]
            avail = np.maximum(
                0.0, (fleet.soc[sub] - fleet.cutoff_soc[sub]) * der["eff_cap"][sub]
            )
            pf = peukert_factor_array(
                current, fleet.i_ref[sub], fleet.k_minus_1[sub]
            )
            drain = current * pf / SECONDS_PER_HOUR
            pos = drain > 0.0
            out[li] = np.where(
                pos,
                np.divide(avail, drain, out=np.zeros(len(li)), where=pos),
                float("inf"),
            )
        return out

    def _ration_w_array(self, fleet, idx, floor, voltage, der, t):
        """Vector :meth:`_ration_w` for the node subset ``idx``."""
        tod_h = (t % SECONDS_PER_DAY) / SECONDS_PER_HOUR
        remaining_s = max(300.0, (self.window_end_h - tod_h) * SECONDS_PER_HOUR)
        usable = np.maximum(0.0, (fleet.soc[idx] - floor) * der["eff_cap"][idx])
        return usable * voltage * SECONDS_PER_HOUR / remaining_s

    def fleet_control(self, t: float, fleet) -> bool:
        """One monitoring pass as array threshold checks over ``fleet``.

        Covers the pure-decision part of :meth:`control`: the Fig.-9
        trigger predicates (DDT, reserve, ration) for every eligible node
        plus the recovery release. Returns ``False`` — telling the caller
        to materialize and run the object path instead — whenever
        alerting is on (check/control feed ``ALERTS.observe`` for every
        node, triggered or not), any node actually triggers its action
        ladder, or a traced pass would release restricted nodes (the
        object path's ``recover()`` emits the DvfsUncap events); the
        rare per-node actions are deliberately not replicated in array
        form. A traced pass with zero triggers and zero releases emits
        no events on the object path either, so plain tracing keeps the
        array fast path and traces stay event-for-event identical.

        Bit-compatibility: the trigger predicates depend only on battery/
        tracker state and constants, never on earlier actions within the
        same pass, so evaluating them in one batch matches the sequential
        object loop; a pass with zero triggers performs exactly the
        recovery writes, applied here to the same nodes in node order.
        """
        if ALERTS.enabled:
            return False
        self._last_t = t
        cfg = self.config
        soc = fleet.soc
        eligible = fleet.server_up & ~fleet.policy_off_mask
        thr, floor = self._fleet_thresholds(fleet)
        below = eligible & (soc < thr)
        if below.any():
            bi = np.nonzero(below)[0]
            ddt = self.controller.window_ddt_array(fleet)[bi]
            triggered = ddt > cfg.ddt_threshold
            if not triggered.all():
                der = fleet.derived_now()
                # The DR draw signal: the same floats the engine's lazy
                # last_draw_powers() refresh hands the object path.
                cur = np.maximum(0.0, fleet.last_current[bi])
                tv = fleet.terminal_voltage(soc[bi], cur, der, bi)
                draws = cur * np.maximum(tv, 0.0)
                v0 = fleet.ocv(soc, der)[bi]
                reserve = self._reserve_seconds_array(fleet, bi, draws, v0, der)
                triggered |= reserve < cfg.reserve_seconds_threshold
                ration = self._ration_w_array(fleet, bi, floor[bi], v0, der, t)
                triggered |= draws > ration
            if triggered.any():
                return False
        # No trigger anywhere: the object loop would only run recover().
        rec = eligible & (soc >= cfg.recovery_soc) & fleet.policy_restricted
        if rec.any():
            if BUS.enabled:
                # Releases emit DvfsUncapEvents — those must come from
                # the object path so traced runs see identical events.
                return False
            for i in np.nonzero(rec)[0].tolist():
                node = fleet.nodes[i]
                node.server.throttle_up()
                node.discharge_cap_w = float("inf")
                fleet.policy_restricted[i] = node.server.freq_index > 0
        return True
