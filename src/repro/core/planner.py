"""Planned aging: aging-rate management (paper section IV-D, Eq. 7).

Batteries typically outlive their usefulness mismatched: lead-acid lasts
3-10 years while datacenter infrastructure lasts 10-15, so operators
discard batteries or servers before end-of-life. If the battery's
discard date is known, BAAT "shifts" performance from the unused tail of
the battery's life into the used portion by *raising* the allowed depth
of discharge:

    DoD_goal = (C_total - C_used) / Cycle_plan        (Eq. 7)

where ``C_total`` is the battery's nominal life-long Ah throughput,
``C_used`` what has already been discharged, and ``Cycle_plan`` the number
of cycles remaining until the planned discard date. The planned-aging
policy implements it by replacing the slowdown scheme's 40 % low-SoC
threshold with ``1 - DoD_goal`` (section IV-D), while hiding continues to
balance nodes around the planned rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.battery.unit import BatteryUnit
from repro.errors import ConfigurationError
from repro.units import SECONDS_PER_DAY, clamp

#: Practical DoD bounds: even planned aging keeps a reserve above 90 % DoD
#: (the paper notes "an upper bound of battery discharge (i.e., over 90 %
#: DoD)"), and a floor keeps the battery actually usable.
DOD_MIN = 0.10
DOD_MAX = 0.90


def dod_goal(
    c_total_ah: float,
    c_used_ah: float,
    cycles_planned: float,
    capacity_ah: float,
) -> float:
    """Eq. 7: the per-cycle DoD that consumes the remaining throughput in
    exactly the planned number of cycles.

    ``(C_total - C_used) / Cycle_plan`` yields Ah per cycle; dividing by
    the nominal capacity expresses it as the DoD fraction of Eq. 7. The
    result is clamped into the practical [10 %, 90 %] band.
    """
    if c_total_ah <= 0:
        raise ConfigurationError("c_total_ah must be positive")
    if c_used_ah < 0:
        raise ConfigurationError("c_used_ah must be >= 0")
    if cycles_planned <= 0:
        raise ConfigurationError("cycles_planned must be positive")
    if capacity_ah <= 0:
        raise ConfigurationError("capacity_ah must be positive")
    remaining = max(0.0, c_total_ah - c_used_ah)
    raw = remaining / cycles_planned / capacity_ah
    return clamp(raw, DOD_MIN, DOD_MAX)


@dataclass
class PlannedAgingManager:
    """Tracks the plan and recomputes the DoD goal from battery logs.

    Attributes
    ----------
    service_life_days:
        Days from battery installation to the datacenter's end-of-life
        (the Fig. 22 sweep variable).
    cycles_per_day:
        Cycling cadence of the deployment (solar-buffered datacenters run
        roughly one major cycle per day).
    """

    service_life_days: float
    cycles_per_day: float = 1.0

    def __post_init__(self) -> None:
        if self.service_life_days <= 0:
            raise ConfigurationError("service_life_days must be positive")
        if self.cycles_per_day <= 0:
            raise ConfigurationError("cycles_per_day must be positive")

    def remaining_cycles(self, elapsed_s: float) -> float:
        """Cycles left before the planned discard date (>= 1)."""
        elapsed_days = elapsed_s / SECONDS_PER_DAY
        remaining_days = max(0.0, self.service_life_days - elapsed_days)
        return max(1.0, remaining_days * self.cycles_per_day)

    def current_dod_goal(self, battery: BatteryUnit) -> float:
        """Eq. 7 evaluated on a battery's live usage log.

        ``C_total`` comes from the battery's constant-throughput lifetime
        parameter scaled by per-cycle nominal capacity; ``C_used`` is the
        logged cumulative discharge (Eq. 1's numerator).
        """
        c_total = battery.params.lifetime_ah_throughput
        c_used = battery.aging.state.discharged_ah
        cycles = self.remaining_cycles(battery.time_s)
        return dod_goal(c_total, c_used, cycles, battery.params.capacity_ah)

    def low_soc_threshold(self, battery: BatteryUnit) -> float:
        """The slowdown trigger implied by the plan: ``1 - DoD_goal``."""
        return clamp(1.0 - self.current_dod_goal(battery), 0.05, 0.95)
