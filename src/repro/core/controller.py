"""BAAT controller: metric evaluation and node ranking.

The control server "collect[s] the sensor data and calculate[s] different
metrics to access the aging process" and "can rank the weighted aging
value of all the battery nodes in datacenters for the load placement".
:class:`BAATController` provides exactly that service over a
:class:`~repro.datacenter.cluster.Cluster`: windowed metric queries per
node, Eq.-6 weighted scores, and ascending-aging rankings used by both the
hiding scheduler and the slowdown monitor's migration-target selection.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.power_table import PowerTable
from repro.datacenter.cluster import Cluster
from repro.datacenter.node import Node
from repro.metrics.snapshot import AgingMetrics
from repro.metrics.weighted import EQUAL_WEIGHTS, MetricWeights, node_aging_score

#: Mark label for the rolling assessment window the controller maintains.
WINDOW_MARK = "baat/window"


class BAATController:
    """Aging assessment service over a cluster's battery sensors."""

    def __init__(self, cluster: Cluster, power_table: Optional[PowerTable] = None):
        self.cluster = cluster
        self.power_table = power_table or PowerTable()
        for node in cluster:
            node.tracker.mark(WINDOW_MARK)

    # ------------------------------------------------------------------
    # Sensing
    # ------------------------------------------------------------------
    def log_sensors(self) -> None:
        """Poll every battery sensor into the power table."""
        for node in self.cluster:
            self.power_table.record(node.battery.sample())

    def reset_window(self, node: Optional[Node] = None) -> None:
        """Restart the rolling assessment window (all nodes, or one)."""
        targets = [node] if node is not None else list(self.cluster)
        for n in targets:
            n.tracker.mark(WINDOW_MARK)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def window_metrics(self, node: Node) -> AgingMetrics:
        """The five metrics over the current assessment window."""
        return node.tracker.since(WINDOW_MARK)

    def lifetime_metrics(self, node: Node) -> AgingMetrics:
        """The five metrics over the node's whole history."""
        return node.tracker.lifetime()

    def all_window_metrics(self) -> Dict[str, AgingMetrics]:
        """Window metrics for every node, keyed by node name."""
        return {n.name: self.window_metrics(n) for n in self.cluster}

    # ------------------------------------------------------------------
    # Ranking (Eq. 6)
    # ------------------------------------------------------------------
    def score(self, node: Node, weights: MetricWeights = EQUAL_WEIGHTS) -> float:
        """Weighted aging score for one node's window (higher = worse)."""
        return node_aging_score(self.window_metrics(node), weights)

    def rank_nodes(
        self,
        weights: MetricWeights = EQUAL_WEIGHTS,
        up_only: bool = True,
    ) -> List[Tuple[Node, float]]:
        """Nodes sorted by weighted aging score, slowest-aging first.

        The head of this list is where new load should land (hiding), and
        the preferred migration target (slowdown).
        """
        nodes = self.cluster.up_nodes() if up_only else list(self.cluster.nodes)
        scored = [(n, self.score(n, weights)) for n in nodes]
        scored.sort(key=lambda pair: (pair[1], pair[0].name))
        return scored

    def slowest_aging_node(
        self,
        weights: MetricWeights = EQUAL_WEIGHTS,
        exclude: Tuple[str, ...] = (),
    ) -> Optional[Node]:
        """The healthiest placement/migration target, or None if no node
        qualifies."""
        for node, _ in self.rank_nodes(weights):
            if node.name not in exclude:
                return node
        return None

    def fastest_aging_node(
        self, weights: MetricWeights = EQUAL_WEIGHTS
    ) -> Optional[Node]:
        """The most-stressed node (the candidate to off-load)."""
        ranked = self.rank_nodes(weights)
        return ranked[-1][0] if ranked else None
