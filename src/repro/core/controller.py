"""BAAT controller: metric evaluation and node ranking.

The control server "collect[s] the sensor data and calculate[s] different
metrics to access the aging process" and "can rank the weighted aging
value of all the battery nodes in datacenters for the load placement".
:class:`BAATController` provides exactly that service over a
:class:`~repro.datacenter.cluster.Cluster`: windowed metric queries per
node, Eq.-6 weighted scores, and ascending-aging rankings used by both the
hiding scheduler and the slowdown monitor's migration-target selection.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.power_table import PowerTable
from repro.datacenter.cluster import Cluster
from repro.datacenter.node import Node
from repro.metrics.accumulator import PC_WEIGHTS, SOC_REGIONS
from repro.metrics.snapshot import AgingMetrics
from repro.metrics.weighted import (
    EQUAL_WEIGHTS,
    NAT_SCORE_SCALE,
    MetricWeights,
    node_aging_score,
)

#: Mark label for the rolling assessment window the controller maintains.
WINDOW_MARK = "baat/window"


class BAATController:
    """Aging assessment service over a cluster's battery sensors."""

    def __init__(self, cluster: Cluster, power_table: Optional[PowerTable] = None):
        self.cluster = cluster
        self.power_table = power_table or PowerTable()
        #: Monotone counter of window restarts; array readers key their
        #: cached per-node mark snapshots on it (see ``attach_fleet``).
        self.window_epoch = 0
        #: Optional struct-of-arrays view of the same cluster. When set
        #: (by the engine on fleet runs), metric scoring and ranking read
        #: the tracker-accumulator arrays directly instead of building a
        #: per-node ``AgingMetrics`` object chain.
        self._fleet = None
        for node in cluster:
            node.tracker.mark(WINDOW_MARK)

    def attach_fleet(self, fleet) -> None:
        """Accelerate metric queries with a :class:`~repro.sim.fleet.
        FleetState` whose arrays are authoritative for this cluster.

        Only valid while the fleet arrays track every tracker mutation —
        i.e. on fleet-stepper runs, where all observation goes through
        the vectorized power path. The ranking produced from the arrays
        is bit-identical to the object path (same score floats, same
        ``(score, name)`` sort key).
        """
        self._fleet = fleet

    # ------------------------------------------------------------------
    # Sensing
    # ------------------------------------------------------------------
    def log_sensors(self) -> None:
        """Poll every battery sensor into the power table."""
        for node in self.cluster:
            self.power_table.record(node.battery.sample())

    def reset_window(self, node: Optional[Node] = None) -> None:
        """Restart the rolling assessment window (all nodes, or one)."""
        targets = [node] if node is not None else list(self.cluster)
        for n in targets:
            n.tracker.mark(WINDOW_MARK)
        self.window_epoch += 1

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def window_metrics(self, node: Node) -> AgingMetrics:
        """The five metrics over the current assessment window."""
        return node.tracker.since(WINDOW_MARK)

    def lifetime_metrics(self, node: Node) -> AgingMetrics:
        """The five metrics over the node's whole history."""
        return node.tracker.lifetime()

    def all_window_metrics(self) -> Dict[str, AgingMetrics]:
        """Window metrics for every node, keyed by node name."""
        return {n.name: self.window_metrics(n) for n in self.cluster}

    # ------------------------------------------------------------------
    # Array metrics (fleet fast path)
    # ------------------------------------------------------------------
    def window_deltas(self, fleet) -> Dict[str, np.ndarray]:
        """Per-node window accumulators (live arrays minus window marks).

        Each entry is the array twin of ``tracker.acc - mark`` for the
        field: the same elementwise subtraction the object path performs
        in :meth:`MetricsAccumulator.__sub__`.
        """
        marks = fleet.mark_arrays(WINDOW_MARK, self.window_epoch)
        return {
            "discharged_ah": fleet.tr_discharged_ah - marks["discharged_ah"],
            "charged_ah": fleet.tr_charged_ah - marks["charged_ah"],
            "region": fleet.tr_region - marks["region"],
            "total_time_s": fleet.tr_total_time_s - marks["total_time_s"],
            "deep_time_s": fleet.tr_deep_time_s - marks["deep_time_s"],
        }

    def window_nat_array(self, fleet) -> np.ndarray:
        """Vector Eq. 1 over the current window (fleet arrays)."""
        d = fleet.tr_discharged_ah - fleet.mark_arrays(
            WINDOW_MARK, self.window_epoch
        )["discharged_ah"]
        return d / fleet.tracker_lifetime_ah

    def window_ddt_array(self, fleet) -> np.ndarray:
        """Vector Eq. 5 over the current window (fleet arrays)."""
        marks = fleet.mark_arrays(WINDOW_MARK, self.window_epoch)
        total = fleet.tr_total_time_s - marks["total_time_s"]
        deep = fleet.tr_deep_time_s - marks["deep_time_s"]
        pos = total > 0.0
        return np.where(
            pos, np.divide(deep, total, out=np.zeros_like(deep), where=pos), 0.0
        )

    def score_array(
        self, fleet, weights: MetricWeights = EQUAL_WEIGHTS
    ) -> np.ndarray:
        """Vector :func:`node_aging_score` over the window arrays.

        Every operation is an elementwise add/sub/mul/div/min — exact
        under IEEE-754 — in the same association order as the scalar
        score, so each element is bit-identical to ``score(node)``.
        """
        d = self.window_deltas(fleet)
        discharged = d["discharged_ah"]
        charged = d["charged_ah"]
        has_d = discharged > 1e-12

        nat = discharged / fleet.tracker_lifetime_ah
        nat_term = np.minimum(1.0, nat * NAT_SCORE_SCALE)

        # CF (Eq. 2) and its badness deficit, with the object path's three
        # branches: discharge seen -> charged/discharged; charge only ->
        # inf (deficit 0); resting -> 1.0 (deficit 0).
        cf = np.where(
            has_d,
            np.divide(charged, discharged, out=np.ones_like(charged), where=has_d),
            np.where(charged > 1e-12, np.inf, 1.0),
        )
        cf_term = np.where(
            np.isinf(cf) | (cf >= 1.0), 0.0, 1.0 - np.maximum(0.0, cf)
        )

        # PC (Eqs. 3-4): region shares weighted 1..4, averaged. The sum's
        # fold order matches the scalar generator expression (A..D).
        safe_d = np.where(has_d, discharged, 1.0)
        acc = np.zeros_like(discharged)
        for row, label in enumerate(SOC_REGIONS):
            acc = acc + (d["region"][row] / safe_d) * PC_WEIGHTS[label]
        pc = np.where(has_d, acc / 4.0, 0.0)

        return weights.cf * cf_term + weights.pc * pc + weights.nat * nat_term

    # ------------------------------------------------------------------
    # Ranking (Eq. 6)
    # ------------------------------------------------------------------
    def score(self, node: Node, weights: MetricWeights = EQUAL_WEIGHTS) -> float:
        """Weighted aging score for one node's window (higher = worse)."""
        return node_aging_score(self.window_metrics(node), weights)

    def rank_nodes(
        self,
        weights: MetricWeights = EQUAL_WEIGHTS,
        up_only: bool = True,
    ) -> List[Tuple[Node, float]]:
        """Nodes sorted by weighted aging score, slowest-aging first.

        The head of this list is where new load should land (hiding), and
        the preferred migration target (slowdown). With a fleet attached
        the scores come from one array pass instead of a per-node object
        chain; the result is bit-identical either way.
        """
        if self._fleet is not None:
            scores = self.score_array(self._fleet, weights).tolist()
            pool = zip(self._fleet.nodes, scores)
            scored = [
                (n, s) for n, s in pool if (n.is_up if up_only else True)
            ]
        else:
            nodes = self.cluster.up_nodes() if up_only else list(self.cluster.nodes)
            scored = [(n, self.score(n, weights)) for n in nodes]
        scored.sort(key=lambda pair: (pair[1], pair[0].name))
        return scored

    def slowest_aging_node(
        self,
        weights: MetricWeights = EQUAL_WEIGHTS,
        exclude: Tuple[str, ...] = (),
    ) -> Optional[Node]:
        """The healthiest placement/migration target, or None if no node
        qualifies."""
        for node, _ in self.rank_nodes(weights):
            if node.name not in exclude:
                return node
        return None

    def fastest_aging_node(
        self, weights: MetricWeights = EQUAL_WEIGHTS
    ) -> Optional[Node]:
        """The most-stressed node (the candidate to off-load)."""
        ranked = self.rank_nodes(weights)
        return ranked[-1][0] if ranked else None
