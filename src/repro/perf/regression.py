"""Rolling-baseline regression detection over the perf history.

Each metric's newest value is compared to a robust baseline built from
the last :data:`BASELINE_WINDOW` records of the *same host fingerprint*
(numbers from different machines never baseline each other). The
baseline is median ± MAD — one outlier run cannot poison it the way a
mean/stdev would — and the MAD is floored at a fraction of the median so
a perfectly-stable series (MAD 0) does not turn measurement jitter into
an alert. A value regresses when it is both statistically far outside
the baseline (``deviation >= DEVIATION_THRESHOLD`` sigmas) *and*
practically worse (``>= MIN_REL_WORSENING`` relative), in the metric's
bad direction as inferred from its name.

Independently, :func:`change_point` scans the whole series for the split
that maximises the shift between segment medians — the "when did this
start" annotation for a drift that crept in over several commits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.perf.store import PerfHistory, PerfRecord

#: Fewest same-host prior values a metric needs before it can be gated.
MIN_BASELINE = 3

#: Rolling window: baselines use at most this many trailing records.
BASELINE_WINDOW = 20

#: How many robust sigmas outside baseline counts as a regression.
#: Mirrored by the ``perf_regression`` alert rule in
#: :func:`repro.obs.alerts.default_rules`.
DEVIATION_THRESHOLD = 4.0

#: MAD -> sigma for normally-distributed noise.
MAD_SCALE = 1.4826

#: Sigma floor as a fraction of |median|: jitter below 5 % never fires.
REL_FLOOR = 0.05

#: A regression must also be at least this much worse in relative terms.
MIN_REL_WORSENING = 0.10

#: Metric-name suffixes where bigger numbers are better. Checked before
#: the lower-is-better suffixes so ``*_steps_per_s`` is not caught by
#: the ``_s`` time rule.
_HIGHER_BETTER = ("_per_s", "speedup", "size_win_x", "hit_rate")

#: Metric-name suffixes where smaller numbers are better.
_LOWER_BETTER = (
    "_s",
    "_pct",
    "_bytes",
    "us_per_step",
    "_ratio",
    "control_over_power",
    "/p50",
    "/p95",
    "/p99",
    # aging/latency rollups: score_max, nat_max, ddt_max, cell_wall_s/mean
    "_max",
    "_mean",
    "/mean",
    "/max",
)


def metric_direction(name: str) -> Optional[str]:
    """``"higher"``/``"lower"`` = which way is *better*; ``None`` = ungated.

    Inferred from the naming convention of :mod:`repro.perf.ingest`;
    metrics with no recognisable unit suffix (counts, health scores) are
    recorded and plotted but never gate a check.
    """
    for suffix in _HIGHER_BETTER:
        if name.endswith(suffix):
            return "higher"
    for suffix in _LOWER_BETTER:
        if name.endswith(suffix):
            return "lower"
    return None


# ----------------------------------------------------------------------
# Baseline statistics
# ----------------------------------------------------------------------
@dataclass
class BaselineStats:
    """Robust summary of a metric's trailing window."""

    median: float
    sigma: float
    n: int


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def baseline_stats(values: Sequence[float]) -> BaselineStats:
    """Median ± floored MAD-sigma of a window of prior values."""
    med = _median(values)
    mad = _median([abs(v - med) for v in values])
    sigma = max(mad * MAD_SCALE, REL_FLOOR * abs(med), 1e-12)
    return BaselineStats(median=med, sigma=sigma, n=len(values))


# ----------------------------------------------------------------------
# Change-point scan
# ----------------------------------------------------------------------
@dataclass
class ChangePoint:
    """The best split of a series into a before/after level shift."""

    index: int  # first point of the "after" segment
    before: float  # median of the left segment
    after: float  # median of the right segment
    score: float  # |after - before| in pooled robust sigmas


def change_point(
    values: Sequence[float],
    min_segment: int = MIN_BASELINE,
    min_score: float = DEVIATION_THRESHOLD,
) -> Optional[ChangePoint]:
    """Best level-shift split, or ``None`` if no split scores enough.

    Brute-force over all splits leaving ``min_segment`` points on each
    side; series here are tens of points, so O(n^2) is fine.
    """
    n = len(values)
    best: Optional[ChangePoint] = None
    for idx in range(min_segment, n - min_segment + 1):
        left = baseline_stats(values[:idx])
        right = baseline_stats(values[idx:])
        pooled = max(math.hypot(left.sigma, right.sigma) / math.sqrt(2.0), 1e-12)
        score = abs(right.median - left.median) / pooled
        if best is None or score > best.score:
            best = ChangePoint(
                index=idx, before=left.median, after=right.median, score=score
            )
    if best is not None and best.score >= min_score:
        return best
    return None


# ----------------------------------------------------------------------
# The check itself
# ----------------------------------------------------------------------
@dataclass
class MetricCheck:
    """One metric's newest value judged against its rolling baseline."""

    metric: str
    value: float
    median: float
    sigma: float
    deviation: float  # robust sigmas *worse* than baseline (<= 0 is fine)
    rel_change: float  # fractional worsening vs the baseline median
    direction: Optional[str]  # which way is better; None = informational
    n_baseline: int
    regressed: bool
    change: Optional[ChangePoint] = None


@dataclass
class CheckResult:
    """Outcome of one ``repro perf check`` over a candidate record."""

    candidate: Optional[PerfRecord]
    fingerprint: str
    checks: List[MetricCheck] = field(default_factory=list)
    no_baseline: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricCheck]:
        return [c for c in self.checks if c.regressed]

    @property
    def cold(self) -> bool:
        """True when nothing had a baseline to judge against."""
        return not self.checks

    @property
    def ok(self) -> bool:
        return not self.regressions


def _check_metric(
    metric: str,
    value: float,
    prior: Sequence[float],
    threshold: float,
) -> MetricCheck:
    stats = baseline_stats(prior)
    direction = metric_direction(metric)
    if direction == "higher":
        worse_by = stats.median - value
    else:  # "lower" and informational metrics share the sign convention
        worse_by = value - stats.median
    deviation = worse_by / stats.sigma
    rel_change = worse_by / max(abs(stats.median), 1e-12)
    regressed = (
        direction is not None
        and deviation >= threshold
        and rel_change >= MIN_REL_WORSENING
    )
    check = MetricCheck(
        metric=metric,
        value=value,
        median=stats.median,
        sigma=stats.sigma,
        deviation=deviation,
        rel_change=rel_change,
        direction=direction,
        n_baseline=stats.n,
        regressed=regressed,
    )
    if regressed:
        check.change = change_point(list(prior) + [value])
    return check


def check_history(
    history: PerfHistory,
    candidate: Optional[PerfRecord] = None,
    window: int = BASELINE_WINDOW,
    threshold: float = DEVIATION_THRESHOLD,
) -> CheckResult:
    """Judge a candidate record against the history's rolling baselines.

    Without an explicit ``candidate``, the newest history record is the
    candidate and everything before it (same fingerprint) the baseline —
    the CI shape, where the fresh run was just recorded. With one (e.g.
    freshly-extracted payload files), the whole same-fingerprint history
    is the baseline and nothing is appended.

    Cold paths — empty history, first record on a new host fingerprint,
    too few prior values — produce ``no_baseline`` entries instead of
    checks and never fail the result.
    """
    if candidate is None:
        latest = history.latest()
        if latest is None:
            return CheckResult(candidate=None, fingerprint="")
        fingerprint = latest.fingerprint
        records = history.records(fingerprint=fingerprint)
        baseline_records = records[:-1]
        candidate_metrics: Dict[str, float] = dict(latest.metrics)
        result = CheckResult(candidate=latest, fingerprint=fingerprint)
    else:
        fingerprint = candidate.fingerprint
        baseline_records = history.records(fingerprint=fingerprint)
        candidate_metrics = dict(candidate.metrics)
        result = CheckResult(candidate=candidate, fingerprint=fingerprint)

    for metric in sorted(candidate_metrics):
        prior = [
            r.metrics[metric] for r in baseline_records if metric in r.metrics
        ]
        prior = prior[-window:]
        if len(prior) < MIN_BASELINE:
            result.no_baseline.append(metric)
            continue
        result.checks.append(
            _check_metric(metric, candidate_metrics[metric], prior, threshold)
        )
    return result
