"""Perf observatory: benchmark/metric history with regression detection.

The repo's perf gates (``BENCH_engine.json``, ``BENCH_obs.json``) are
absolute budgets overwritten on every run — a 30 % regression that stays
under a static gate ships silently. This package adds the longitudinal
layer: every bench payload and campaign rollup appends one provenance-
stamped record to an append-only, schema-versioned JSONL history
(:class:`~repro.perf.store.PerfHistory`), and a regression detector
(:mod:`repro.perf.regression`) compares each metric's newest value to a
rolling same-host baseline (median ± MAD of the last K records) plus a
simple change-point scan over the full series.

Confirmed regressions surface as typed
:class:`~repro.obs.events.PerfRegressionEvent` objects on the obs bus
and as ``perf_regression`` alert-rule observations, so they flow through
the :class:`~repro.obs.alerts.AlertEngine` and the OpenMetrics exporter
like any other alert. The ``repro perf`` CLI family (``record`` /
``history`` / ``diff`` / ``check``) is the operator surface; CI restores
the history artifact, records the fresh payloads, and gates on
``repro perf check``.
"""

from __future__ import annotations

from repro.perf.ingest import detect_source, extract_metrics
from repro.perf.meta import collect_meta, default_history_path, host_fingerprint
from repro.perf.regression import (
    BASELINE_WINDOW,
    DEVIATION_THRESHOLD,
    MIN_BASELINE,
    BaselineStats,
    ChangePoint,
    CheckResult,
    MetricCheck,
    baseline_stats,
    change_point,
    check_history,
    metric_direction,
)
from repro.perf.report import (
    COLD_START_MESSAGE,
    render_check,
    render_diff,
    render_history,
    render_metric_list,
    sparkline,
)
from repro.perf.store import STORE_SCHEMA, PerfHistory, PerfRecord

__all__ = [
    "STORE_SCHEMA",
    "PerfHistory",
    "PerfRecord",
    "collect_meta",
    "host_fingerprint",
    "default_history_path",
    "detect_source",
    "extract_metrics",
    "BASELINE_WINDOW",
    "DEVIATION_THRESHOLD",
    "MIN_BASELINE",
    "BaselineStats",
    "ChangePoint",
    "CheckResult",
    "MetricCheck",
    "baseline_stats",
    "change_point",
    "check_history",
    "metric_direction",
    "COLD_START_MESSAGE",
    "sparkline",
    "render_check",
    "render_diff",
    "render_history",
    "render_metric_list",
]
