"""Append-only, schema-versioned store of benchmark measurements.

One :class:`PerfRecord` per ingested payload — a ``BENCH_engine.json``,
a ``BENCH_obs.json``, a pytest bench-suite report, or a
``campaign_summary.json`` — holding the payload's provenance ``meta``
block and its metrics flattened to ``name -> float``
(:mod:`repro.perf.ingest`). Records serialise one-per-line to JSONL, so
the history file is an append-only log: CI restores it, appends the
fresh run, and re-caches it — nothing is ever rewritten, and two
processes appending interleave safely at line granularity.

Forward compatibility mirrors the trace-event contract: every line
carries ``schema``; lines from a *newer* schema than this code are
skipped on read (counted in :attr:`PerfHistory.n_skipped`) instead of
poisoning the whole history, and unknown fields of the current schema
are dropped.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.perf.ingest import extract_metrics
from repro.perf.meta import collect_meta, host_fingerprint

#: Wire-schema version of one history line.
STORE_SCHEMA = 1


@dataclass
class PerfRecord:
    """One measurement: provenance meta plus flat ``metric -> value``."""

    source: str = ""
    meta: Dict[str, str] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)
    schema: int = STORE_SCHEMA

    # ------------------------------------------------------------------
    @property
    def sha(self) -> str:
        return self.meta.get("git_sha", "")

    @property
    def branch(self) -> str:
        return self.meta.get("branch", "")

    @property
    def timestamp(self) -> str:
        return self.meta.get("timestamp", "")

    @property
    def fingerprint(self) -> str:
        return host_fingerprint(self.meta)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": self.schema,
            "source": self.source,
            "meta": dict(self.meta),
            "metrics": dict(self.metrics),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), separators=(",", ":"), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PerfRecord":
        schema = int(data.get("schema", 0))
        if schema > STORE_SCHEMA:
            raise ConfigurationError(
                f"perf record schema {schema} is newer than the supported "
                f"version {STORE_SCHEMA}"
            )
        meta = data.get("meta") or {}
        metrics = data.get("metrics") or {}
        if not isinstance(meta, dict) or not isinstance(metrics, dict):
            raise ConfigurationError("perf record meta/metrics must be objects")
        return cls(
            source=str(data.get("source", "")),
            meta={str(k): str(v) for k, v in meta.items()},
            metrics={
                str(k): float(v)
                for k, v in metrics.items()
                if isinstance(v, (int, float)) and not isinstance(v, bool)
            },
            schema=schema or STORE_SCHEMA,
        )


class PerfHistory:
    """The on-disk history: append-only JSONL of :class:`PerfRecord`.

    Reads tolerate a corrupted or truncated line (a crashed writer, a
    mangled CI artifact) by skipping it — the count lands in
    :attr:`n_skipped` so tooling can surface the damage without losing
    the rest of the trajectory.
    """

    def __init__(self, path: str):
        self.path = path
        self.n_skipped = 0

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, record: PerfRecord) -> PerfRecord:
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(record.to_json() + "\n")
        return record

    def record_payload(
        self,
        data: Dict[str, object],
        meta: Optional[Dict[str, str]] = None,
    ) -> PerfRecord:
        """Flatten one bench/summary payload and append it.

        Provenance comes from the payload's own ``meta`` block when
        present (the truth stamped at measurement time), then the
        explicit ``meta`` argument, then a fresh :func:`collect_meta`.
        """
        source, metrics = extract_metrics(data)
        payload_meta = data.get("meta")
        if isinstance(payload_meta, dict) and payload_meta:
            meta = {str(k): str(v) for k, v in payload_meta.items()}
        elif meta is None:
            meta = collect_meta()
        return self.append(
            PerfRecord(source=source, meta=meta, metrics=metrics)
        )

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def records(
        self,
        source: Optional[str] = None,
        fingerprint: Optional[str] = None,
    ) -> List[PerfRecord]:
        """All records in append order, optionally filtered."""
        self.n_skipped = 0
        out: List[PerfRecord] = []
        if not os.path.exists(self.path):
            return out
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = PerfRecord.from_dict(json.loads(line))
                except (ValueError, ConfigurationError, TypeError):
                    self.n_skipped += 1
                    continue
                if source is not None and record.source != source:
                    continue
                if fingerprint is not None and record.fingerprint != fingerprint:
                    continue
                out.append(record)
        return out

    def __len__(self) -> int:
        return len(self.records())

    def latest(self, fingerprint: Optional[str] = None) -> Optional[PerfRecord]:
        """The newest record (optionally for one host fingerprint)."""
        records = self.records(fingerprint=fingerprint)
        return records[-1] if records else None

    def metric_names(
        self, fingerprint: Optional[str] = None
    ) -> List[str]:
        """Sorted names of every metric the history has a value for."""
        names = set()
        for record in self.records(fingerprint=fingerprint):
            names.update(record.metrics)
        return sorted(names)

    def series(
        self,
        metric: str,
        fingerprint: Optional[str] = None,
        records: Optional[Iterable[PerfRecord]] = None,
    ) -> List[Tuple[PerfRecord, float]]:
        """``(record, value)`` pairs carrying ``metric``, append order.

        Pass ``records`` to reuse one :meth:`records` read across many
        series lookups (the check path walks every metric).
        """
        if records is None:
            records = self.records(fingerprint=fingerprint)
        return [(r, r.metrics[metric]) for r in records if metric in r.metrics]
