"""Provenance for perf records: who measured what, where, when.

A benchmark number is only comparable to another measured on the same
kind of machine with the same runtime — the rolling baselines in
:mod:`repro.perf.regression` are therefore scoped by
:func:`host_fingerprint` (hostname + platform + python + numpy), while
``git_sha``/``branch``/``timestamp`` pin each record to the code it
measured. :func:`collect_meta` is deliberately dependency-free and
failure-tolerant: outside a git checkout every field degrades to a
placeholder rather than raising, so bench payloads stay writable from
any working directory.
"""

from __future__ import annotations

import os
import platform
import socket
import subprocess
import time
from typing import Dict, Optional

#: Environment variable overriding the default history file location.
HISTORY_ENV = "REPRO_PERF_HISTORY"

#: Environment variable overriding the recorded hostname. Ephemeral CI
#: runners get a random hostname per run, which would put every run on
#: its own baseline; CI sets this to a stable label instead.
HOST_ENV = "REPRO_PERF_HOST"

#: Default on-disk location of the perf history (CI caches this file).
DEFAULT_HISTORY_FILE = "perf-history.jsonl"


def default_history_path() -> str:
    """The history file ``repro perf`` uses when ``--history`` is absent."""
    return os.environ.get(HISTORY_ENV, DEFAULT_HISTORY_FILE)


def _git(*args: str) -> Optional[str]:
    """One git plumbing call; ``None`` on any failure (no git, no repo)."""
    try:
        proc = subprocess.run(
            ("git",) + args,
            capture_output=True,
            text=True,
            timeout=10.0,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    out = proc.stdout.strip()
    return out if proc.returncode == 0 and out else None


def git_sha() -> str:
    """HEAD commit sha (``GITHUB_SHA`` fallback; ``""`` when unknown)."""
    return _git("rev-parse", "HEAD") or os.environ.get("GITHUB_SHA", "")


def git_branch() -> str:
    """Current branch name (``GITHUB_REF_NAME`` fallback)."""
    branch = _git("rev-parse", "--abbrev-ref", "HEAD")
    if branch and branch != "HEAD":  # detached HEAD: fall through to env
        return branch
    return os.environ.get("GITHUB_REF_NAME", branch or "")


def _numpy_version() -> str:
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        return ""
    return numpy.__version__


def _hostname() -> str:
    return os.environ.get(HOST_ENV) or socket.gethostname()


def host_fingerprint(meta: Optional[Dict[str, str]] = None) -> str:
    """Comparability key: records sharing it can baseline each other.

    Built from hostname, OS/architecture, and the python/numpy *feature*
    versions (major.minor — patch releases do not shift performance
    enough to split a baseline, while an interpreter or BLAS generation
    change does).
    """
    if meta is not None and meta.get("fingerprint"):
        return meta["fingerprint"]
    if meta is not None:
        host = meta.get("host", "")
        plat = meta.get("platform", "")
        python = meta.get("python", "")
        numpy_v = meta.get("numpy", "")
    else:
        host = _hostname()
        plat = f"{platform.system()}-{platform.machine()}"
        python = platform.python_version()
        numpy_v = _numpy_version()

    def feature(version: str) -> str:
        return ".".join(version.split(".")[:2]) if version else "?"

    return f"{host}|{plat}|py{feature(python)}|np{feature(numpy_v)}"


def collect_meta() -> Dict[str, str]:
    """The ``meta`` block stamped into every bench payload and record."""
    meta = {
        "git_sha": git_sha(),
        "branch": git_branch(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": _hostname(),
        "platform": f"{platform.system()}-{platform.machine()}",
        "python": platform.python_version(),
        "numpy": _numpy_version(),
    }
    meta["fingerprint"] = host_fingerprint(meta)
    return meta
