"""Flatten bench payloads and campaign rollups into named metric series.

Every producer the repo has — ``bench_engine.py`` (``BENCH_engine.json``),
``bench_obs_overhead.py`` (``BENCH_obs.json``), ``bench_service.py``
(``BENCH_service.json``), the pytest bench suite
(``benchmarks/conftest.py --bench-json``), and the campaign monitor's
``campaign_summary.json`` — writes a differently-shaped document.
:func:`extract_metrics` detects which one it is looking at and flattens
it to ``metric-name -> float``, the only shape the history store and the
regression detector consume. Names are stable, ``/``-separated paths
(``engine/n48/fleet_steps_per_s``, ``obs/fleet/traced_ratio``), so one
metric is one longitudinal series regardless of which payload carried it.

Booleans (the ``ok_*`` gate flags) and non-numeric leaves are dropped:
pass/fail is the static gates' job; this layer records the measurements
themselves.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.errors import ConfigurationError

#: Keys copied from one ``sizes``/``fleet_only`` row of an engine bench.
_ENGINE_SIZE_KEYS = (
    "reference_s",
    "fleet_s",
    "reference_steps_per_s",
    "fleet_steps_per_s",
    "speedup",
)

#: Keys copied from one ``phase_curve`` row of an engine bench.
_ENGINE_CURVE_KEYS = (
    "control_s",
    "power_s",
    "control_us_per_step",
    "control_over_power",
)

#: Top-level scalars of an obs-overhead payload worth a series.
_OBS_SCALAR_KEYS = (
    "disabled_s",
    "null_s",
    "full_s",
    "alerting_s",
    "null_overhead_pct",
    "full_overhead_pct",
    "alerting_overhead_pct",
    "steps_per_s_disabled",
    "steps_per_s_alerting",
)

_OBS_FLEET_KEYS = (
    "untraced_s",
    "frame_traced_s",
    "events_traced_s",
    "traced_ratio",
    "events_ratio",
    "frame_trace_bytes",
    "event_trace_bytes",
    "size_win_x",
)

_OBS_CAMPAIGN_KEYS = ("untraced_s", "monitored_s", "monitor_overhead_pct")

#: Top-level scalars of a service bench (``BENCH_service.json``).
_SERVICE_SCALAR_KEYS = (
    "n_clients",
    "cells_per_s",
    "cache_hit_rate",
    "dedupe_rate",
    "submit_p50_s",
    "submit_p95_s",
    "submit_p99_s",
)

#: Per-phase scalars of a service bench.
_SERVICE_PHASE_KEYS = ("wall_s", "executed", "cache_hits", "dedupe_hits")

#: Quantile fields lifted from the campaign summary's wall-time histogram.
_SUMMARY_WALL_KEYS = ("mean", "p50", "p95", "p99", "max")


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _put(out: Dict[str, float], name: str, value: Any) -> None:
    if _is_number(value):
        out[name] = float(value)


def flatten_engine_bench(data: Dict[str, Any]) -> Dict[str, float]:
    """``BENCH_engine.json``'s ``engine_bench`` block -> metric series."""
    out: Dict[str, float] = {}
    for row in data.get("sizes", []):
        prefix = f"engine/n{row.get('n_nodes', 0)}"
        for key in _ENGINE_SIZE_KEYS:
            _put(out, f"{prefix}/{key}", row.get(key))
    for row in data.get("fleet_only", []):
        prefix = f"engine/n{row.get('n_nodes', 0)}"
        for key in ("fleet_s", "fleet_steps_per_s"):
            _put(out, f"{prefix}/{key}", row.get(key))
    for row in data.get("phase_curve", []):
        prefix = f"engine/curve/n{row.get('n_nodes', 0)}"
        for key in _ENGINE_CURVE_KEYS:
            _put(out, f"{prefix}/{key}", row.get(key))
    for stepper, phases in data.get("phase_breakdown", {}).items():
        for phase, stats in phases.items():
            if isinstance(stats, dict):
                _put(
                    out,
                    f"engine/phase/{stepper}/{phase}_total_s",
                    stats.get("total"),
                )
    return out


def flatten_obs_overhead(data: Dict[str, Any]) -> Dict[str, float]:
    """``BENCH_obs.json``'s ``obs_overhead`` block -> metric series."""
    out: Dict[str, float] = {}
    for key in _OBS_SCALAR_KEYS:
        _put(out, f"obs/{key}", data.get(key))
    fleet = data.get("fleet") or {}
    for key in _OBS_FLEET_KEYS:
        _put(out, f"obs/fleet/{key}", fleet.get(key))
    campaign = data.get("campaign") or {}
    for key in _OBS_CAMPAIGN_KEYS:
        _put(out, f"obs/campaign/{key}", campaign.get(key))
    return out


def flatten_service_bench(data: Dict[str, Any]) -> Dict[str, float]:
    """``BENCH_service.json``'s ``service_bench`` block -> metric series."""
    out: Dict[str, float] = {}
    for key in _SERVICE_SCALAR_KEYS:
        _put(out, f"service/{key}", data.get(key))
    for phase in ("dedupe", "cache", "throughput"):
        row = data.get(phase) or {}
        for key in _SERVICE_PHASE_KEYS:
            _put(out, f"service/{phase}/{key}", row.get(key))
    return out


def _bench_id(nodeid: str) -> str:
    """A compact series name for one pytest bench nodeid."""
    short = nodeid
    if short.startswith("benchmarks/"):
        short = short[len("benchmarks/"):]
    if short.endswith(".py") or ".py::" in short:
        short = short.replace(".py::", ":").replace(".py", "")
    return short.replace("::", ":")


def flatten_bench_suite(data: Dict[str, Any]) -> Dict[str, float]:
    """A ``--bench-json`` suite report -> per-bench wall-time series.

    Only passed benches contribute (a failed bench's wall time measures
    the failure, not the code), and an embedded ``obs_overhead`` payload
    flattens through :func:`flatten_obs_overhead` into the same record.
    """
    out: Dict[str, float] = {}
    for nodeid, entry in (data.get("benches") or {}).items():
        if not isinstance(entry, dict):
            continue
        if entry.get("outcome", "passed") != "passed":
            continue
        _put(out, f"bench/{_bench_id(nodeid)}/wall_s", entry.get("wall_s"))
    if isinstance(data.get("obs_overhead"), dict):
        out.update(flatten_obs_overhead(data["obs_overhead"]))
    return out


def flatten_campaign_summary(data: Dict[str, Any]) -> Dict[str, float]:
    """A ``campaign_summary.json`` rollup -> campaign throughput series."""
    out: Dict[str, float] = {}
    campaign = data.get("campaign") or {}
    _put(out, "campaign/wall_s", campaign.get("wall_s"))
    _put(out, "campaign/n_cells", campaign.get("n_cells"))
    throughput = data.get("throughput") or {}
    _put(out, "campaign/cells_per_s", throughput.get("cells_per_s"))
    cache = data.get("cache") or {}
    _put(out, "campaign/hit_rate", cache.get("hit_rate"))
    wall = data.get("wall_time_s") or {}
    for key in _SUMMARY_WALL_KEYS:
        _put(out, f"campaign/cell_wall_s/{key}", wall.get(key))
    health = data.get("health") or {}
    for key in ("score_mean", "score_max", "nat_max", "ddt_max", "dr_max"):
        _put(out, f"campaign/health/{key}", health.get(key))
    return out


def detect_source(data: Dict[str, Any]) -> str:
    """Which producer wrote this document?

    Detection keys mirror each writer's unique top-level structure;
    unknown documents raise :class:`~repro.errors.ConfigurationError`
    so a typo'd path fails loudly instead of recording nothing.
    """
    if not isinstance(data, dict):
        raise ConfigurationError("perf payload must be a JSON object")
    if "engine_bench" in data:
        return "engine_bench"
    if "benches" in data:
        return "bench_suite"
    if "obs_overhead" in data:
        return "obs_overhead"
    if "service_bench" in data:
        return "service_bench"
    if "campaign" in data and "cells" in data:
        return "campaign_summary"
    raise ConfigurationError(
        "unrecognised perf payload: expected a BENCH_engine.json, "
        "BENCH_obs.json, BENCH_service.json, --bench-json report, or "
        f"campaign_summary.json shape, got top-level keys {sorted(data)[:8]}"
    )


def extract_metrics(data: Dict[str, Any]) -> Tuple[str, Dict[str, float]]:
    """Detect the payload type and flatten it; ``(source, metrics)``."""
    source = detect_source(data)
    if source == "engine_bench":
        metrics = flatten_engine_bench(data["engine_bench"])
    elif source == "bench_suite":
        metrics = flatten_bench_suite(data)
    elif source == "obs_overhead":
        metrics = flatten_obs_overhead(data["obs_overhead"])
    elif source == "service_bench":
        metrics = flatten_service_bench(data["service_bench"])
    else:
        metrics = flatten_campaign_summary(data)
    if not metrics:
        raise ConfigurationError(
            f"perf payload of source {source!r} flattened to no metrics"
        )
    return source, metrics
