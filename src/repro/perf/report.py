"""Terminal rendering for the ``repro perf`` CLI family.

Pure formatting — every function takes already-computed data and returns
a string, so the CLI handlers stay thin and the renderers are trivially
unit-testable. Sparklines use the eight-level block ramp; tables are
plain fixed-width text (no external dependencies, readable in CI logs).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.perf.regression import ChangePoint, CheckResult, metric_direction
from repro.perf.store import PerfRecord

_BLOCKS = "▁▂▃▄▅▆▇█"

#: Printed by ``repro perf check`` when there is nothing to judge yet;
#: tests and CI grep for this exact phrase.
COLD_START_MESSAGE = "no baseline yet, recorded only"


def _fmt(value: float) -> str:
    return f"{value:.6g}"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Eight-level ASCII sparkline; long series are tail-truncated."""
    if not values:
        return ""
    values = list(values)[-width:]
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return _BLOCKS[0] * len(values)
    scale = (len(_BLOCKS) - 1) / span
    return "".join(_BLOCKS[int((v - lo) * scale)] for v in values)


def _short_sha(record: PerfRecord) -> str:
    return record.sha[:9] if record.sha else "-"


def render_history(
    metric: str,
    pairs: Sequence[Tuple[PerfRecord, float]],
    change: Optional[ChangePoint] = None,
    limit: int = 15,
) -> str:
    """Sparkline plus a table of the series' most recent points."""
    if not pairs:
        return f"no recorded values for metric {metric!r}"
    values = [v for _, v in pairs]
    direction = metric_direction(metric) or "info"
    lines = [
        f"{metric}  ({len(values)} record(s), better={direction})",
        f"  {sparkline(values)}",
        f"  min {_fmt(min(values))}  median "
        f"{_fmt(sorted(values)[len(values) // 2])}  max {_fmt(max(values))}",
    ]
    if change is not None:
        record, _ = pairs[change.index]
        lines.append(
            f"  change-point at {_short_sha(record)} "
            f"({record.timestamp or 'unknown time'}): "
            f"{_fmt(change.before)} -> {_fmt(change.after)} "
            f"({change.score:.1f} sigma)"
        )
    lines.append(f"  last {min(limit, len(pairs))} of {len(pairs)}:")
    lines.append("    sha        timestamp             value")
    for record, value in pairs[-limit:]:
        lines.append(
            f"    {_short_sha(record):<10} "
            f"{record.timestamp or '-':<21} {_fmt(value)}"
        )
    return "\n".join(lines)


def render_metric_list(names: Sequence[str]) -> str:
    """The ``repro perf history`` index when no metric is given."""
    if not names:
        return "history is empty — record a payload first"
    lines = [f"{len(names)} metric(s) with history:"]
    lines.extend(f"  {name}" for name in names)
    return "\n".join(lines)


def render_check(result: CheckResult) -> str:
    """Human-readable verdict of one ``repro perf check``."""
    lines: List[str] = []
    if result.candidate is not None and result.candidate.sha:
        lines.append(
            f"checking {_short_sha(result.candidate)} "
            f"on {result.fingerprint or 'unknown host'}"
        )
    if result.cold and not result.no_baseline:
        lines.append(f"history is empty: {COLD_START_MESSAGE}")
        return "\n".join(lines)
    if result.no_baseline:
        lines.append(
            f"{len(result.no_baseline)} metric(s) without enough history "
            f"({COLD_START_MESSAGE})"
        )
    if result.checks:
        lines.append(f"{len(result.checks)} metric(s) checked against baseline")
    for check in result.regressions:
        lines.append(
            f"REGRESSION {check.metric}: {_fmt(check.value)} vs baseline "
            f"median {_fmt(check.median)} (n={check.n_baseline}) — "
            f"{check.deviation:.1f} sigma / {check.rel_change * 100.0:.0f}% "
            f"worse (better={check.direction})"
        )
        if check.change is not None:
            lines.append(
                f"  trend: level shift {_fmt(check.change.before)} -> "
                f"{_fmt(check.change.after)} at point {check.change.index} "
                f"of the series ({check.change.score:.1f} sigma)"
            )
    if result.ok:
        if result.cold:
            lines.append(f"ok: {COLD_START_MESSAGE}")
        else:
            lines.append("ok: no regressions outside baseline")
    else:
        lines.append(f"FAIL: {len(result.regressions)} metric(s) regressed")
    return "\n".join(lines)


def render_diff(
    sha_a: str,
    sha_b: str,
    metrics_a: Dict[str, float],
    metrics_b: Dict[str, float],
) -> str:
    """Metric-by-metric comparison of two recorded shas.

    ``<`` / ``>`` markers flag which side is *worse* for metrics with a
    known direction; shared metrics only (a sha missing a metric simply
    never ran that bench).
    """
    shared = sorted(set(metrics_a) & set(metrics_b))
    if not shared:
        return f"no shared metrics between {sha_a[:9]} and {sha_b[:9]}"
    width = max(len(m) for m in shared)
    lines = [
        f"{len(shared)} shared metric(s), {sha_a[:9]} vs {sha_b[:9]}:",
        f"  {'metric':<{width}}  {'A':>12}  {'B':>12}  {'delta%':>8}",
    ]
    for metric in shared:
        a, b = metrics_a[metric], metrics_b[metric]
        rel = (b - a) / max(abs(a), 1e-12) * 100.0
        direction = metric_direction(metric)
        marker = ""
        if direction == "lower" and b > a:
            marker = "  B worse"
        elif direction == "lower" and b < a:
            marker = "  B better"
        elif direction == "higher" and b < a:
            marker = "  B worse"
        elif direction == "higher" and b > a:
            marker = "  B better"
        lines.append(
            f"  {metric:<{width}}  {_fmt(a):>12}  {_fmt(b):>12}  "
            f"{rel:>+7.1f}%{marker}"
        )
    return "\n".join(lines)
