"""repro — a reproduction of *BAAT: Towards Dynamically Managing Battery
Aging in Green Datacenters* (Liu et al., DSN 2015).

The package builds, from scratch, every substrate the paper's evaluation
rests on — a five-mechanism lead-acid battery simulator, a solar
generation model, a virtualised server cluster with DVFS and VM
migration — and the BAAT framework itself: the five aging metrics
(NAT / CF / PC / DDT / DR), the weighted aging score, and the hiding /
slowing-down / planned-aging management schemes, compared against the
aggressive e-Buff baseline.

Quick start::

    from repro import Scenario, make_policy, run_policy_on_trace
    from repro.solar import DayClass

    scenario = Scenario()                       # the paper's 6-node prototype
    trace = scenario.trace_generator().day(DayClass.CLOUDY)
    result = run_policy_on_trace(scenario, make_policy("baat"), trace)
    print(result.throughput_per_day(), result.worst_damage_per_day())
"""

from repro.battery import BatteryParams, BatteryUnit, BatteryPool
from repro.campaign import (
    CampaignReport,
    ResultCache,
    RunSpec,
    run_campaign,
)
from repro.core import (
    BAATController,
    BAATPolicy,
    BAATHidingPolicy,
    BAATSlowdownPolicy,
    EBuffPolicy,
    PlannedAgingPolicy,
    Policy,
    POLICY_NAMES,
    make_policy,
)
from repro.metrics import AgingMetrics, MetricsTracker
from repro.sim import Scenario, SimResult, Simulation, run_policy_on_trace
from repro.solar import DayClass, PVPanel, SolarTrace, SolarTraceGenerator

__version__ = "1.0.0"

__all__ = [
    "BatteryParams",
    "BatteryUnit",
    "BatteryPool",
    "CampaignReport",
    "ResultCache",
    "RunSpec",
    "run_campaign",
    "BAATController",
    "BAATPolicy",
    "BAATHidingPolicy",
    "BAATSlowdownPolicy",
    "EBuffPolicy",
    "PlannedAgingPolicy",
    "Policy",
    "POLICY_NAMES",
    "make_policy",
    "AgingMetrics",
    "MetricsTracker",
    "Scenario",
    "SimResult",
    "Simulation",
    "run_policy_on_trace",
    "DayClass",
    "PVPanel",
    "SolarTrace",
    "SolarTraceGenerator",
    "__version__",
]
