"""Run specifications: one (scenario, policy, trace) cell of a campaign.

A :class:`RunSpec` is a *description* of a run, not a live simulation —
it must survive pickling into a worker process, so it names the policy
(either by its Table-4 factory name or by a picklable zero-argument
factory) instead of carrying a constructed :class:`~repro.core.policies.
base.Policy`, and its optional ``setup`` hook is a picklable callable
applied to the freshly built :class:`~repro.sim.engine.Simulation` before
stepping (sensitivity analysis swaps perturbed aging models in there).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

from repro.campaign.cache import callable_token, canonical, object_key
from repro.core.policies.base import Policy
from repro.core.policies.factory import make_policy
from repro.errors import ConfigurationError
from repro.sim.engine import Simulation
from repro.sim.results import SimResult
from repro.sim.scenario import Scenario
from repro.solar.trace import SolarTrace


@dataclass(frozen=True)
class RunSpec:
    """One campaign cell.

    Attributes
    ----------
    scenario / trace:
        The experiment description and the matched solar trace.
    policy:
        Table-4 scheme name, built in the worker via
        :func:`~repro.core.policies.factory.make_policy` with the
        scenario's seed. Mutually exclusive with ``policy_factory``.
    policy_factory:
        Zero-argument callable returning a fresh policy (module-level
        functions, classes, and :func:`functools.partial` of those are
        picklable *and* hashable; lambdas/closures force the spec to run
        in-process and uncached).
    setup:
        Optional hook ``setup(sim)`` run after the simulation is built
        and before any stepping.
    record_series:
        Capture full per-step series in the result's recorder.
    label:
        Key for this cell in campaign reports (defaults to ``policy``).
    """

    scenario: Scenario
    trace: SolarTrace
    policy: Optional[str] = None
    policy_factory: Optional[Callable[[], Policy]] = None
    setup: Optional[Callable[[Simulation], None]] = None
    record_series: bool = False
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if (self.policy is None) == (self.policy_factory is None):
            raise ConfigurationError(
                "exactly one of policy (name) or policy_factory is required"
            )
        if self.policy_factory is not None and not callable(self.policy_factory):
            raise ConfigurationError("policy_factory must be callable")
        if self.setup is not None and not callable(self.setup):
            raise ConfigurationError("setup must be callable")

    # ------------------------------------------------------------------
    @property
    def effective_label(self) -> str:
        """Report key for this cell."""
        if self.label:
            return self.label
        if self.policy:
            return self.policy
        return getattr(self.policy_factory, "__name__", repr(self.policy_factory))

    def _policy_token(self) -> Optional[Tuple]:
        if self.policy is not None:
            return ("named-policy", self.policy, self.scenario.seed)
        return callable_token(self.policy_factory)

    def _setup_token(self) -> Optional[Any]:
        if self.setup is None:
            return ("no-setup",)
        return callable_token(self.setup)

    @property
    def cacheable(self) -> bool:
        """Whether this spec has a deterministic content identity."""
        return self._policy_token() is not None and self._setup_token() is not None

    def cache_key(self) -> Optional[str]:
        """Content-hash key for the run, or ``None`` when uncacheable."""
        policy_token = self._policy_token()
        setup_token = self._setup_token()
        if policy_token is None or setup_token is None:
            return None
        return object_key(
            "run-spec",
            canonical(self.scenario),
            policy_token,
            setup_token,
            canonical(self.trace),
            self.record_series,
        )

    # ------------------------------------------------------------------
    def build_policy(self) -> Policy:
        """Construct a fresh policy instance for this cell."""
        if self.policy is not None:
            return make_policy(self.policy, seed=self.scenario.seed)
        return self.policy_factory()

    def build_simulation(self) -> Simulation:
        """Construct the simulation (setup hook applied, not yet run)."""
        sim = Simulation(
            self.scenario,
            self.build_policy(),
            self.trace,
            record_series=self.record_series,
        )
        if self.setup is not None:
            self.setup(sim)
        return sim

    def execute(self) -> SimResult:
        """Run this cell to completion (in whatever process we are in)."""
        return self.build_simulation().run()
