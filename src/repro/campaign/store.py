"""Pluggable byte stores backing :class:`~repro.campaign.cache.ResultCache`.

The campaign cache historically *was* a flat directory of pickle files.
Once the cache is shared — many campaign workers, many clients of the
``repro serve`` daemon — the storage layer needs to be swappable and
crash-safe, so it is factored out behind :class:`CacheStore`:

- :class:`DirStore` keeps the original one-file-per-entry layout, with
  durability hardened: the temp file is fsynced before the atomic
  ``os.replace`` and the directory is fsynced after it, so a crash can
  no longer leave a truncated payload under its final name.
- :class:`SqliteStore` packs every entry into a single SQLite database
  in WAL mode with ``BEGIN IMMEDIATE`` single-writer locking — the
  backend of choice for a long-running daemon where thousands of tiny
  result files would stress the filesystem.

Stores move opaque ``bytes``; (un)pickling, hit/miss accounting and key
validation stay in :class:`~repro.campaign.cache.ResultCache`. Store
write failures surface as :class:`OSError` (sqlite errors are wrapped)
because the campaign runner treats a failed memoization as best-effort.

Backend selection (first match wins): explicit ``backend=`` argument,
the ``REPRO_CACHE_BACKEND`` environment variable, a ``.sqlite``/``.db``
suffix on the cache path, else the flat directory.
"""

from __future__ import annotations

import os
import sqlite3
import tempfile
import threading
import time
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.errors import ConfigurationError

PathLike = Union[str, Path]

_ENV_BACKEND = "REPRO_CACHE_BACKEND"

#: Seconds a sqlite writer waits on the single-writer lock before
#: giving up (surfaced as OSError; the runner records and moves on).
SQLITE_BUSY_TIMEOUT_S = 10.0


class CacheStore:
    """Interface for a keyed blob store.

    Keys are pre-validated content hashes (lowercase hex). ``load``
    returns ``None`` for missing *or unreadable* entries — a corrupt
    entry is deleted on the way out, never surfaced.
    """

    #: short name used in status lines / bench payloads
    backend = "abstract"

    def load(self, key: str) -> Optional[bytes]:
        raise NotImplementedError

    def save(self, key: str, blob: bytes) -> None:
        raise NotImplementedError

    def delete(self, key: str) -> None:
        raise NotImplementedError

    def keys(self) -> Iterator[str]:
        raise NotImplementedError

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def size_bytes(self) -> int:
        raise NotImplementedError

    def clear(self) -> int:
        removed = 0
        for key in list(self.keys()):
            self.delete(key)
            removed += 1
        return removed

    def close(self) -> None:
        """Release any held resources (connections, fds)."""


def _fsync_dir(path: Path) -> None:
    """Flush directory metadata (the rename itself) to disk."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        # Some filesystems refuse fsync on directory fds; the entry
        # itself is already durable, only the rename may lag.
        pass
    finally:
        os.close(fd)


class DirStore(CacheStore):
    """One ``<key>.pkl`` file per entry in a flat directory."""

    backend = "dir"

    def __init__(self, path: PathLike):
        self.path = Path(path)

    def _file_for(self, key: str) -> Path:
        return self.path / f"{key}.pkl"

    def load(self, key: str) -> Optional[bytes]:
        try:
            return self._file_for(key).read_bytes()
        except FileNotFoundError:
            return None
        except OSError:
            self.delete(key)
            return None

    def save(self, key: str, blob: bytes) -> None:
        self.path.mkdir(parents=True, exist_ok=True)
        file = self._file_for(key)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:12]}-", suffix=".tmp", dir=self.path
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
                fh.flush()
                # Durability before visibility: without this fsync a
                # crash right after os.replace() can leave a truncated
                # entry readable under its final name.
                os.fsync(fh.fileno())
            os.replace(tmp_name, file)
            _fsync_dir(self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def delete(self, key: str) -> None:
        self._file_for(key).unlink(missing_ok=True)

    def keys(self) -> Iterator[str]:
        if not self.path.is_dir():
            return iter(())
        return (f.stem for f in sorted(self.path.glob("*.pkl")))

    def size_bytes(self) -> int:
        if not self.path.is_dir():
            return 0
        return sum(f.stat().st_size for f in sorted(self.path.glob("*.pkl")))


class SqliteStore(CacheStore):
    """All entries in one SQLite database, WAL mode, single writer.

    A connection is opened per operation: sqlite3 connections are not
    safely shareable across the threads and forked workers a daemon
    uses, and the open cost is dwarfed by pickling a ``SimResult``.
    Writers serialize on ``BEGIN IMMEDIATE`` with a busy timeout, so
    concurrent campaign processes never interleave partial writes.
    """

    backend = "sqlite"

    _SCHEMA = (
        "CREATE TABLE IF NOT EXISTS entries ("
        " key TEXT PRIMARY KEY,"
        " blob BLOB NOT NULL,"
        " nbytes INTEGER NOT NULL,"
        " created_s REAL NOT NULL)"
    )

    def __init__(self, path: PathLike):
        self.path = Path(path)
        self._init_lock = threading.Lock()
        self._initialized = False

    def _connect(self) -> sqlite3.Connection:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(str(self.path), timeout=SQLITE_BUSY_TIMEOUT_S)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=FULL")
        conn.execute(f"PRAGMA busy_timeout={int(SQLITE_BUSY_TIMEOUT_S * 1000)}")
        with self._init_lock:
            if not self._initialized:
                conn.execute(self._SCHEMA)
                conn.commit()
                self._initialized = True
        return conn

    def load(self, key: str) -> Optional[bytes]:
        try:
            conn = self._connect()
            try:
                row = conn.execute(
                    "SELECT blob FROM entries WHERE key = ?", (key,)
                ).fetchone()
            finally:
                conn.close()
        except sqlite3.Error:
            return None
        return bytes(row[0]) if row is not None else None

    def save(self, key: str, blob: bytes) -> None:
        try:
            conn = self._connect()
            try:
                # IMMEDIATE takes the write lock up front: exactly one
                # writer at a time, others queue on the busy timeout.
                conn.execute("BEGIN IMMEDIATE")
                conn.execute(
                    "INSERT OR REPLACE INTO entries"
                    " (key, blob, nbytes, created_s) VALUES (?, ?, ?, ?)",
                    (key, blob, len(blob), time.time()),
                )
                conn.commit()
            finally:
                conn.close()
        except sqlite3.Error as exc:
            raise OSError(f"sqlite cache write failed: {exc}") from exc

    def delete(self, key: str) -> None:
        try:
            conn = self._connect()
            try:
                conn.execute("BEGIN IMMEDIATE")
                conn.execute("DELETE FROM entries WHERE key = ?", (key,))
                conn.commit()
            finally:
                conn.close()
        except sqlite3.Error:
            pass

    def keys(self) -> Iterator[str]:
        try:
            conn = self._connect()
            try:
                rows = conn.execute(
                    "SELECT key FROM entries ORDER BY key"
                ).fetchall()
            finally:
                conn.close()
        except sqlite3.Error:
            return iter(())
        return (row[0] for row in rows)

    def __len__(self) -> int:
        try:
            conn = self._connect()
            try:
                (n,) = conn.execute("SELECT COUNT(*) FROM entries").fetchone()
            finally:
                conn.close()
        except sqlite3.Error:
            return 0
        return int(n)

    def size_bytes(self) -> int:
        try:
            conn = self._connect()
            try:
                (total,) = conn.execute(
                    "SELECT COALESCE(SUM(nbytes), 0) FROM entries"
                ).fetchone()
            finally:
                conn.close()
        except sqlite3.Error:
            return 0
        return int(total)


_BACKENDS = {"dir": DirStore, "sqlite": SqliteStore}


def make_store(path: PathLike, backend: Optional[str] = None) -> CacheStore:
    """Build the store for ``path``.

    Resolution order: ``backend`` argument, ``REPRO_CACHE_BACKEND``,
    a ``.sqlite``/``.db`` path suffix, else the flat directory.
    """
    resolved = backend or os.environ.get(_ENV_BACKEND, "").strip().lower() or None
    if resolved is None and Path(path).suffix in (".sqlite", ".db"):
        resolved = "sqlite"
    resolved = resolved or "dir"
    try:
        return _BACKENDS[resolved](path)
    except KeyError:
        raise ConfigurationError(
            f"unknown cache backend {resolved!r}; expected one of "
            f"{sorted(_BACKENDS)}"
        ) from None
