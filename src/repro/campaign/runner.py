"""The campaign runner: execute many run specs fast and safely.

Execution pipeline for a list of :class:`~repro.campaign.spec.RunSpec`:

1. **Cache probe** — cacheable specs are looked up in the on-disk
   :class:`~repro.campaign.cache.ResultCache`; hits skip simulation
   entirely (seeded RNG makes a cached result identical to a fresh run).
2. **Fan-out** — remaining specs run on a
   :class:`concurrent.futures.ProcessPoolExecutor` (``n_workers`` > 1) or
   inline in this process (``n_workers=1``, the deterministic serial
   fallback). Specs that cannot be pickled into a worker (closure-built
   policies) transparently run inline.
3. **Retry** — a failed cell is retried once (configurable); every
   attempt's error is recorded on the outcome so flaky infrastructure is
   visible even when the retry succeeds.
4. **Memoize** — fresh successful results of cacheable specs are written
   back to the cache.

The worker count defaults to ``REPRO_CAMPAIGN_WORKERS`` (else serial) and
can be set process-wide with :func:`set_default_workers` — the CLI's
``--workers`` flag and the benchmark harness use that hook, which is how
every figure sweep inherits parallelism without threading a parameter
through each ``run()`` signature.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.campaign.cache import ResultCache, default_cache
from repro.campaign.spec import RunSpec
from repro.errors import ConfigurationError, SimulationError
from repro.obs import ALERTS, BUS, REGISTRY
from repro.obs.capture import (
    CaptureConfig,
    CellCapture,
    replay_capture,
    run_captured,
    sanitize_forked_worker,
    summarize_health,
)
from repro.obs.events import (
    CampaignFinishEvent,
    CampaignStartEvent,
    CellCacheHitEvent,
    CellFinishEvent,
    CellHealthEvent,
    CellRetryEvent,
    CellStartEvent,
)
from repro.obs.health import FleetHealthModel
from repro.obs.spans import SPANS, in_span
from repro.obs.telemetry import TELEMETRY
from repro.sim.results import SimResult

_ENV_WORKERS = "REPRO_CAMPAIGN_WORKERS"

#: Sentinel: "use the process default cache" (distinct from None = off).
DEFAULT_CACHE = object()

_default_workers: Optional[int] = None


class CampaignError(SimulationError):
    """A campaign cell failed after exhausting its retries."""


# ----------------------------------------------------------------------
# Worker-count defaults
# ----------------------------------------------------------------------
def get_default_workers() -> int:
    """Process-default worker count (env ``REPRO_CAMPAIGN_WORKERS`` or 1)."""
    if _default_workers is not None:
        return _default_workers
    env = os.environ.get(_ENV_WORKERS, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ConfigurationError(
                f"{_ENV_WORKERS} must be an integer, got {env!r}"
            ) from None
    return 1


def set_default_workers(n: Optional[int]) -> None:
    """Set (or with ``None`` reset) the process-default worker count."""
    global _default_workers
    if n is not None and n < 1:
        raise ConfigurationError("worker count must be >= 1")
    _default_workers = n


# ----------------------------------------------------------------------
# Outcomes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunOutcome:
    """What happened to one campaign cell."""

    spec: RunSpec
    result: Optional[SimResult]
    from_cache: bool = False
    attempts: int = 0
    errors: Tuple[str, ...] = ()
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.result is not None

    @property
    def label(self) -> str:
        return self.spec.effective_label


@dataclass(frozen=True)
class CampaignReport:
    """All outcomes of one :func:`run_campaign` invocation."""

    outcomes: Tuple[RunOutcome, ...]
    n_workers: int
    wall_s: float
    cache_dir: Optional[str] = None
    #: cells that cannot have a cache key (closure-built policies);
    #: they are neither hits nor misses in the probe accounting.
    n_uncacheable: int = 0

    @property
    def n_cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.from_cache)

    @property
    def n_executed(self) -> int:
        return sum(1 for o in self.outcomes if o.ok and not o.from_cache)

    @property
    def failures(self) -> Tuple[RunOutcome, ...]:
        return tuple(o for o in self.outcomes if not o.ok)

    def outcome(self, label: str) -> RunOutcome:
        """The outcome for one labelled cell."""
        for o in self.outcomes:
            if o.label == label:
                return o
        raise ConfigurationError(f"no campaign cell labelled {label!r}")

    def results(self, strict: bool = True) -> Dict[str, SimResult]:
        """Results keyed by cell label (insertion order preserved).

        With ``strict`` (the default), any failed cell raises
        :class:`CampaignError` carrying the recorded errors; otherwise
        failed cells are silently omitted.
        """
        if strict and self.failures:
            details = "; ".join(
                f"{o.label}: {o.errors[-1] if o.errors else 'unknown error'}"
                for o in self.failures
            )
            raise CampaignError(
                f"{len(self.failures)} campaign cell(s) failed after retries: "
                f"{details}"
            )
        return {o.label: o.result for o in self.outcomes if o.ok}

    def summary_line(self) -> str:
        """One-line accounting string for logs and CLI output."""
        return (
            f"{len(self.outcomes)} run(s): {self.n_cache_hits} cached, "
            f"{self.n_executed} executed, {len(self.failures)} failed "
            f"[{self.n_workers} worker(s), {self.wall_s:.2f}s]"
        )

    def cache_summary_line(self) -> str:
        """Hit/miss accounting for the cache probe phase.

        Uncacheable cells (no key, so they can never hit) are reported
        in their own bucket rather than inflating the miss count.
        """
        misses = len(self.outcomes) - self.n_cache_hits - self.n_uncacheable
        where = f" ({self.cache_dir})" if self.cache_dir else " (cache disabled)"
        extra = (
            f", {self.n_uncacheable} uncacheable" if self.n_uncacheable else ""
        )
        return f"cache: {self.n_cache_hits} hit(s), {misses} miss(es){extra}{where}"

    def per_cell_lines(self) -> List[str]:
        """Per-cell accounting: wall time, attempts, and result source."""
        lines = []
        width = max((len(o.label) for o in self.outcomes), default=0)
        for o in self.outcomes:
            label = o.label.ljust(width)
            if o.from_cache:
                lines.append(f"{label}  cached")
            elif o.ok:
                retries = (
                    f", {o.attempts} attempt(s)" if o.attempts > 1 else ""
                )
                lines.append(f"{label}  {o.duration_s:7.2f}s{retries}")
            else:
                lines.append(
                    f"{label}  FAILED after {o.attempts} attempt(s) "
                    f"[{o.duration_s:.2f}s]"
                )
        return lines


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _execute_spec(spec: RunSpec) -> SimResult:
    """Worker entry point: run one cell to completion."""
    return spec.execute()


def _execute_spec_captured(
    spec: RunSpec, cfg: CaptureConfig
) -> Tuple[Optional[SimResult], Optional[str], CellCapture]:
    """Worker entry point for traced campaigns: run one cell with capture.

    Wraps the cell in :func:`~repro.obs.capture.run_captured`, so the
    worker-local trace events, metrics snapshot, and health rollup ship
    back to the parent with the result for fan-in onto the parent bus.
    Cell exceptions come back as the ``error`` string (with the partial
    capture) instead of raising, so the parent can replay what the
    failed attempt did before retrying.
    """
    return run_captured(spec.execute, cfg)


def _emit_cell_health(
    label: str, health: Optional[dict], t: float, span_id: int
) -> None:
    """Emit a :class:`CellHealthEvent` from a health-summary dict."""
    if not health or not BUS.enabled:
        return
    BUS.emit(CellHealthEvent(t=t, span_id=span_id, label=label, **health))


def _finish_cell(
    spec: RunSpec,
    result: Optional[SimResult],
    attempts: int,
    duration: float,
    t0: float,
) -> None:
    """Completion bookkeeping, at the moment the cell actually finishes.

    Emitting ``cell_finish`` here (not in the assembly phase) is what
    lets a live monitor see progress while later cells are still
    running.
    """
    if BUS.enabled:
        BUS.emit(
            CellFinishEvent(
                t=time.perf_counter() - t0,
                label=spec.effective_label,
                ok=result is not None,
                attempts=attempts,
                wall_s=duration,
            )
        )
    if REGISTRY.enabled:
        REGISTRY.histogram("campaign/cell_wall_s").observe(duration)
        if result is None:
            REGISTRY.counter("campaign/failures").inc()
        else:
            REGISTRY.counter("campaign/executed").inc()


def _error_string(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _run_inline(
    spec: RunSpec, retries: int, t0: float = 0.0
) -> Tuple[Optional[SimResult], int, Tuple[str, ...]]:
    """Run one spec in-process with retries; returns (result, attempts, errors)."""
    errors: List[str] = []
    for attempt in range(1 + retries):
        try:
            return _execute_spec(spec), attempt + 1, tuple(errors)
        except Exception as exc:  # noqa: BLE001 - recorded and surfaced
            errors.append(_error_string(exc))
            if attempt < retries and BUS.enabled:
                BUS.emit(
                    CellRetryEvent(
                        t=time.perf_counter() - t0,
                        label=spec.effective_label,
                        attempt=attempt + 1,
                        error=errors[-1],
                    )
                )
    return None, 1 + retries, tuple(errors)


def _is_picklable(spec: RunSpec) -> bool:
    try:
        pickle.dumps(spec)
        return True
    except Exception:
        return False


def run_campaign(
    specs: Sequence[RunSpec],
    n_workers: Optional[int] = None,
    cache: Union[ResultCache, None, object] = DEFAULT_CACHE,
    retries: int = 1,
    capture: Optional[CaptureConfig] = None,
) -> CampaignReport:
    """Execute a list of run specs with caching and parallel fan-out.

    Parameters
    ----------
    specs:
        The campaign cells; report order follows spec order.
    n_workers:
        Process pool size. ``None`` uses the process default
        (:func:`get_default_workers`); ``1`` runs serially inline.
    cache:
        A :class:`ResultCache`, ``None`` to disable memoization, or the
        default sentinel to use the process default cache.
    retries:
        How many times to re-run a failed cell (default 1).
    capture:
        What traced pooled cells capture and ship back. ``None`` (the
        default) is full fidelity at the parent's telemetry tier;
        :meth:`CaptureConfig.monitoring` is the lean live-dashboard
        tier. A config with an empty ``telemetry`` inherits the
        parent's tier. Ignored for untraced campaigns.
    """
    specs = list(specs)
    if retries < 0:
        raise ConfigurationError("retries must be >= 0")
    workers = n_workers if n_workers is not None else get_default_workers()
    if workers < 1:
        raise ConfigurationError("n_workers must be >= 1")
    resolved_cache: Optional[ResultCache]
    if cache is DEFAULT_CACHE:
        resolved_cache = default_cache()
    else:
        resolved_cache = cache  # type: ignore[assignment]

    # Captured once: whether this campaign is traced decides the pooled
    # execution protocol (capture-and-ship vs bare results) for its
    # whole lifetime, even if sinks change mid-run.
    traced = BUS.enabled
    t0 = time.perf_counter()
    if traced:
        BUS.emit(
            CampaignStartEvent(t=0.0, n_cells=len(specs), n_workers=workers)
        )
    outcomes: List[Optional[RunOutcome]] = [None] * len(specs)
    pending: List[Tuple[int, RunSpec, Optional[str]]] = []
    n_hits = 0
    n_uncacheable = 0

    # Phase 1: cache probe.
    for i, spec in enumerate(specs):
        key = spec.cache_key() if resolved_cache is not None else None
        if resolved_cache is not None and key is None:
            n_uncacheable += 1
        if key is not None:
            # expect= makes a wrong-type payload behave like a corrupt
            # entry (evicted, counted as a miss) instead of a "hit"
            # whose cell silently re-runs every campaign.
            hit = resolved_cache.get(key, expect=SimResult)
            if hit is not None:
                n_hits += 1
                outcomes[i] = RunOutcome(
                    spec=spec, result=hit, from_cache=True, attempts=0
                )
                if BUS.enabled:
                    BUS.emit(
                        CellCacheHitEvent(
                            t=time.perf_counter() - t0,
                            label=spec.effective_label,
                        )
                    )
                if REGISTRY.enabled:
                    REGISTRY.counter("campaign/cache_hits").inc()
                continue
        pending.append((i, spec, key))
    # Miss accounting is only meaningful when a cache is actually in
    # use, and only over *keyed* specs: with cache=None every cell is
    # trivially "uncached", and an uncacheable spec (closure-built
    # policy, key=None) can never hit — counting those as misses would
    # read a sweep of lambda policies as a 100% miss storm.
    if resolved_cache is not None:
        keyed_misses = sum(1 for _, _, k in pending if k is not None)
        if REGISTRY.enabled:
            if keyed_misses:
                REGISTRY.counter("campaign/cache_misses").inc(keyed_misses)
            if n_uncacheable:
                REGISTRY.counter("campaign/uncacheable").inc(n_uncacheable)
        n_keyed = keyed_misses + n_hits
        if ALERTS.enabled and n_keyed >= 4:
            # A near-zero hit rate across a sizeable keyed campaign
            # usually means a source fingerprint drifted and the whole
            # cache silently expired.
            ALERTS.observe(
                "cache_miss_storm",
                "campaign",
                keyed_misses / n_keyed,
                time.perf_counter() - t0,
            )

    # Phase 2: execute misses (pool or inline).
    fresh: List[Tuple[int, RunSpec, Optional[str], Optional[SimResult], int, Tuple[str, ...], float]] = []
    pool_indices = {i for i, s, _ in pending if workers > 1 and _is_picklable(s)}
    pool_jobs = [(i, s, k) for i, s, k in pending if i in pool_indices]
    inline_jobs = [(i, s, k) for i, s, k in pending if i not in pool_indices]

    if pool_jobs:
        # Traced campaigns ship a CaptureConfig — by default the
        # parent's telemetry tier at full fidelity: the worker runs
        # with full capture and returns (result, error, capture) for
        # fan-in; untraced campaigns keep the bare-result protocol.
        cfg: Optional[CaptureConfig] = None
        if traced:
            cfg = capture or CaptureConfig()
            if not cfg.telemetry:
                cfg = replace(cfg, telemetry=TELEMETRY.policy.spec())

        def _submit(pool, spec):
            if traced:
                return pool.submit(_execute_spec_captured, spec, cfg)
            return pool.submit(_execute_spec, spec)

        # Each queued job carries the full retry state of one cell —
        # (i, spec, key, genuine, strikes, errors, started, span_id) —
        # so a pool rebuild after a hard worker death resumes exactly
        # where the broken round stopped. ``genuine`` counts real cell
        # failures, ``strikes`` counts broken-pool incidents; each has
        # its own ``retries`` budget, so infrastructure deaths neither
        # abort the campaign nor consume a cell's genuine retries (and
        # a persistently pool-killing cell still terminates).
        queue: List[Tuple] = []
        for i, spec, key in pool_jobs:
            span_id = 0
            if traced:
                # The cell span opens at submission and closes at final
                # completion, bracketing every attempt (and any pool
                # rebuild in between); the replayed worker events
                # re-anchor under it.
                span_id = SPANS.start(
                    "campaign_cell",
                    node=spec.effective_label,
                    t=time.perf_counter() - t0,
                    scope="campaign",
                )
            if BUS.enabled:
                BUS.emit(
                    CellStartEvent(
                        t=time.perf_counter() - t0,
                        label=spec.effective_label,
                        span_id=span_id,
                    )
                )
            queue.append((i, spec, key, 0, 0, (), time.perf_counter(), span_id))

        def _finish_pooled(job, result, cell_capture) -> None:
            """Final completion of a pooled cell (success or exhausted)."""
            i, spec, key, genuine, strikes, errors, started, span_id = job
            if traced:
                if cell_capture is not None and result is not None:
                    _emit_cell_health(
                        spec.effective_label,
                        cell_capture.health,
                        time.perf_counter() - t0,
                        span_id,
                    )
                SPANS.end(
                    "campaign_cell",
                    node=spec.effective_label,
                    t=time.perf_counter() - t0,
                )
            attempts = genuine + strikes + (1 if result is not None else 0)
            duration = time.perf_counter() - started
            _finish_cell(spec, result, attempts, duration, t0)
            fresh.append((i, spec, key, result, attempts, errors, duration))

        def _record_failure(job, error: str, pool_died: bool):
            """Fold one failed submission into the job's retry state.

            Returns the updated job when budget remains, else finalizes
            the cell as failed and returns ``None``.
            """
            i, spec, key, genuine, strikes, errors, started, span_id = job
            errors = errors + (error,)
            if pool_died:
                strikes += 1
                retryable = strikes <= retries
            else:
                genuine += 1
                retryable = genuine <= retries
            job = (i, spec, key, genuine, strikes, errors, started, span_id)
            if not retryable:
                _finish_pooled(job, None, None)
                return None
            if BUS.enabled:
                BUS.emit(
                    CellRetryEvent(
                        t=time.perf_counter() - t0,
                        label=spec.effective_label,
                        attempt=genuine + strikes,
                        error=error,
                        span_id=span_id,
                    )
                )
            return job

        while queue:
            jobs, queue = queue, []
            broken = False
            with ProcessPoolExecutor(
                max_workers=min(workers, len(jobs)),
                initializer=sanitize_forked_worker,
            ) as pool:
                states = {}
                not_done = set()
                for job in jobs:
                    if not broken:
                        try:
                            fut = _submit(pool, job[1])
                        except BrokenProcessPool as exc:
                            broken = True
                            error = _error_string(exc)
                        else:
                            states[fut] = job
                            not_done.add(fut)
                            continue
                    # The pool died before this job could run; charge a
                    # strike (termination guarantee) and requeue.
                    retry_job = _record_failure(job, error, pool_died=True)
                    if retry_job is not None:
                        queue.append(retry_job)
                while not_done:
                    done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                    for fut in done:
                        job = states.pop(fut)
                        spec = job[1]
                        span_id = job[7]
                        result: Optional[SimResult] = None
                        error: Optional[str] = None
                        cell_capture: Optional[CellCapture] = None
                        pool_died = False
                        try:
                            if traced:
                                result, error, cell_capture = fut.result()
                            else:
                                result = fut.result()
                        except BrokenProcessPool as exc:
                            # A hard worker death (OOM-kill, segfault)
                            # poisons the whole pool: every in-flight
                            # future fails this way and further submits
                            # raise. The round drains, then a fresh pool
                            # picks up the survivors.
                            pool_died = True
                            broken = True
                            error = _error_string(exc)
                        except Exception as exc:  # noqa: BLE001 - retried below
                            error = _error_string(exc)
                        if cell_capture is not None:
                            # Fan-in: re-emit the worker's events
                            # (partial captures from failed attempts
                            # included) inside the cell span, and fold
                            # its metrics.
                            replay_capture(cell_capture, cell_span_id=span_id)
                            if REGISTRY.enabled:
                                REGISTRY.merge_snapshot(cell_capture.metrics)
                        if error is None:
                            _finish_pooled(job, result, cell_capture)
                            continue
                        retry_job = _record_failure(job, error, pool_died)
                        if retry_job is None:
                            continue
                        if broken:
                            # Never resubmit into a dead pool — the
                            # retry runs in the next round's pool.
                            queue.append(retry_job)
                            continue
                        try:
                            retry = _submit(pool, spec)
                        except BrokenProcessPool:
                            broken = True
                            queue.append(retry_job)
                        else:
                            states[retry] = retry_job
                            not_done.add(retry)

    for i, spec, key in inline_jobs:
        # The cell span brackets the whole inline execution (campaign
        # wall-clock scope); running inside ``in_span`` stamps every event
        # the simulation emits with the enclosing cell, so `repro explain`
        # can attribute in-run decisions to their campaign cell.
        span_id = SPANS.start(
            "campaign_cell",
            node=spec.effective_label,
            t=time.perf_counter() - t0,
            scope="campaign",
        )
        if BUS.enabled:
            BUS.emit(
                CellStartEvent(
                    t=time.perf_counter() - t0,
                    label=spec.effective_label,
                    span_id=span_id,
                )
            )
        # A per-cell health model folds this cell's own events into the
        # same rollup shape pooled cells ship back, so CellHealthEvents
        # appear uniformly regardless of where the cell ran.
        model = FleetHealthModel() if traced else None
        if model is not None:
            BUS.add_sink(model)
        started = time.perf_counter()
        try:
            with in_span(span_id):
                result, attempts, errors = _run_inline(spec, retries, t0=t0)
        finally:
            if model is not None:
                BUS.remove_sink(model)
        if model is not None and result is not None:
            _emit_cell_health(
                spec.effective_label,
                summarize_health(model),
                time.perf_counter() - t0,
                span_id,
            )
        SPANS.end(
            "campaign_cell",
            node=spec.effective_label,
            t=time.perf_counter() - t0,
        )
        duration = time.perf_counter() - started
        _finish_cell(spec, result, attempts, duration, t0)
        fresh.append((i, spec, key, result, attempts, errors, duration))

    # Phase 3: memoize and assemble.
    for i, spec, key, result, attempts, errors, duration in fresh:
        if result is not None and key is not None and resolved_cache is not None:
            try:
                resolved_cache.put(key, result)
            except OSError:
                # An unwritable cache dir degrades to uncached execution;
                # it must never fail a campaign that already has results.
                pass
        outcomes[i] = RunOutcome(
            spec=spec,
            result=result,
            from_cache=False,
            attempts=attempts,
            errors=errors,
            duration_s=duration,
        )

    report = CampaignReport(
        outcomes=tuple(o for o in outcomes if o is not None),
        n_workers=workers,
        wall_s=time.perf_counter() - t0,
        cache_dir=str(resolved_cache.path) if resolved_cache is not None else None,
        n_uncacheable=n_uncacheable,
    )
    if BUS.enabled:
        BUS.emit(
            CampaignFinishEvent(
                t=time.perf_counter() - t0,
                n_cells=len(report.outcomes),
                ok=report.n_executed,
                failed=len(report.failures),
                cached=report.n_cache_hits,
                executed=report.n_executed + len(report.failures),
                wall_s=report.wall_s,
            )
        )
    return report
