"""On-disk memoization of simulation results.

Seeded RNG streams make every run of this reproduction a pure function of
its inputs: the scenario parameters, the policy (name or factory), and
the solar trace fully determine the :class:`~repro.sim.results.SimResult`.
The cache exploits that — each completed run is pickled under a content
hash of those inputs, so re-running a sweep (a figure regeneration, a
benchmark, a CI smoke test) replays finished cells from disk with results
byte-identical to a fresh simulation.

Key construction is *structural*, not positional: dataclasses are folded
field by field, numpy arrays by dtype/shape/content digest, enums by
value, callables by module-qualified name (plus bound arguments for
``functools.partial``). Anything that cannot be named deterministically —
a lambda, a closure — yields no key, and the campaign runner simply runs
that spec uncached.

Storage is pluggable (see :mod:`repro.campaign.store`): the default
flat-dir layout or a single-writer sqlite database, selected per path
suffix, ``REPRO_CACHE_BACKEND``, or :func:`configure_cache`.

Environment knobs (all overridable through :func:`configure_cache`):

- ``REPRO_CACHE_DIR`` — cache directory (default
  ``~/.cache/repro-baat/campaign``);
- ``REPRO_CAMPAIGN_CACHE=0`` (or ``off``/``false``/``no``) — disable the
  default cache entirely;
- ``REPRO_CACHE_BACKEND`` — ``dir`` or ``sqlite``.
"""

from __future__ import annotations

import dataclasses
import enum
import functools
import hashlib
import os
import pickle
from pathlib import Path
from typing import Any, Optional, Tuple, Union

import numpy as np

from repro.campaign.store import CacheStore, DirStore, make_store
from repro.errors import ConfigurationError

PathLike = Union[str, Path]

#: Bumped whenever engine/model changes invalidate previously cached
#: results (also salted with the package version).
CACHE_SCHEMA_VERSION = 1

_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_ENABLED = "REPRO_CAMPAIGN_CACHE"
_OFF_VALUES = ("0", "off", "false", "no")

# Process-wide overrides set by configure_cache() (CLI / bench harness).
_override_dir: Optional[Path] = None
_override_enabled: Optional[bool] = None
_override_backend: Optional[str] = None


# ----------------------------------------------------------------------
# Canonical content hashing
# ----------------------------------------------------------------------
def canonical(obj: Any) -> Any:
    """Fold ``obj`` into a deterministic tree of primitives and tuples.

    The output is stable across processes and Python hash randomisation,
    so its ``repr`` can be hashed as a content key.
    """
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return obj
    if isinstance(obj, float):
        # repr() round-trips doubles exactly; avoids 0.1 + 0.2 surprises
        # from any locale/format-dependent rendering.
        return ("f", repr(obj))
    if isinstance(obj, enum.Enum):
        return ("enum", type(obj).__module__, type(obj).__qualname__, obj.value)
    if isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        return (
            "ndarray",
            str(arr.dtype),
            arr.shape,
            hashlib.sha256(arr.tobytes()).hexdigest(),
        )
    if isinstance(obj, np.generic):
        return ("npscalar", str(obj.dtype), repr(obj.item()))
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = tuple(
            (f.name, canonical(getattr(obj, f.name)))
            for f in dataclasses.fields(obj)
        )
        return ("dataclass", type(obj).__module__, type(obj).__qualname__, fields)
    if isinstance(obj, dict):
        items = tuple(
            (canonical(k), canonical(v))
            for k, v in sorted(obj.items(), key=lambda kv: repr(kv[0]))
        )
        return ("dict", items)
    if isinstance(obj, (list, tuple)):
        return ("seq", tuple(canonical(v) for v in obj))
    if isinstance(obj, (set, frozenset)):
        return ("set", tuple(sorted(repr(canonical(v)) for v in obj)))
    if isinstance(obj, functools.partial):
        return (
            "partial",
            callable_token(obj.func),
            canonical(obj.args),
            canonical(obj.keywords),
        )
    if callable(obj):
        token = callable_token(obj)
        if token is None:
            raise ConfigurationError(
                f"cannot build a deterministic cache token for {obj!r}"
            )
        return token
    # Last resort: a stable repr (parameter objects etc. define one).
    return ("repr", type(obj).__module__, type(obj).__qualname__, repr(obj))


def callable_token(fn: Any) -> Optional[Tuple]:
    """A deterministic identity for a callable, or ``None`` if it has no
    stable cross-process name (lambdas, closures, local functions)."""
    if isinstance(fn, functools.partial):
        inner = callable_token(fn.func)
        if inner is None:
            return None
        return ("partial", inner, canonical(fn.args), canonical(fn.keywords))
    qualname = getattr(fn, "__qualname__", None)
    module = getattr(fn, "__module__", None)
    if not qualname or not module:
        return None
    if "<lambda>" in qualname or "<locals>" in qualname:
        return None
    return ("callable", module, qualname)


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Digest of every ``.py`` source file in the ``repro`` package.

    Salting cache keys with this makes any code edit (engine, battery
    model, policies, ...) invalidate previously cached results, which is
    what upholds the "a cache hit is identical to a fresh run" contract
    across development — the package version alone does not change per
    commit.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for source in sorted(root.rglob("*.py")):
        digest.update(str(source.relative_to(root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(source.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def object_key(*parts: Any) -> str:
    """Content-hash key for arbitrary (canonicalisable) parts."""
    import repro

    salted = (
        "repro-cache",
        CACHE_SCHEMA_VERSION,
        repro.__version__,
        code_fingerprint(),
    ) + tuple(canonical(p) for p in parts)
    return hashlib.sha256(repr(salted).encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# The disk cache
# ----------------------------------------------------------------------
class ResultCache:
    """Pickled payloads keyed by content hash, over a pluggable store.

    The default store keeps the historical flat-dir layout (one
    ``<key>.pkl`` per entry); pass ``backend="sqlite"`` (or a path with
    a ``.sqlite``/``.db`` suffix, or set ``REPRO_CACHE_BACKEND``) for a
    single-file database suited to daemon-shared caches. Hit/miss
    accounting, key validation and (un)pickling live here; the store
    only moves bytes.
    """

    def __init__(
        self,
        path: PathLike,
        backend: Optional[str] = None,
        store: Optional[CacheStore] = None,
    ):
        self.path = Path(path)
        self.store = store if store is not None else make_store(path, backend)
        self.hits = 0
        self.misses = 0

    # -- internals ------------------------------------------------------
    def _check_key(self, key: str) -> str:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ConfigurationError(f"malformed cache key {key!r}")
        return key

    def _file_for(self, key: str) -> Path:
        """Per-entry file path (dir-backed caches only)."""
        self._check_key(key)
        if not isinstance(self.store, DirStore):
            raise ConfigurationError(
                f"{self.store.backend!r}-backed caches have no per-entry files"
            )
        return self.store._file_for(key)

    @property
    def backend(self) -> str:
        return self.store.backend

    # -- API ------------------------------------------------------------
    def get(self, key: str, expect: Optional[type] = None) -> Optional[Any]:
        """Return the cached payload for ``key``, or ``None`` on a miss.

        A corrupt entry (truncated write, incompatible pickle) is deleted
        and reported as a miss rather than poisoning the campaign. When
        ``expect`` is given, a payload of any other type gets the same
        treatment — otherwise a stale or foreign entry under a colliding
        key would be "hit" on every campaign yet silently re-run.
        """
        self._check_key(key)
        blob = self.store.load(key)
        if blob is None:
            self.misses += 1
            return None
        try:
            payload = pickle.loads(blob)
        except Exception:
            self.store.delete(key)
            self.misses += 1
            return None
        if expect is not None and not isinstance(payload, expect):
            self.store.delete(key)
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: Any) -> None:
        """Store ``payload`` under ``key`` atomically and durably."""
        self._check_key(key)
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        self.store.save(key, blob)

    def __contains__(self, key: str) -> bool:
        self._check_key(key)
        return self.store.load(key) is not None

    def __len__(self) -> int:
        return len(self.store)

    def size_bytes(self) -> int:
        """Total bytes held by cache entries."""
        return self.store.size_bytes()

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        return self.store.clear()

    def close(self) -> None:
        self.store.close()


# ----------------------------------------------------------------------
# Default-cache resolution
# ----------------------------------------------------------------------
def configure_cache(
    enabled: Optional[bool] = None,
    directory: Optional[PathLike] = None,
    backend: Optional[str] = None,
) -> None:
    """Process-wide default-cache overrides (CLI flags, bench harness).

    ``None`` leaves the corresponding setting untouched; the environment
    variables still apply where no override is set.
    """
    global _override_enabled, _override_dir, _override_backend
    if enabled is not None:
        _override_enabled = bool(enabled)
    if directory is not None:
        _override_dir = Path(directory)
    if backend is not None:
        _override_backend = backend


def reset_cache_config() -> None:
    """Drop :func:`configure_cache` overrides (used by tests)."""
    global _override_enabled, _override_dir, _override_backend
    _override_enabled = None
    _override_dir = None
    _override_backend = None


def default_cache_dir() -> Path:
    """The directory the default cache lives in."""
    if _override_dir is not None:
        return _override_dir
    env = os.environ.get(_ENV_DIR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-baat" / "campaign"


def default_cache() -> Optional[ResultCache]:
    """The process default cache, or ``None`` when disabled."""
    if _override_enabled is False:
        return None
    if _override_enabled is None:
        env = os.environ.get(_ENV_ENABLED, "").strip().lower()
        if env in _OFF_VALUES:
            return None
    return ResultCache(default_cache_dir(), backend=_override_backend)
