"""Campaign execution: parallel, cached sweeps over (scenario, policy,
trace) run specs.

Every multi-run experiment in this reproduction — the figure sweeps, the
sensitivity matrix, the ablations, the CLI comparisons, the benchmark
harnesses — funnels through :func:`run_campaign`, which fans simulation
cells out over a process pool, retries failures once, and memoizes
completed results in an on-disk content-addressed cache. Seeded RNG
streams make each run a pure function of its spec, so cached results are
identical to fresh ones.

Quick start::

    from repro.campaign import RunSpec, run_campaign

    specs = [
        RunSpec(scenario=scenario, trace=trace, policy=name)
        for name in ("e-buff", "baat-s", "baat-h", "baat")
    ]
    report = run_campaign(specs, n_workers=4)
    results = report.results()          # {policy name: SimResult}
    print(report.summary_line())        # cached / executed / failed counts
"""

from repro.campaign.cache import (
    ResultCache,
    canonical,
    configure_cache,
    default_cache,
    default_cache_dir,
    object_key,
    reset_cache_config,
)
from repro.campaign.runner import (
    DEFAULT_CACHE,
    CampaignError,
    CampaignReport,
    RunOutcome,
    get_default_workers,
    run_campaign,
    set_default_workers,
)
from repro.campaign.spec import RunSpec
from repro.campaign.store import CacheStore, DirStore, SqliteStore, make_store

__all__ = [
    "CacheStore",
    "CampaignError",
    "CampaignReport",
    "DEFAULT_CACHE",
    "DirStore",
    "ResultCache",
    "RunOutcome",
    "RunSpec",
    "SqliteStore",
    "canonical",
    "make_store",
    "configure_cache",
    "default_cache",
    "default_cache_dir",
    "get_default_workers",
    "object_key",
    "reset_cache_config",
    "run_campaign",
    "set_default_workers",
]
