"""Command-line interface.

The subcommands mirror how the prototype was operated:

- ``repro experiments`` — list the paper figures this repo regenerates;
- ``repro run <exp>`` — regenerate one figure's table (``--full`` for the
  dense sweep);
- ``repro compare`` — run the Table-4 schemes head-to-head on a chosen
  day/battery-age cell and print the comparison;
- ``repro campaign`` — run an arbitrary policy x weather sweep through
  the parallel, cached campaign runner; ``--watch`` renders a live
  dashboard and ``--summary FILE`` writes the machine-readable rollup;
- ``repro serve`` — long-running campaign service daemon: accepts
  campaign submissions over a unix socket (and optionally HTTP on
  localhost), dedupes identical in-flight cells across clients, and
  shares one result cache;
- ``repro submit`` — submit a campaign to a running daemon and stream
  per-cell progress;
- ``repro serve-status`` — daemon health/stats (``--shutdown`` stops it);
- ``repro top <trace>`` — live operator dashboard tailing a campaign
  trace (rotating/gzipped segments included) while it is being written;
- ``repro cache`` — inspect or clear the on-disk result cache;
- ``repro trace <file>`` — inspect a trace JSONL written by ``--trace``;
- ``repro trace diff <a> <b>`` — event-count and per-battery aging
  deltas between two traces (policy comparison, instrumentation drift);
- ``repro trace validate <file>`` — schema/monotonicity/span-matching
  checks on a trace; non-zero exit on any violation (CI gate);
- ``repro explain <trace>`` — causal provenance: walk each control
  action (migration, DVFS cap, park...) back to the alert / SoC
  crossing / plan that triggered it, plus aggregate trigger stats;
- ``repro stats`` — run one instrumented simulation and print the metric
  registry: step-phase timings, action counters, gauges;
- ``repro health`` — per-battery aging attribution, alerts, and EOL
  projections from a trace file or a live instrumented run;
- ``repro export`` — run one instrumented simulation and export the
  metric registry (OpenMetrics/Prometheus text format or CSV);
- ``repro perf record <payload>...`` — append BENCH_engine.json /
  BENCH_obs.json / bench-suite / campaign-summary payloads to the
  append-only perf history (JSONL, provenance-stamped);
- ``repro perf history [METRIC]`` — ASCII sparkline + table of one
  metric's recorded trajectory (omit METRIC to list the series);
- ``repro perf diff SHA_A SHA_B`` — metric-by-metric comparison of two
  recorded commits;
- ``repro perf check`` — judge the newest record (or explicit payload
  files) against each metric's rolling same-host baseline; exits
  non-zero on a regression, naming the metric, the deviation, and the
  trend (CI gate).

Every simulation-running subcommand accepts ``--workers N`` (process
fan-out), ``--no-cache`` (force fresh runs), ``--cache-dir``,
``--trace FILE`` (stream structured telemetry events to a JSONL file —
engine events are captured from in-process runs, so use ``--workers 1``,
the default, for full control-loop traces), and ``--profile [FILE]``
(cProfile the command; hot functions print next to the step-phase
timers, or dump to FILE for snakeviz-style tooling).

Usage::

    python -m repro experiments
    python -m repro run fig14 --full --workers 4
    python -m repro run fig18 --trace out.jsonl
    python -m repro compare --day rainy --fade 0.1 --days 2
    python -m repro campaign --policies e-buff,baat --days 3 --workers 4
    python -m repro campaign --days 3 --workers 4 --watch --summary rollup.json
    python -m repro serve --socket /tmp/repro.sock --workers 4
    python -m repro submit --socket /tmp/repro.sock --policies e-buff,baat
    python -m repro serve-status --socket /tmp/repro.sock
    python -m repro top campaign.jsonl
    python -m repro trace out.jsonl --kind vm_migrated
    python -m repro trace diff baseline.jsonl candidate.jsonl
    python -m repro trace validate out.jsonl
    python -m repro explain out.jsonl --battery batt03
    python -m repro stats --policy baat-planned --day rainy --days 2
    python -m repro health out.jsonl
    python -m repro health --policy baat --day rainy --days 2
    python -m repro export --format openmetrics --out metrics.prom
    python -m repro perf record BENCH_engine.json BENCH_obs.json
    python -m repro perf history engine/n48/fleet_steps_per_s
    python -m repro perf check --trace perf.jsonl --export perf.prom
    python -m repro cache info
"""

from __future__ import annotations

import argparse
import importlib
import sys
import threading
import time
from collections import Counter as _Counter
from typing import List, Optional, Sequence

from repro.analysis.reporting import format_table, percent_change
from repro.campaign import (
    RunSpec,
    configure_cache,
    default_cache,
    default_cache_dir,
    run_campaign,
    set_default_workers,
)
from repro.core.policies.factory import POLICY_NAMES
from repro.errors import ConfigurationError
from repro.obs import (
    BUS,
    REGISTRY,
    CampaignMonitor,
    CaptureConfig,
    FrameDecoder,
    TraceTailer,
    disable_observability,
    enable_observability,
    expand_frame,
    iter_events,
    parse_telemetry,
    render_dashboard,
    write_summary,
)
from repro.rng import DEFAULT_SEED
from repro.sim.scenario import Scenario
from repro.solar.weather import DayClass

EXPERIMENTS = (
    "table01_usage_scenarios",
    "fig03_voltage",
    "fig04_capacity",
    "fig05_efficiency",
    "fig10_cycle_life",
    "fig12_profiling",
    "fig13_aging_comparison",
    "fig14_lifetime_sunshine",
    "fig15_lifetime_capacity",
    "fig16_cost",
    "fig17_expansion",
    "fig18_low_soc",
    "fig19_soc_distribution",
    "fig20_throughput",
    "fig21_dod_performance",
    "fig22_planned_aging",
)


def _resolve_experiment(token: str) -> str:
    """Accept 'fig14', 'fig14_lifetime_sunshine', or '14'."""
    token = token.lower()
    if token.isdigit():
        token = f"fig{int(token):02d}"
    matches = [name for name in EXPERIMENTS if name.startswith(token)]
    if len(matches) != 1:
        raise SystemExit(
            f"unknown or ambiguous experiment {token!r}; "
            f"choose from {', '.join(EXPERIMENTS)}"
        )
    return matches[0]


def cmd_experiments(_args: argparse.Namespace) -> int:
    for name in EXPERIMENTS:
        module = importlib.import_module(f"repro.experiments.{name}")
        first_line = (module.__doc__ or "").strip().splitlines()[0]
        print(f"{name:28s} {first_line}")
    return 0


def _apply_execution_flags(args: argparse.Namespace) -> None:
    """Fold --workers / --no-cache / --cache-dir into process defaults.

    Experiments pick these up through the campaign runner, so one flag
    parallelises every sweep without threading a parameter through each
    figure's ``run()`` signature.
    """
    workers = getattr(args, "workers", None)
    if workers is not None:
        if workers < 1:
            raise SystemExit("--workers must be >= 1")
        set_default_workers(workers)
    if getattr(args, "no_cache", False):
        configure_cache(enabled=False)
    if getattr(args, "cache_dir", None):
        configure_cache(directory=args.cache_dir)


def _add_execution_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=None,
        help="simulation worker processes (default: REPRO_CAMPAIGN_WORKERS or 1)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="skip the on-disk result cache (force fresh simulation)",
    )
    parser.add_argument(
        "--cache-dir", default=None, help="override the result-cache directory"
    )
    _add_trace_flags(parser)
    _add_profile_flag(parser)


def _add_trace_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write structured telemetry events (JSONL) to FILE",
    )
    parser.add_argument(
        "--trace-gzip", action="store_true",
        help="gzip-compress the trace (implied by a .gz --trace suffix)",
    )
    parser.add_argument(
        "--trace-rotate-mb", type=float, default=None, metavar="MB",
        help="rotate the trace into FILE, FILE.1, ... segments of about "
        "MB megabytes each (readers follow segments transparently)",
    )
    parser.add_argument(
        "--telemetry", default=None, metavar="SPEC",
        help="battery telemetry tier for traced runs: full (one columnar "
        "battery_frame per step), full-events (lossless per-node sample "
        "events; the default), sampled:N[:node1,node2] or "
        "sampled-events:N[:...] (every N-th step, optional node subset), "
        "summary[:K] (per-step fleet aggregates plus top-K aging "
        "outliers)",
    )


def _trace_sink_kwargs(args: argparse.Namespace) -> dict:
    """``enable_observability`` kwargs from the --trace-* flags."""
    rotate_mb = getattr(args, "trace_rotate_mb", None)
    if rotate_mb is not None and rotate_mb <= 0:
        raise SystemExit("--trace-rotate-mb must be > 0")
    telemetry = getattr(args, "telemetry", None)
    if telemetry is not None:
        try:
            parse_telemetry(telemetry)
        except ConfigurationError as exc:
            raise SystemExit(str(exc)) from None
    return {
        "compress": True if getattr(args, "trace_gzip", False) else None,
        "rotate_bytes": (
            int(rotate_mb * 1024 * 1024) if rotate_mb is not None else None
        ),
        "telemetry": telemetry,
    }


def _add_profile_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile", nargs="?", const="", default=None, metavar="FILE",
        help="cProfile the command; print hot functions (or dump stats "
        "to FILE) alongside the step-phase timers",
    )


def _add_stepper_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--stepper", choices=("reference", "fleet"), default="reference",
        help="engine stepping path: the per-node reference walk or the "
        "bit-compatible vectorized fleet fast path (see "
        "benchmarks/bench_engine.py for the speedup at scale)",
    )
    parser.add_argument(
        "--nodes", type=int, default=6, metavar="N",
        help="cluster size in server+battery nodes (default 6, the "
        "paper's testbed; pair large N with --stepper fleet)",
    )


def cmd_run(args: argparse.Namespace) -> int:
    _apply_execution_flags(args)
    name = _resolve_experiment(args.experiment)
    module = importlib.import_module(f"repro.experiments.{name}")
    result = module.run(quick=not args.full, seed=args.seed)
    print(result.to_text())
    return 0


def _comparison_table(results, labels) -> str:
    rows = []
    base = None
    for name in labels:
        result = results[name]
        if base is None:
            base = result
        rows.append(
            (
                name,
                result.throughput_per_day(),
                percent_change(result.throughput, base.throughput),
                result.worst_damage_per_day() * 1000.0,
                result.worst_low_soc_fraction() * 24.0,
                result.total_downtime_s / 3600.0,
                result.migrations,
                result.dvfs_transitions,
            )
        )
    return format_table(
        (
            "scheme",
            "thr/day",
            f"vs {labels[0]} %",
            "worst fade/d x1e-3",
            "low-SoC h/d",
            "down h",
            "migr",
            "dvfs",
        ),
        rows,
    )


def cmd_compare(args: argparse.Namespace) -> int:
    _apply_execution_flags(args)
    day = DayClass(args.day)
    scenario = Scenario(
        n_nodes=args.nodes, dt_s=args.dt, initial_fade=args.fade,
        seed=args.seed, stepper=args.stepper,
    )
    trace = scenario.trace_generator().days([day] * args.days)
    print(
        f"{args.days} x {day.value} day(s), initial fade {args.fade:.0%}, "
        f"solar {trace.energy_wh() / 1000:.2f} kWh total\n"
    )
    specs = [
        RunSpec(scenario=scenario, trace=trace, policy=name)
        for name in POLICY_NAMES
    ]
    report = run_campaign(specs)
    print(_comparison_table(report.results(), POLICY_NAMES))
    print(f"\n  {report.summary_line()}")
    return 0


def _render_live(monitor: "CampaignMonitor", ansi: bool) -> None:
    """Print one dashboard frame (clear-and-home on ANSI terminals)."""
    text = render_dashboard(monitor.summary(), ansi=ansi)
    if ansi:
        sys.stdout.write("\x1b[2J\x1b[H" + text + "\n")
    else:
        sys.stdout.write(text + "\n\n")
    sys.stdout.flush()


def cmd_top(args: argparse.Namespace) -> int:
    """Live dashboard: tail a campaign trace while it is being written."""
    monitor = CampaignMonitor()
    tailer = TraceTailer(args.file)
    ansi = sys.stdout.isatty() and not args.no_ansi

    def _feed() -> int:
        events = tailer.drain()
        for event in events:
            monitor.emit(event)
        return len(events)

    try:
        if args.once:
            _feed()
            print(render_dashboard(monitor.summary(), ansi=ansi))
            return 0
        idle_s = 0.0
        while True:
            n = _feed()
            _render_live(monitor, ansi)
            if monitor.finished and n == 0:
                return 0
            idle_s = 0.0 if n else idle_s + args.interval
            if idle_s >= args.timeout:
                print(
                    f"no new events for {args.timeout:.0f}s; exiting",
                    file=sys.stderr,
                )
                return 1
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    finally:
        tailer.close()


def cmd_campaign(args: argparse.Namespace) -> int:
    _apply_execution_flags(args)
    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    if not policies:
        raise SystemExit("--policies must name at least one scheme")
    day_names = [d.strip() for d in args.day_mix.split(",") if d.strip()]
    try:
        day_mix = [DayClass(d) for d in day_names]
    except ValueError as exc:
        raise SystemExit(f"unknown day class in --day-mix: {exc}")
    days = (day_mix * ((args.days + len(day_mix) - 1) // len(day_mix)))[: args.days]

    scenario = Scenario(
        n_nodes=args.nodes, dt_s=args.dt, initial_fade=args.fade,
        seed=args.seed, stepper=args.stepper,
    )
    trace = scenario.trace_generator().days(days)
    print(
        f"campaign: {len(policies)} scheme(s) x {args.days} day(s) "
        f"({'/'.join(d.value for d in days)}), initial fade {args.fade:.0%}, "
        f"solar {trace.energy_wh() / 1000:.2f} kWh total\n"
    )
    specs = [
        RunSpec(scenario=scenario, trace=trace, policy=name) for name in policies
    ]

    # --watch / --summary / --perf-history attach a CampaignMonitor to
    # the bus. A bus sink implies live observability, so any of these
    # flags turns on the traced campaign protocol (worker fan-in
    # included) even without --trace.
    monitor: Optional[CampaignMonitor] = None
    if args.watch or args.summary or args.perf_history:
        monitor = CampaignMonitor()
        BUS.add_sink(monitor)
    watcher: Optional[threading.Thread] = None
    render_stop: Optional[threading.Event] = None
    ansi = sys.stdout.isatty()
    if args.watch:
        render_stop = threading.Event()

        def _watch_loop() -> None:
            while not render_stop.wait(args.watch_interval):
                _render_live(monitor, ansi)

        watcher = threading.Thread(target=_watch_loop, daemon=True)
        watcher.start()
    capture = (
        CaptureConfig.monitoring() if args.capture == "monitoring" else None
    )
    try:
        report = run_campaign(specs, n_workers=args.workers, capture=capture)
    finally:
        if render_stop is not None:
            render_stop.set()
            watcher.join(timeout=5.0)
        if monitor is not None:
            BUS.remove_sink(monitor)
    if args.watch:
        _render_live(monitor, ansi)
    failures = report.failures
    ok_labels = [o.label for o in report.outcomes if o.ok]
    if ok_labels:
        print(_comparison_table(report.results(strict=False), ok_labels))
    else:
        print("no successful cells to compare")
    print("\ncells:")
    for line in report.per_cell_lines():
        print(f"  {line}")
    print(f"\n  {report.cache_summary_line()}")
    print(f"  {report.summary_line()}")
    for outcome in failures:
        print(f"  FAILED {outcome.label}: {'; '.join(outcome.errors)}")
    if monitor is not None and args.summary:
        write_summary(monitor, args.summary)
        print(f"  summary written to {args.summary}")
    if monitor is not None and args.perf_history:
        from repro.perf import PerfHistory

        record = PerfHistory(args.perf_history).record_payload(
            monitor.summary()
        )
        print(
            f"  recorded {len(record.metrics)} campaign metric(s) "
            f"to {args.perf_history}"
        )
    return 1 if failures else 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived campaign service daemon."""
    import asyncio

    from repro.campaign import get_default_workers
    from repro.service import CampaignService, serve

    if args.no_cache:
        cache = None
    else:
        if args.cache_dir:
            configure_cache(directory=args.cache_dir)
        if args.cache_backend:
            configure_cache(backend=args.cache_backend)
        cache = default_cache()
    host: Optional[str] = None
    port: Optional[int] = None
    if args.http:
        host, _, port_s = args.http.rpartition(":")
        if not host or not port_s.isdigit():
            raise SystemExit("--http must look like HOST:PORT")
        port = int(port_s)
    workers = args.workers if args.workers is not None else get_default_workers()
    try:
        service = CampaignService(
            cache=cache, n_workers=workers, retries=args.retries
        )
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None

    def _ready() -> None:
        endpoints = args.socket + (f" and http://{host}:{port}" if host else "")
        where = (
            f"cache {cache.path} [{cache.backend}]"
            if cache is not None
            else "cache disabled"
        )
        print(
            f"campaign service listening on {endpoints} "
            f"[{workers} worker(s), {where}]"
        )
        sys.stdout.flush()

    try:
        asyncio.run(
            serve(service, args.socket, host=host, port=port, ready=_ready)
        )
    except KeyboardInterrupt:
        print("\ninterrupted; campaign service stopped")
        return 0
    print("campaign service stopped (shutdown requested)")
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit one campaign to a running daemon and stream progress."""
    from repro.service import ServiceClient

    campaign = {
        "policies": args.policies,
        "days": args.days,
        "day_mix": args.day_mix,
        "nodes": args.nodes,
        "dt": args.dt,
        "fade": args.fade,
        "seed": args.seed,
        "stepper": args.stepper,
    }
    out_fh = open(args.out, "w", encoding="utf-8") if args.out else None
    done = None
    try:
        with ServiceClient(
            socket_path=args.socket, timeout_s=args.timeout
        ) as client:
            import json as _json

            for line in client.submit(campaign):
                if out_fh is not None:
                    out_fh.write(_json.dumps(line, separators=(",", ":")))
                    out_fh.write("\n")
                kind = line.get("kind")
                if kind == "service_error":
                    print(f"error: {line.get('error')}", file=sys.stderr)
                    return 1
                if kind == "service_ack":
                    print(
                        f"submitted campaign #{line['campaign_id']}: "
                        f"{line['n_cells']} cell(s)"
                    )
                elif kind == "cell_result" and not args.quiet:
                    status = line["source"] if line["ok"] else "FAILED"
                    extra = ""
                    summary = line.get("summary")
                    if summary:
                        extra = f"  thr {summary['throughput']:.0f}"
                    if line.get("errors"):
                        extra += f"  [{'; '.join(line['errors'])}]"
                    print(
                        f"  {line['label']:24s} {status:9s} "
                        f"{line['wall_s']:7.2f}s{extra}"
                    )
                elif kind == "service_done":
                    done = line
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None
    finally:
        if out_fh is not None:
            out_fh.close()
    if done is None:
        print("stream ended without a service_done summary", file=sys.stderr)
        return 1
    print(
        f"\n  {done['n_cells']} cell(s): {done['executed']} executed, "
        f"{done['cached']} cached, {done['deduped']} deduped, "
        f"{done['failed']} failed [{done['wall_s']:.2f}s]"
    )
    if args.out:
        print(f"  stream written to {args.out}")
    return 1 if done["failed"] else 0


def cmd_serve_status(args: argparse.Namespace) -> int:
    """Query (or shut down) a running campaign service daemon."""
    from repro.service import ServiceClient

    try:
        with ServiceClient(
            socket_path=args.socket, timeout_s=args.timeout
        ) as client:
            if args.shutdown:
                client.shutdown()
                print("shutdown requested")
                return 0
            status = client.status()
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None
    stats = status["stats"]
    print(
        f"campaign service pid {status['pid']}, up {status['uptime_s']:.0f}s, "
        f"{status['n_workers']} worker(s), {status['inflight']} in flight"
    )
    print(
        f"  campaigns {stats['campaigns']}, cells {stats['cells']}: "
        f"{stats['executed']} executed, {stats['cache_hits']} cache hit(s), "
        f"{stats['dedupe_hits']} deduped, {stats['failed']} failed, "
        f"{stats['pool_rebuilds']} pool rebuild(s)"
    )
    cache = status.get("cache")
    if cache:
        print(
            f"  cache: {cache['path']} [{cache['backend']}] "
            f"{cache['hits']} hit(s) / {cache['misses']} miss(es)"
        )
    else:
        print("  cache: disabled")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Inspect one trace JSONL file, diff two, or validate one."""
    tokens: List[str] = args.args
    if tokens[0] == "diff":
        if len(tokens) != 3:
            raise SystemExit("usage: repro trace diff A.jsonl B.jsonl")
        return _trace_diff(tokens[1], tokens[2])
    if tokens[0] == "validate":
        if len(tokens) != 2:
            raise SystemExit("usage: repro trace validate FILE")
        return _trace_validate(tokens[1])
    if len(tokens) != 1:
        raise SystemExit(
            "usage: repro trace FILE [--kind K] [--node N] [--limit N]\n"
            "       repro trace diff A.jsonl B.jsonl\n"
            "       repro trace validate FILE"
        )
    args.file = tokens[0]
    kinds: _Counter = _Counter()
    nodes: _Counter = _Counter()
    printed = 0
    t_min = float("inf")
    t_max = float("-inf")
    total = 0
    expand = getattr(args, "expand_frames", False)
    decoder = FrameDecoder()
    try:
        for event in iter_events(args.file, strict=False):
            if event.kind in ("trace_meta", "run_start"):
                decoder.reset()
            if expand and event.kind == "battery_frame":
                # Present the frame as the per-node samples it encodes.
                try:
                    samples = expand_frame(decoder, event)
                except ConfigurationError as exc:
                    raise SystemExit(
                        f"cannot expand frames in {args.file}: {exc}"
                    )
                for sample in samples:
                    total += 1
                    kinds[sample.kind] += 1
                    nodes[f"{sample.node}:{sample.kind}"] += 1
                    t_min = min(t_min, sample.t)
                    t_max = max(t_max, sample.t)
                    if args.kind and sample.kind != args.kind:
                        continue
                    if args.node and sample.node != args.node:
                        continue
                    if printed < args.limit:
                        print(sample.to_json())
                        printed += 1
                continue
            total += 1
            kinds[event.kind] += 1
            node = getattr(event, "node", None)
            if node:
                nodes[f"{node}:{event.kind}"] += 1
            t_min = min(t_min, event.t)
            t_max = max(t_max, event.t)
            if args.kind and event.kind != args.kind:
                continue
            if args.node and getattr(event, "node", None) != args.node:
                continue
            if printed < args.limit:
                print(event.to_json())
                printed += 1
    except FileNotFoundError:
        raise SystemExit(f"no such trace file: {args.file}")
    except BrokenPipeError:  # piped into head/less that closed early
        return 0
    except ValueError as exc:
        raise SystemExit(f"malformed trace line in {args.file}: {exc}")
    try:
        if total == 0:
            print("(empty trace)")
            return 0
        print(f"\n{total} event(s), t in [{t_min:.0f}, {t_max:.0f}] s")
        for kind, count in kinds.most_common():
            print(f"  {kind:20s} {count}")
    except BrokenPipeError:  # piped into head/less that closed early
        pass
    return 0


def _trace_validate(path: str) -> int:
    """Schema / monotonicity / span-matching checks; non-zero on failure."""
    from repro.obs.provenance import validate_trace

    try:
        result = validate_trace(path)
    except FileNotFoundError:
        raise SystemExit(f"no such trace file: {path}")
    for violation in result.violations:
        print(f"  VIOLATION {violation}")
    for span_id, name, node in result.open_spans:
        print(f"  open span: {name} on {node or 'cluster'} (id {span_id})")
    print(result.summary())
    return 0 if result.ok else 1


def cmd_explain(args: argparse.Namespace) -> int:
    """Causal provenance chains: why did each control action fire?"""
    from repro.obs.provenance import DEFAULT_EXPLAIN_KINDS, ProvenanceIndex

    try:
        index = ProvenanceIndex.from_trace(args.trace_file)
    except FileNotFoundError:
        raise SystemExit(f"no such trace file: {args.trace_file}")
    except ValueError as exc:
        raise SystemExit(f"malformed trace line in {args.trace_file}: {exc}")
    if not index.n_events:
        print("(empty trace)")
        return 0

    runs = ", ".join(f"{r.policy} ({r.n_actions} action(s))" for r in index.runs)
    print(
        f"{args.trace_file}: {index.n_events} event(s), "
        f"{len(index.runs)} run(s){': ' + runs if runs else ''}\n"
    )

    if args.event is not None:
        chain = index.chain(args.event)
        if not chain:
            raise SystemExit(
                f"event #{args.event} is not in the provenance index "
                f"(not emitted, or a bulk-telemetry kind)"
            )
        for line in index.render_chain(chain):
            print(line)
        return 0

    kinds = (args.action,) if args.action else DEFAULT_EXPLAIN_KINDS
    chains = index.action_chains(kinds=kinds, node=args.battery)
    if not chains:
        scope = f" on {args.battery}" if args.battery else ""
        print(f"no {'/'.join(kinds)} action(s){scope} in this trace")
    for chain in chains[: args.limit]:
        for line in index.render_chain(chain):
            print(line)
        print()
    if len(chains) > args.limit:
        print(f"... {len(chains) - args.limit} more chain(s); raise --limit\n")

    summary = index.action_summary()
    rows = [
        (kind, trigger, count)
        for kind in sorted(summary)
        for trigger, count in sorted(
            summary[kind].items(), key=lambda kv: (-kv[1], kv[0])
        )
    ]
    if rows:
        print(format_table(
            ("action", "triggered by", "count"), rows, title="action triggers"
        ))
    span_rows = [
        (
            name,
            int(stats["count"]),
            int(stats.get("open", 0)),
            stats["total"],
            stats["mean"],
            stats["max"],
        )
        for name, stats in index.span_stats().items()
    ]
    if span_rows:
        print()
        print(format_table(
            ("span", "closed", "open", "total s", "mean s", "max s"),
            span_rows,
            title="time in span",
        ))
    return 0


def _load_trace_model(path: str):
    """Event-kind counts plus a finalized health model for one trace."""
    from repro.obs.health import FleetHealthModel

    kinds: _Counter = _Counter()
    model = FleetHealthModel()
    try:
        for event in iter_events(path, strict=False):
            kinds[event.kind] += 1
            model.emit(event)
    except FileNotFoundError:
        raise SystemExit(f"no such trace file: {path}")
    except ValueError as exc:
        raise SystemExit(f"malformed trace line in {path}: {exc}")
    model.finalize()
    return kinds, model


def _trace_diff(path_a: str, path_b: str) -> int:
    """Compare two traces: event counts, per-battery aging, alerts."""
    kinds_a, model_a = _load_trace_model(path_a)
    kinds_b, model_b = _load_trace_model(path_b)
    print(f"A = {path_a}\nB = {path_b}\n")
    rows = [
        (kind, kinds_a.get(kind, 0), kinds_b.get(kind, 0),
         kinds_b.get(kind, 0) - kinds_a.get(kind, 0))
        for kind in sorted(set(kinds_a) | set(kinds_b))
    ]
    if not rows:
        print("(both traces are empty)")
        return 0
    print(format_table(("event kind", "A", "B", "B-A"), rows,
                       title="event counts"))
    for run_a, run_b in zip(model_a.runs, model_b.runs):
        names = sorted(set(run_a.batteries) | set(run_b.batteries))
        if not names:
            continue
        weights = model_a.weights
        metric_rows = []
        for name in names:
            in_a = name in run_a.batteries
            in_b = name in run_b.batteries
            score_a = (
                run_a.batteries[name].breakdown(weights).score if in_a else 0.0
            )
            score_b = (
                run_b.batteries[name].breakdown(weights).score if in_b else 0.0
            )
            m_a = run_a.batteries[name].metrics() if in_a else None
            m_b = run_b.batteries[name].metrics() if in_b else None

            def delta(field):
                a = getattr(m_a, field) if m_a is not None else 0.0
                b = getattr(m_b, field) if m_b is not None else 0.0
                return b - a

            metric_rows.append(
                (
                    name,
                    score_a,
                    score_b,
                    score_b - score_a,
                    delta("nat") * 1000.0,
                    delta("pc"),
                    delta("ddt"),
                    delta("dr_mean"),
                )
            )
        print()
        print(format_table(
            ("battery", "score A", "score B", "dscore",
             "dNAT x1e-3", "dPC", "dDDT", "dDR"),
            metric_rows,
            title=f"[{run_a.label} vs {run_b.label}] per-battery aging",
        ))
    if len(model_a.runs) != len(model_b.runs):
        print(
            f"\nnote: A has {len(model_a.runs)} run(s), B has "
            f"{len(model_b.runs)}; extra runs are not compared"
        )
    alerts_a = sum(len(r.alerts) for r in model_a.runs)
    alerts_b = sum(len(r.alerts) for r in model_b.runs)
    print(f"\nalert events: A {alerts_a}, B {alerts_b}")
    return 0


def _live_sim_inputs(args: argparse.Namespace):
    """Shared scenario/trace/policy construction for stats-like commands."""
    day = DayClass(args.day)
    scenario = Scenario(
        n_nodes=getattr(args, "nodes", 6),
        dt_s=args.dt,
        initial_fade=args.fade,
        seed=args.seed,
        stepper=getattr(args, "stepper", "reference"),
    )
    trace = scenario.trace_generator().days([day] * args.days)
    spec = RunSpec(scenario=scenario, trace=trace, policy=args.policy)
    return day, scenario, trace, spec


def cmd_health(args: argparse.Namespace) -> int:
    """Fleet health report from a trace file or a live instrumented run."""
    from repro.obs.alerts import AlertEngine, default_rules
    from repro.obs.health import FleetHealthModel

    if args.source:
        # Replay mode: a private engine re-derives day-window alerts from
        # the stream without touching the process-wide BUS/ALERTS.
        engine = AlertEngine(default_rules())
        engine.enabled = True
        try:
            model = FleetHealthModel.from_trace(args.source, alert_engine=engine)
        except FileNotFoundError:
            raise SystemExit(f"no such trace file: {args.source}")
        except ValueError as exc:
            raise SystemExit(f"malformed trace line in {args.source}: {exc}")
        print(model.report().to_text())
        return 0

    from repro.sim.engine import Simulation

    day, scenario, trace, spec = _live_sim_inputs(args)
    REGISTRY.reset()
    enable_observability(args.trace, **_trace_sink_kwargs(args))
    model = FleetHealthModel()
    BUS.add_sink(model)
    try:
        Simulation(scenario, spec.build_policy(), trace).run()
        model.finalize()
        print(
            f"{args.policy} on {args.days} x {day.value} day(s), "
            f"fade {args.fade:.0%}, dt {args.dt:.0f}s\n"
        )
        print(model.report().to_text())
    finally:
        BUS.remove_sink(model)
        disable_observability()
        REGISTRY.reset()
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    """Run one instrumented simulation and export the metric registry."""
    from repro.obs.export import to_csv_snapshot, to_openmetrics
    from repro.sim.engine import Simulation

    day, scenario, trace, spec = _live_sim_inputs(args)
    REGISTRY.reset()
    enable_observability(args.trace, **_trace_sink_kwargs(args))
    try:
        Simulation(scenario, spec.build_policy(), trace).run()
        if args.format == "openmetrics":
            text = to_openmetrics(REGISTRY)
        else:
            text = to_csv_snapshot(REGISTRY)
    finally:
        disable_observability()
        REGISTRY.reset()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.format} export to {args.out}")
    else:
        print(text, end="")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Run one instrumented simulation and print the metric registry."""
    from repro.sim.engine import Simulation

    day, scenario, trace, spec = _live_sim_inputs(args)
    REGISTRY.reset()
    enable_observability(args.trace, **_trace_sink_kwargs(args))
    try:
        with BUS.capture() as sink:
            Simulation(scenario, spec.build_policy(), trace).run()
        snap = REGISTRY.snapshot()
        print(
            f"{args.policy} on {args.days} x {day.value} day(s), "
            f"fade {args.fade:.0%}, dt {args.dt:.0f}s\n"
        )
        phase_rows = [
            (
                name[len("phase/"):],
                h["count"],
                h["total"] * 1e3,
                h["mean"] * 1e6,
                h["max"] * 1e6,
            )
            for name, h in snap["histograms"].items()
            if name.startswith("phase/")
        ]
        if phase_rows:
            print(format_table(
                ("phase", "calls", "total ms", "mean us", "max us"), phase_rows
            ))
        counter_rows = [(n, v) for n, v in snap["counters"].items()]
        if counter_rows:
            print()
            print(format_table(("counter", "value"), counter_rows))
        gauge_rows = [(n, v) for n, v in snap["gauges"].items()]
        if gauge_rows:
            print()
            print(format_table(("gauge", "value"), gauge_rows))
        event_counts = _Counter(e.kind for e in sink.events)
        if event_counts:
            print()
            print(format_table(
                ("event kind", "count"), list(event_counts.most_common())
            ))
        print(f"\n  {BUS.n_emitted} event(s) emitted, "
              f"{len(REGISTRY.samples)} day snapshot(s)")
    finally:
        disable_observability()
        REGISTRY.reset()
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    if args.cache_dir:
        configure_cache(directory=args.cache_dir)
    cache = default_cache()
    if cache is None:
        print("result cache is disabled (REPRO_CAMPAIGN_CACHE=0)")
        return 0
    if args.cache_action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.path}")
        return 0
    entries = len(cache)
    print(f"cache dir : {default_cache_dir()}")
    print(f"entries   : {entries}")
    print(f"size      : {cache.size_bytes() / 1024:.1f} KiB")
    return 0


def _load_payload(path: str) -> dict:
    import json

    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except FileNotFoundError:
        raise SystemExit(f"no such payload file: {path}") from None
    except ValueError as exc:
        raise SystemExit(f"{path} is not valid JSON: {exc}") from None


def _perf_record(args: argparse.Namespace, history) -> int:
    for path in args.files:
        data = _load_payload(path)
        try:
            record = history.record_payload(data)
        except ConfigurationError as exc:
            raise SystemExit(f"{path}: {exc}") from None
        print(
            f"recorded {record.source} from {path}: "
            f"{len(record.metrics)} metric(s) at "
            f"{record.sha[:9] or 'unknown sha'}"
        )
    print(f"history: {len(history)} record(s) in {history.path}")
    return 0


def _perf_history(args: argparse.Namespace, history) -> int:
    from repro import perf

    records = history.records()
    if history.n_skipped:
        print(
            f"warning: skipped {history.n_skipped} unreadable history line(s)"
        )
    if not args.metric:
        print(perf.render_metric_list(history.metric_names()))
        return 0
    pairs = history.series(args.metric, records=records)
    if not pairs:
        matches = [n for n in history.metric_names() if args.metric in n]
        if matches:
            print(f"no metric named {args.metric!r}; close matches:")
            for name in matches[:20]:
                print(f"  {name}")
        else:
            print(f"no recorded values for metric {args.metric!r}")
        return 1
    values = [v for _, v in pairs]
    print(
        perf.render_history(
            args.metric, pairs,
            change=perf.change_point(values),
            limit=args.limit,
        )
    )
    return 0


def _perf_diff(args: argparse.Namespace, history) -> int:
    from repro import perf

    records = history.records()

    def merged(sha_prefix: str):
        """Latest value of every metric recorded at a matching sha."""
        metrics: dict = {}
        full = None
        for record in records:
            if record.sha.startswith(sha_prefix) and record.sha:
                metrics.update(record.metrics)
                full = record.sha
        if full is None:
            raise SystemExit(
                f"no history record in {history.path} matches sha "
                f"{sha_prefix!r}"
            )
        return full, metrics

    sha_a, metrics_a = merged(args.sha_a)
    sha_b, metrics_b = merged(args.sha_b)
    print(perf.render_diff(sha_a, sha_b, metrics_a, metrics_b))
    return 0


def _announce_regressions(result) -> None:
    """Fan confirmed regressions out to the obs layer (when enabled).

    Each regression becomes a typed ``perf_regression`` bus event, an
    observation against the ``perf_regression`` alert rule, and registry
    metrics — so a ``repro perf check --trace FILE`` produces a trace
    that validates and exports like any other instrumented command.
    ``t`` is an emission counter: perf checks have no simulation clock,
    and the validator only requires run-clock monotonicity.
    """
    from repro.obs import ALERTS, PerfRegressionEvent

    sha = result.candidate.sha if result.candidate is not None else ""
    have_rule = any(r.name == "perf_regression" for r in ALERTS.rules)
    for i, check in enumerate(result.regressions):
        t = float(i)
        if BUS.enabled:
            BUS.emit(PerfRegressionEvent(
                t=t,
                metric=check.metric,
                value=check.value,
                baseline=check.median,
                sigma=check.sigma,
                deviation=check.deviation,
                direction=check.direction or "",
                sha=sha,
            ))
        if ALERTS.enabled and have_rule:
            ALERTS.observe("perf_regression", check.metric, check.deviation, t)
        if REGISTRY.enabled:
            REGISTRY.counter("perf/regressions_total").inc()
            REGISTRY.gauge(f"perf/deviation/{check.metric}").set(
                check.deviation
            )


def _export_perf_metrics(result, path: str) -> None:
    """OpenMetrics rendering of a check outcome (no --trace required)."""
    from repro.obs.export import write_export
    from repro.obs.metrics import MetricRegistry

    registry = MetricRegistry()
    registry.enabled = True
    registry.counter("perf/regressions_total").inc(len(result.regressions))
    registry.gauge("perf/metrics_checked").set(len(result.checks))
    registry.gauge("perf/metrics_without_baseline").set(
        len(result.no_baseline)
    )
    for check in result.regressions:
        registry.gauge(f"perf/deviation/{check.metric}").set(check.deviation)
    write_export(registry, path, fmt="openmetrics")
    print(f"wrote openmetrics export to {path}")


def _perf_check(args: argparse.Namespace, history) -> int:
    from repro import perf

    candidate = None
    if args.files:
        # Judge the given payloads against the whole history without
        # appending them — the "would this regress?" pre-commit shape.
        metrics: dict = {}
        sources: List[str] = []
        meta = None
        for path in args.files:
            data = _load_payload(path)
            try:
                source, flat = perf.extract_metrics(data)
            except ConfigurationError as exc:
                raise SystemExit(f"{path}: {exc}") from None
            sources.append(source)
            metrics.update(flat)
            payload_meta = data.get("meta")
            if meta is None and isinstance(payload_meta, dict) and payload_meta:
                meta = {str(k): str(v) for k, v in payload_meta.items()}
        candidate = perf.PerfRecord(
            source="+".join(sources),
            meta=meta or perf.collect_meta(),
            metrics=metrics,
        )
    result = perf.check_history(
        history,
        candidate=candidate,
        window=args.window,
        threshold=args.threshold,
    )
    _announce_regressions(result)
    if args.export:
        _export_perf_metrics(result, args.export)
    print(perf.render_check(result))
    return 0 if result.ok else 1


def cmd_perf(args: argparse.Namespace) -> int:
    """Perf observatory: record, plot, diff, and gate on bench history."""
    from repro import perf

    history = perf.PerfHistory(args.history or perf.default_history_path())
    if args.perf_cmd == "record":
        return _perf_record(args, history)
    if args.perf_cmd == "history":
        return _perf_history(args, history)
    if args.perf_cmd == "diff":
        return _perf_diff(args, history)
    return _perf_check(args, history)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BAAT (DSN 2015) reproduction: regenerate paper figures "
        "and compare battery management schemes.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments", help="list regenerable paper figures")

    run = sub.add_parser("run", help="regenerate one paper figure")
    run.add_argument("experiment", help="e.g. fig14 or 14")
    run.add_argument("--full", action="store_true", help="dense (slow) sweep")
    run.add_argument("--seed", type=int, default=DEFAULT_SEED)
    _add_execution_flags(run)

    compare = sub.add_parser("compare", help="run the four schemes head-to-head")
    compare.add_argument(
        "--day", choices=[d.value for d in DayClass], default="cloudy"
    )
    compare.add_argument("--fade", type=float, default=0.0,
                         help="initial battery fade (0.10 = 'old')")
    compare.add_argument("--days", type=int, default=1)
    compare.add_argument("--dt", type=float, default=120.0)
    compare.add_argument("--seed", type=int, default=DEFAULT_SEED)
    _add_stepper_flag(compare)
    _add_execution_flags(compare)

    campaign = sub.add_parser(
        "campaign",
        help="run a policy x weather sweep through the parallel, cached runner",
    )
    campaign.add_argument(
        "--policies",
        default=",".join(POLICY_NAMES),
        help="comma-separated scheme names (default: the four Table-4 schemes)",
    )
    campaign.add_argument(
        "--day-mix",
        default="cloudy",
        help="comma-separated day classes cycled over the horizon "
        "(e.g. cloudy,rainy)",
    )
    campaign.add_argument("--days", type=int, default=3)
    campaign.add_argument("--fade", type=float, default=0.0,
                          help="initial battery fade (0.10 = 'old')")
    campaign.add_argument("--dt", type=float, default=120.0)
    campaign.add_argument("--seed", type=int, default=DEFAULT_SEED)
    campaign.add_argument(
        "--watch",
        action="store_true",
        help="render a live dashboard while the campaign runs",
    )
    campaign.add_argument(
        "--watch-interval", type=float, default=1.0, metavar="S",
        help="dashboard refresh period for --watch (seconds)",
    )
    campaign.add_argument(
        "--summary", default=None, metavar="FILE",
        help="write a machine-readable campaign_summary.json rollup",
    )
    campaign.add_argument(
        "--perf-history", default=None, metavar="FILE",
        help="append the campaign rollup to a perf-history JSONL "
        "(see 'repro perf')",
    )
    campaign.add_argument(
        "--capture", choices=("full", "monitoring"), default="full",
        help="what traced pooled cells ship back: 'full' keeps lossless "
        "worker traces at the parent telemetry tier; 'monitoring' is the "
        "lean live-dashboard tier (sampled battery telemetry, no worker "
        "step metrics) that keeps --watch overhead to a few percent",
    )
    _add_stepper_flag(campaign)
    _add_execution_flags(campaign)

    serve_p = sub.add_parser(
        "serve",
        help="run the campaign service daemon (shared cache, in-flight "
        "dedupe across clients)",
    )
    serve_p.add_argument(
        "--socket", default="/tmp/repro-serve.sock", metavar="PATH",
        help="unix socket to listen on (default /tmp/repro-serve.sock)",
    )
    serve_p.add_argument(
        "--http", default=None, metavar="HOST:PORT",
        help="additionally serve HTTP on this localhost address "
        "(GET /ping, GET /status, POST /submit)",
    )
    serve_p.add_argument(
        "--workers", type=int, default=None,
        help="simulation worker processes "
        "(default: REPRO_CAMPAIGN_WORKERS or 1)",
    )
    serve_p.add_argument(
        "--retries", type=int, default=1,
        help="per-cell retry budget, applied separately to genuine "
        "failures and broken-pool incidents (default 1)",
    )
    serve_p.add_argument(
        "--no-cache", action="store_true",
        help="run without a shared result cache",
    )
    serve_p.add_argument(
        "--cache-dir", default=None,
        help="override the result-cache directory",
    )
    serve_p.add_argument(
        "--cache-backend", choices=("dir", "sqlite"), default=None,
        help="cache store backend (default: dir, or sqlite for a "
        ".sqlite/.db --cache-dir suffix)",
    )

    submit = sub.add_parser(
        "submit",
        help="submit a campaign to a running daemon and stream progress",
    )
    submit.add_argument(
        "--socket", default="/tmp/repro-serve.sock", metavar="PATH",
        help="daemon unix socket (default /tmp/repro-serve.sock)",
    )
    submit.add_argument(
        "--policies", default=",".join(POLICY_NAMES),
        help="comma-separated scheme names (default: the four Table-4 "
        "schemes)",
    )
    submit.add_argument(
        "--day-mix", default="cloudy",
        help="comma-separated day classes cycled over the horizon",
    )
    submit.add_argument("--days", type=int, default=1)
    submit.add_argument("--fade", type=float, default=0.0,
                        help="initial battery fade (0.10 = 'old')")
    submit.add_argument("--dt", type=float, default=120.0)
    submit.add_argument("--seed", type=int, default=DEFAULT_SEED)
    submit.add_argument(
        "--stepper", choices=("reference", "fleet"), default="reference"
    )
    submit.add_argument("--nodes", type=int, default=6, metavar="N")
    submit.add_argument(
        "--out", default=None, metavar="FILE",
        help="append every received stream line (JSONL) to FILE — "
        "readable by 'repro trace FILE' and 'repro top FILE'",
    )
    submit.add_argument(
        "--timeout", type=float, default=600.0, metavar="S",
        help="socket timeout per stream line (default 600)",
    )
    submit.add_argument(
        "--quiet", action="store_true", help="suppress per-cell lines"
    )

    serve_status = sub.add_parser(
        "serve-status", help="query (or shut down) a running daemon"
    )
    serve_status.add_argument(
        "--socket", default="/tmp/repro-serve.sock", metavar="PATH",
        help="daemon unix socket (default /tmp/repro-serve.sock)",
    )
    serve_status.add_argument(
        "--shutdown", action="store_true",
        help="ask the daemon to exit instead of printing status",
    )
    serve_status.add_argument(
        "--timeout", type=float, default=10.0, metavar="S",
        help="socket timeout (default 10)",
    )

    top = sub.add_parser(
        "top",
        help="live dashboard tailing a campaign trace as it is written",
    )
    top.add_argument(
        "file",
        help="trace JSONL path (rotating / gzipped segments are followed)",
    )
    top.add_argument(
        "--interval", type=float, default=1.0, metavar="S",
        help="poll-and-render period (seconds)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="drain what is readable now, render one frame, exit",
    )
    top.add_argument(
        "--timeout", type=float, default=30.0, metavar="S",
        help="exit non-zero after this many idle seconds with no new events",
    )
    top.add_argument(
        "--no-ansi", action="store_true", help="plain-text frames (no colours)"
    )

    cache = sub.add_parser("cache", help="inspect or clear the result cache")
    cache.add_argument(
        "cache_action", choices=("info", "clear"), nargs="?", default="info"
    )
    cache.add_argument("--cache-dir", default=None,
                       help="override the result-cache directory")

    trace = sub.add_parser(
        "trace",
        help="inspect a telemetry JSONL file written by --trace, "
        "'trace diff A B' to compare two, or 'trace validate FILE' "
        "to schema-check one",
    )
    trace.add_argument(
        "args", nargs="+", metavar="FILE | diff A B | validate FILE",
        help="trace JSONL path, or: diff A.jsonl B.jsonl, or: validate FILE",
    )
    trace.add_argument("--kind", default=None,
                       help="print only events of this kind")
    trace.add_argument("--node", default=None,
                       help="print only events touching this node")
    trace.add_argument("--limit", type=int, default=20,
                       help="max events to print before the summary (default 20)")
    trace.add_argument(
        "--expand-frames", action="store_true",
        help="decode columnar battery_frame events into the per-node "
        "battery_sample events they encode (counts/filters apply to "
        "the expanded samples)",
    )

    explain = sub.add_parser(
        "explain",
        help="causal provenance from a trace: walk control actions back "
        "to the alerts / SoC crossings that triggered them",
    )
    explain.add_argument("trace_file", metavar="TRACE",
                         help="trace JSONL written by --trace")
    explain.add_argument("--battery", default=None, metavar="NODE",
                         help="only actions touching this node")
    explain.add_argument("--event", type=int, default=None, metavar="EID",
                         help="explain one event by its #eid")
    explain.add_argument(
        "--action", default=None, metavar="KIND",
        help="only actions of this kind (e.g. vm_migrated, dvfs_cap)",
    )
    explain.add_argument("--limit", type=int, default=10,
                         help="max chains to print (default 10)")

    stats = sub.add_parser(
        "stats",
        help="run one instrumented simulation and print phase timings/metrics",
    )
    stats.add_argument("--policy", default="baat",
                       help="scheme to run (default baat; baat-planned allowed)")
    stats.add_argument("--day", choices=[d.value for d in DayClass],
                       default="cloudy")
    stats.add_argument("--days", type=int, default=1)
    stats.add_argument("--fade", type=float, default=0.0,
                       help="initial battery fade (0.10 = 'old')")
    stats.add_argument("--dt", type=float, default=120.0)
    stats.add_argument("--seed", type=int, default=DEFAULT_SEED)
    _add_stepper_flag(stats)
    _add_trace_flags(stats)
    _add_profile_flag(stats)

    health = sub.add_parser(
        "health",
        help="per-battery aging attribution, alerts, and EOL projections",
    )
    health.add_argument(
        "source", nargs="?", default=None, metavar="TRACE",
        help="trace JSONL to replay; omit to run a live instrumented "
        "simulation instead",
    )
    health.add_argument("--policy", default="baat",
                        help="scheme for the live run (default baat)")
    health.add_argument("--day", choices=[d.value for d in DayClass],
                        default="cloudy")
    health.add_argument("--days", type=int, default=1)
    health.add_argument("--fade", type=float, default=0.0,
                        help="initial battery fade (0.10 = 'old')")
    health.add_argument("--dt", type=float, default=120.0)
    health.add_argument("--seed", type=int, default=DEFAULT_SEED)
    _add_stepper_flag(health)
    _add_trace_flags(health)
    _add_profile_flag(health)

    export = sub.add_parser(
        "export",
        help="run one instrumented simulation and export the metric registry",
    )
    export.add_argument("--format", choices=("openmetrics", "csv"),
                        default="openmetrics")
    export.add_argument("--out", default=None, metavar="FILE",
                        help="write the export to FILE (default: stdout)")
    export.add_argument("--policy", default="baat",
                        help="scheme to run (default baat)")
    export.add_argument("--day", choices=[d.value for d in DayClass],
                        default="cloudy")
    export.add_argument("--days", type=int, default=1)
    export.add_argument("--fade", type=float, default=0.0,
                        help="initial battery fade (0.10 = 'old')")
    export.add_argument("--dt", type=float, default=120.0)
    export.add_argument("--seed", type=int, default=DEFAULT_SEED)
    _add_stepper_flag(export)
    _add_trace_flags(export)
    _add_profile_flag(export)

    perf_p = sub.add_parser(
        "perf",
        help="benchmark history: record payloads, plot series, diff shas, "
        "gate on regressions",
    )
    perf_sub = perf_p.add_subparsers(dest="perf_cmd", required=True)

    def _add_history_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--history", default=None, metavar="FILE",
            help="perf history JSONL (default: $REPRO_PERF_HISTORY or "
            "./perf-history.jsonl)",
        )

    perf_record = perf_sub.add_parser(
        "record",
        help="append BENCH_engine.json / BENCH_obs.json / bench-suite / "
        "campaign-summary payloads to the history",
    )
    perf_record.add_argument(
        "files", nargs="+", metavar="PAYLOAD",
        help="JSON payload file(s) to ingest",
    )
    _add_history_flag(perf_record)

    perf_hist = perf_sub.add_parser(
        "history",
        help="ASCII sparkline + table of one metric's recorded series",
    )
    perf_hist.add_argument(
        "metric", nargs="?", default=None,
        help="metric name (e.g. engine/n48/fleet_steps_per_s); omit to "
        "list every recorded metric",
    )
    perf_hist.add_argument(
        "--limit", type=int, default=15,
        help="table rows to print (default 15)",
    )
    _add_history_flag(perf_hist)

    perf_diff = perf_sub.add_parser(
        "diff", help="metric-by-metric comparison of two recorded shas"
    )
    perf_diff.add_argument("sha_a", help="first sha (prefix match)")
    perf_diff.add_argument("sha_b", help="second sha (prefix match)")
    _add_history_flag(perf_diff)

    perf_check = perf_sub.add_parser(
        "check",
        help="exit non-zero when the newest record (or given payloads) "
        "falls outside its rolling same-host baseline",
    )
    perf_check.add_argument(
        "files", nargs="*", metavar="PAYLOAD",
        help="judge these payload files against the history instead of "
        "the newest recorded entry (nothing is appended)",
    )
    perf_check.add_argument(
        "--window", type=int, default=20, metavar="K",
        help="rolling baseline window: last K same-host records "
        "(default 20)",
    )
    perf_check.add_argument(
        "--threshold", type=float, default=4.0, metavar="SIGMA",
        help="robust sigmas outside baseline that count as a regression "
        "(default 4.0)",
    )
    perf_check.add_argument(
        "--export", default=None, metavar="FILE",
        help="write an OpenMetrics rendering of the check outcome",
    )
    _add_history_flag(perf_check)
    _add_trace_flags(perf_check)

    return parser


#: Subcommands that manage their own observability lifecycle (so the
#: ``--trace`` plumbing in :func:`main` must not double-enable it).
_SELF_INSTRUMENTED = ("stats", "health", "export")


def _dispatch(args: argparse.Namespace) -> int:
    handlers = {
        "experiments": cmd_experiments,
        "run": cmd_run,
        "compare": cmd_compare,
        "campaign": cmd_campaign,
        "serve": cmd_serve,
        "submit": cmd_submit,
        "serve-status": cmd_serve_status,
        "top": cmd_top,
        "cache": cmd_cache,
        "trace": cmd_trace,
        "explain": cmd_explain,
        "stats": cmd_stats,
        "health": cmd_health,
        "export": cmd_export,
        "perf": cmd_perf,
    }
    # --trace on run/compare/campaign: attach a JSONL sink (and enable the
    # metric registry) for the duration of the command. stats/health/export
    # manage their own sinks so they can also use the in-memory stream.
    trace_path = (
        getattr(args, "trace", None)
        if args.command not in _SELF_INSTRUMENTED
        else None
    )
    if trace_path is None:
        return handlers[args.command](args)
    sink = enable_observability(trace_path, **_trace_sink_kwargs(args))
    try:
        return handlers[args.command](args)
    finally:
        n_events = sink.n_written if sink is not None else 0
        disable_observability()
        print(f"\n  wrote {n_events} telemetry event(s) to {trace_path}")


def _print_profile(profiler, target: str) -> None:
    """Render the cProfile result: dump to a file or print hot functions.

    The printed view complements the registry's step-phase timers: the
    timers say *which phase* is slow, the profile says *which function*.
    """
    import pstats

    profiler.disable()
    if target:
        profiler.dump_stats(target)
        print(f"\n  profile written to {target}")
        return
    stats = pstats.Stats(profiler, stream=sys.stdout)
    print("\nprofile (top 15 by cumulative time):")
    stats.sort_stats("cumulative").print_stats(15)
    # A second cut by internal time: cumulative ranking buries the leaf
    # array kernels under the callers that dispatch them.
    print("profile (top 15 by tottime):")
    stats.sort_stats("tottime").print_stats(15)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    profile_target = getattr(args, "profile", None)
    try:
        if profile_target is None:
            return _dispatch(args)
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            return _dispatch(args)
        finally:
            try:
                _print_profile(profiler, profile_target)
            except BrokenPipeError:
                pass
    except BrokenPipeError:  # piped into head/less that closed early
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
