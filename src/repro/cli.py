"""Command-line interface.

Seven subcommands mirror how the prototype was operated:

- ``repro experiments`` — list the paper figures this repo regenerates;
- ``repro run <exp>`` — regenerate one figure's table (``--full`` for the
  dense sweep);
- ``repro compare`` — run the Table-4 schemes head-to-head on a chosen
  day/battery-age cell and print the comparison;
- ``repro campaign`` — run an arbitrary policy x weather sweep through
  the parallel, cached campaign runner;
- ``repro cache`` — inspect or clear the on-disk result cache;
- ``repro trace <file>`` — inspect a trace JSONL written by ``--trace``;
- ``repro stats`` — run one instrumented simulation and print the metric
  registry: step-phase timings, action counters, gauges.

Every simulation-running subcommand accepts ``--workers N`` (process
fan-out), ``--no-cache`` (force fresh runs), ``--cache-dir``, and
``--trace FILE`` (stream structured telemetry events to a JSONL file —
engine events are captured from in-process runs, so use ``--workers 1``,
the default, for full control-loop traces).

Usage::

    python -m repro experiments
    python -m repro run fig14 --full --workers 4
    python -m repro run fig18 --trace out.jsonl
    python -m repro compare --day rainy --fade 0.1 --days 2
    python -m repro campaign --policies e-buff,baat --days 3 --workers 4
    python -m repro trace out.jsonl --kind vm_migrated
    python -m repro stats --policy baat-planned --day rainy --days 2
    python -m repro cache info
"""

from __future__ import annotations

import argparse
import importlib
import sys
from collections import Counter as _Counter
from typing import List, Optional, Sequence

from repro.analysis.reporting import format_table, percent_change
from repro.campaign import (
    RunSpec,
    configure_cache,
    default_cache,
    default_cache_dir,
    run_campaign,
    set_default_workers,
)
from repro.core.policies.factory import POLICY_NAMES
from repro.obs import (
    BUS,
    REGISTRY,
    disable_observability,
    enable_observability,
    iter_events,
)
from repro.rng import DEFAULT_SEED
from repro.sim.scenario import Scenario
from repro.solar.weather import DayClass

EXPERIMENTS = (
    "table01_usage_scenarios",
    "fig03_voltage",
    "fig04_capacity",
    "fig05_efficiency",
    "fig10_cycle_life",
    "fig12_profiling",
    "fig13_aging_comparison",
    "fig14_lifetime_sunshine",
    "fig15_lifetime_capacity",
    "fig16_cost",
    "fig17_expansion",
    "fig18_low_soc",
    "fig19_soc_distribution",
    "fig20_throughput",
    "fig21_dod_performance",
    "fig22_planned_aging",
)


def _resolve_experiment(token: str) -> str:
    """Accept 'fig14', 'fig14_lifetime_sunshine', or '14'."""
    token = token.lower()
    if token.isdigit():
        token = f"fig{int(token):02d}"
    matches = [name for name in EXPERIMENTS if name.startswith(token)]
    if len(matches) != 1:
        raise SystemExit(
            f"unknown or ambiguous experiment {token!r}; "
            f"choose from {', '.join(EXPERIMENTS)}"
        )
    return matches[0]


def cmd_experiments(_args: argparse.Namespace) -> int:
    for name in EXPERIMENTS:
        module = importlib.import_module(f"repro.experiments.{name}")
        first_line = (module.__doc__ or "").strip().splitlines()[0]
        print(f"{name:28s} {first_line}")
    return 0


def _apply_execution_flags(args: argparse.Namespace) -> None:
    """Fold --workers / --no-cache / --cache-dir into process defaults.

    Experiments pick these up through the campaign runner, so one flag
    parallelises every sweep without threading a parameter through each
    figure's ``run()`` signature.
    """
    workers = getattr(args, "workers", None)
    if workers is not None:
        if workers < 1:
            raise SystemExit("--workers must be >= 1")
        set_default_workers(workers)
    if getattr(args, "no_cache", False):
        configure_cache(enabled=False)
    if getattr(args, "cache_dir", None):
        configure_cache(directory=args.cache_dir)


def _add_execution_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=None,
        help="simulation worker processes (default: REPRO_CAMPAIGN_WORKERS or 1)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="skip the on-disk result cache (force fresh simulation)",
    )
    parser.add_argument(
        "--cache-dir", default=None, help="override the result-cache directory"
    )
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write structured telemetry events (JSONL) to FILE",
    )


def cmd_run(args: argparse.Namespace) -> int:
    _apply_execution_flags(args)
    name = _resolve_experiment(args.experiment)
    module = importlib.import_module(f"repro.experiments.{name}")
    result = module.run(quick=not args.full, seed=args.seed)
    print(result.to_text())
    return 0


def _comparison_table(results, labels) -> str:
    rows = []
    base = None
    for name in labels:
        result = results[name]
        if base is None:
            base = result
        rows.append(
            (
                name,
                result.throughput_per_day(),
                percent_change(result.throughput, base.throughput),
                result.worst_damage_per_day() * 1000.0,
                result.worst_low_soc_fraction() * 24.0,
                result.total_downtime_s / 3600.0,
                result.migrations,
                result.dvfs_transitions,
            )
        )
    return format_table(
        (
            "scheme",
            "thr/day",
            f"vs {labels[0]} %",
            "worst fade/d x1e-3",
            "low-SoC h/d",
            "down h",
            "migr",
            "dvfs",
        ),
        rows,
    )


def cmd_compare(args: argparse.Namespace) -> int:
    _apply_execution_flags(args)
    day = DayClass(args.day)
    scenario = Scenario(dt_s=args.dt, initial_fade=args.fade, seed=args.seed)
    trace = scenario.trace_generator().days([day] * args.days)
    print(
        f"{args.days} x {day.value} day(s), initial fade {args.fade:.0%}, "
        f"solar {trace.energy_wh() / 1000:.2f} kWh total\n"
    )
    specs = [
        RunSpec(scenario=scenario, trace=trace, policy=name)
        for name in POLICY_NAMES
    ]
    report = run_campaign(specs)
    print(_comparison_table(report.results(), POLICY_NAMES))
    print(f"\n  {report.summary_line()}")
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    _apply_execution_flags(args)
    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    if not policies:
        raise SystemExit("--policies must name at least one scheme")
    day_names = [d.strip() for d in args.day_mix.split(",") if d.strip()]
    try:
        day_mix = [DayClass(d) for d in day_names]
    except ValueError as exc:
        raise SystemExit(f"unknown day class in --day-mix: {exc}")
    days = (day_mix * ((args.days + len(day_mix) - 1) // len(day_mix)))[: args.days]

    scenario = Scenario(dt_s=args.dt, initial_fade=args.fade, seed=args.seed)
    trace = scenario.trace_generator().days(days)
    print(
        f"campaign: {len(policies)} scheme(s) x {args.days} day(s) "
        f"({'/'.join(d.value for d in days)}), initial fade {args.fade:.0%}, "
        f"solar {trace.energy_wh() / 1000:.2f} kWh total\n"
    )
    specs = [
        RunSpec(scenario=scenario, trace=trace, policy=name) for name in policies
    ]
    report = run_campaign(specs, n_workers=args.workers)
    failures = report.failures
    print(_comparison_table(report.results(strict=False), [
        o.label for o in report.outcomes if o.ok
    ]))
    print("\ncells:")
    for line in report.per_cell_lines():
        print(f"  {line}")
    print(f"\n  {report.cache_summary_line()}")
    print(f"  {report.summary_line()}")
    for outcome in failures:
        print(f"  FAILED {outcome.label}: {'; '.join(outcome.errors)}")
    return 1 if failures else 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Inspect a trace JSONL file: filter, print, and summarise events."""
    kinds: _Counter = _Counter()
    nodes: _Counter = _Counter()
    printed = 0
    t_min = float("inf")
    t_max = float("-inf")
    total = 0
    try:
        for event in iter_events(args.file, strict=False):
            total += 1
            kinds[event.kind] += 1
            node = getattr(event, "node", None)
            if node:
                nodes[f"{node}:{event.kind}"] += 1
            t_min = min(t_min, event.t)
            t_max = max(t_max, event.t)
            if args.kind and event.kind != args.kind:
                continue
            if args.node and getattr(event, "node", None) != args.node:
                continue
            if printed < args.limit:
                print(event.to_json())
                printed += 1
    except FileNotFoundError:
        raise SystemExit(f"no such trace file: {args.file}")
    except BrokenPipeError:  # piped into head/less that closed early
        return 0
    except ValueError as exc:
        raise SystemExit(f"malformed trace line in {args.file}: {exc}")
    try:
        if total == 0:
            print("(empty trace)")
            return 0
        print(f"\n{total} event(s), t in [{t_min:.0f}, {t_max:.0f}] s")
        for kind, count in kinds.most_common():
            print(f"  {kind:20s} {count}")
    except BrokenPipeError:  # piped into head/less that closed early
        pass
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Run one instrumented simulation and print the metric registry."""
    from repro.sim.engine import Simulation

    day = DayClass(args.day)
    scenario = Scenario(dt_s=args.dt, initial_fade=args.fade, seed=args.seed)
    trace = scenario.trace_generator().days([day] * args.days)
    spec = RunSpec(scenario=scenario, trace=trace, policy=args.policy)

    REGISTRY.reset()
    enable_observability(args.trace)
    try:
        with BUS.capture() as sink:
            Simulation(scenario, spec.build_policy(), trace).run()
        snap = REGISTRY.snapshot()
        print(
            f"{args.policy} on {args.days} x {day.value} day(s), "
            f"fade {args.fade:.0%}, dt {args.dt:.0f}s\n"
        )
        phase_rows = [
            (
                name[len("phase/"):],
                h["count"],
                h["total"] * 1e3,
                h["mean"] * 1e6,
                h["max"] * 1e6,
            )
            for name, h in snap["histograms"].items()
            if name.startswith("phase/")
        ]
        if phase_rows:
            print(format_table(
                ("phase", "calls", "total ms", "mean us", "max us"), phase_rows
            ))
        counter_rows = [(n, v) for n, v in snap["counters"].items()]
        if counter_rows:
            print()
            print(format_table(("counter", "value"), counter_rows))
        gauge_rows = [(n, v) for n, v in snap["gauges"].items()]
        if gauge_rows:
            print()
            print(format_table(("gauge", "value"), gauge_rows))
        event_counts = _Counter(e.kind for e in sink.events)
        if event_counts:
            print()
            print(format_table(
                ("event kind", "count"), list(event_counts.most_common())
            ))
        print(f"\n  {BUS.n_emitted} event(s) emitted, "
              f"{len(REGISTRY.samples)} day snapshot(s)")
    finally:
        disable_observability()
        REGISTRY.reset()
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    if args.cache_dir:
        configure_cache(directory=args.cache_dir)
    cache = default_cache()
    if cache is None:
        print("result cache is disabled (REPRO_CAMPAIGN_CACHE=0)")
        return 0
    if args.cache_action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.path}")
        return 0
    entries = len(cache)
    print(f"cache dir : {default_cache_dir()}")
    print(f"entries   : {entries}")
    print(f"size      : {cache.size_bytes() / 1024:.1f} KiB")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BAAT (DSN 2015) reproduction: regenerate paper figures "
        "and compare battery management schemes.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments", help="list regenerable paper figures")

    run = sub.add_parser("run", help="regenerate one paper figure")
    run.add_argument("experiment", help="e.g. fig14 or 14")
    run.add_argument("--full", action="store_true", help="dense (slow) sweep")
    run.add_argument("--seed", type=int, default=DEFAULT_SEED)
    _add_execution_flags(run)

    compare = sub.add_parser("compare", help="run the four schemes head-to-head")
    compare.add_argument(
        "--day", choices=[d.value for d in DayClass], default="cloudy"
    )
    compare.add_argument("--fade", type=float, default=0.0,
                         help="initial battery fade (0.10 = 'old')")
    compare.add_argument("--days", type=int, default=1)
    compare.add_argument("--dt", type=float, default=120.0)
    compare.add_argument("--seed", type=int, default=DEFAULT_SEED)
    _add_execution_flags(compare)

    campaign = sub.add_parser(
        "campaign",
        help="run a policy x weather sweep through the parallel, cached runner",
    )
    campaign.add_argument(
        "--policies",
        default=",".join(POLICY_NAMES),
        help="comma-separated scheme names (default: the four Table-4 schemes)",
    )
    campaign.add_argument(
        "--day-mix",
        default="cloudy",
        help="comma-separated day classes cycled over the horizon "
        "(e.g. cloudy,rainy)",
    )
    campaign.add_argument("--days", type=int, default=3)
    campaign.add_argument("--fade", type=float, default=0.0,
                          help="initial battery fade (0.10 = 'old')")
    campaign.add_argument("--dt", type=float, default=120.0)
    campaign.add_argument("--seed", type=int, default=DEFAULT_SEED)
    _add_execution_flags(campaign)

    cache = sub.add_parser("cache", help="inspect or clear the result cache")
    cache.add_argument(
        "cache_action", choices=("info", "clear"), nargs="?", default="info"
    )
    cache.add_argument("--cache-dir", default=None,
                       help="override the result-cache directory")

    trace = sub.add_parser(
        "trace", help="inspect a telemetry JSONL file written by --trace"
    )
    trace.add_argument("file", help="trace JSONL path")
    trace.add_argument("--kind", default=None,
                       help="print only events of this kind")
    trace.add_argument("--node", default=None,
                       help="print only events touching this node")
    trace.add_argument("--limit", type=int, default=20,
                       help="max events to print before the summary (default 20)")

    stats = sub.add_parser(
        "stats",
        help="run one instrumented simulation and print phase timings/metrics",
    )
    stats.add_argument("--policy", default="baat",
                       help="scheme to run (default baat; baat-planned allowed)")
    stats.add_argument("--day", choices=[d.value for d in DayClass],
                       default="cloudy")
    stats.add_argument("--days", type=int, default=1)
    stats.add_argument("--fade", type=float, default=0.0,
                       help="initial battery fade (0.10 = 'old')")
    stats.add_argument("--dt", type=float, default=120.0)
    stats.add_argument("--seed", type=int, default=DEFAULT_SEED)
    stats.add_argument("--trace", default=None, metavar="FILE",
                       help="also write the event stream to FILE (JSONL)")

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "experiments": cmd_experiments,
        "run": cmd_run,
        "compare": cmd_compare,
        "campaign": cmd_campaign,
        "cache": cmd_cache,
        "trace": cmd_trace,
        "stats": cmd_stats,
    }
    # --trace on run/compare/campaign: attach a JSONL sink (and enable the
    # metric registry) for the duration of the command. `stats` manages
    # its own sink so it can also print the in-memory event summary.
    trace_path = getattr(args, "trace", None) if args.command != "stats" else None
    if trace_path is None:
        return handlers[args.command](args)
    sink = enable_observability(trace_path)
    try:
        return handlers[args.command](args)
    finally:
        n_events = sink.n_written if sink is not None else 0
        disable_observability()
        print(f"\n  wrote {n_events} telemetry event(s) to {trace_path}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
