"""Command-line interface.

Three subcommands mirror how the prototype was operated:

- ``repro experiments`` — list the paper figures this repo regenerates;
- ``repro run <exp>`` — regenerate one figure's table (``--full`` for the
  dense sweep);
- ``repro compare`` — run the Table-4 schemes head-to-head on a chosen
  day/battery-age cell and print the comparison.

Usage::

    python -m repro experiments
    python -m repro run fig14 --full
    python -m repro compare --day rainy --fade 0.1 --days 2
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import List, Optional, Sequence

from repro.analysis.reporting import format_table, percent_change
from repro.core.policies.factory import POLICY_NAMES, make_policy
from repro.rng import DEFAULT_SEED
from repro.sim.engine import run_policy_on_trace
from repro.sim.scenario import Scenario
from repro.solar.weather import DayClass

EXPERIMENTS = (
    "table01_usage_scenarios",
    "fig03_voltage",
    "fig04_capacity",
    "fig05_efficiency",
    "fig10_cycle_life",
    "fig12_profiling",
    "fig13_aging_comparison",
    "fig14_lifetime_sunshine",
    "fig15_lifetime_capacity",
    "fig16_cost",
    "fig17_expansion",
    "fig18_low_soc",
    "fig19_soc_distribution",
    "fig20_throughput",
    "fig21_dod_performance",
    "fig22_planned_aging",
)


def _resolve_experiment(token: str) -> str:
    """Accept 'fig14', 'fig14_lifetime_sunshine', or '14'."""
    token = token.lower()
    if token.isdigit():
        token = f"fig{int(token):02d}"
    matches = [name for name in EXPERIMENTS if name.startswith(token)]
    if len(matches) != 1:
        raise SystemExit(
            f"unknown or ambiguous experiment {token!r}; "
            f"choose from {', '.join(EXPERIMENTS)}"
        )
    return matches[0]


def cmd_experiments(_args: argparse.Namespace) -> int:
    for name in EXPERIMENTS:
        module = importlib.import_module(f"repro.experiments.{name}")
        first_line = (module.__doc__ or "").strip().splitlines()[0]
        print(f"{name:28s} {first_line}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    name = _resolve_experiment(args.experiment)
    module = importlib.import_module(f"repro.experiments.{name}")
    result = module.run(quick=not args.full, seed=args.seed)
    print(result.to_text())
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    day = DayClass(args.day)
    scenario = Scenario(dt_s=args.dt, initial_fade=args.fade, seed=args.seed)
    trace = scenario.trace_generator().days([day] * args.days)
    print(
        f"{args.days} x {day.value} day(s), initial fade {args.fade:.0%}, "
        f"solar {trace.energy_wh() / 1000:.2f} kWh total\n"
    )
    rows = []
    base = None
    for name in POLICY_NAMES:
        result = run_policy_on_trace(
            scenario, make_policy(name, seed=args.seed), trace
        )
        if base is None:
            base = result
        rows.append(
            (
                name,
                result.throughput_per_day(),
                percent_change(result.throughput, base.throughput),
                result.worst_damage_per_day() * 1000.0,
                result.worst_low_soc_fraction() * 24.0,
                result.total_downtime_s / 3600.0,
                result.migrations,
                result.dvfs_transitions,
            )
        )
    print(
        format_table(
            (
                "scheme",
                "thr/day",
                "vs e-buff %",
                "worst fade/d x1e-3",
                "low-SoC h/d",
                "down h",
                "migr",
                "dvfs",
            ),
            rows,
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BAAT (DSN 2015) reproduction: regenerate paper figures "
        "and compare battery management schemes.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments", help="list regenerable paper figures")

    run = sub.add_parser("run", help="regenerate one paper figure")
    run.add_argument("experiment", help="e.g. fig14 or 14")
    run.add_argument("--full", action="store_true", help="dense (slow) sweep")
    run.add_argument("--seed", type=int, default=DEFAULT_SEED)

    compare = sub.add_parser("compare", help="run the four schemes head-to-head")
    compare.add_argument(
        "--day", choices=[d.value for d in DayClass], default="cloudy"
    )
    compare.add_argument("--fade", type=float, default=0.0,
                         help="initial battery fade (0.10 = 'old')")
    compare.add_argument("--days", type=int, default=1)
    compare.add_argument("--dt", type=float, default=120.0)
    compare.add_argument("--seed", type=int, default=DEFAULT_SEED)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "experiments": cmd_experiments,
        "run": cmd_run,
        "compare": cmd_compare,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
