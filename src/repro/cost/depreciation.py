"""Battery depreciation cost (paper Fig. 16).

"Increasing battery lifetime can greatly increase the return on investment
(ROI) due to the reduced battery depreciation cost." Straight-line
depreciation over the battery's *achieved* (not nameplate) service life:
a fleet whose batteries survive 69 % longer pays proportionally less per
year for the same installed capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.battery.params import BatteryParams
from repro.errors import ConfigurationError
from repro.units import DAYS_PER_YEAR


def annual_depreciation_usd(price_usd: float, lifetime_days: float) -> float:
    """Straight-line annual depreciation of one battery."""
    if price_usd < 0:
        raise ConfigurationError("price_usd must be >= 0")
    if lifetime_days <= 0:
        raise ConfigurationError("lifetime_days must be positive")
    return price_usd * DAYS_PER_YEAR / lifetime_days


@dataclass(frozen=True)
class DepreciationModel:
    """Fleet-level battery depreciation.

    Attributes
    ----------
    battery:
        The deployed battery product (price lives on its params).
    n_batteries:
        Fleet size.
    replacement_overhead_usd:
        Labour/logistics per replacement event (datacenter battery swaps
        are technician work, not free).
    """

    battery: BatteryParams
    n_batteries: int = 6
    replacement_overhead_usd: float = 15.0

    def __post_init__(self) -> None:
        if self.n_batteries <= 0:
            raise ConfigurationError("n_batteries must be positive")
        if self.replacement_overhead_usd < 0:
            raise ConfigurationError("replacement_overhead_usd must be >= 0")

    @property
    def unit_cost_usd(self) -> float:
        """Cost of one replacement event (battery + labour)."""
        return self.battery.price_usd + self.replacement_overhead_usd

    def annual_cost_usd(self, lifetime_days: float) -> float:
        """Fleet annual depreciation at a given achieved lifetime."""
        return self.n_batteries * annual_depreciation_usd(
            self.unit_cost_usd, lifetime_days
        )

    def saving_vs(
        self, lifetime_days: float, baseline_lifetime_days: float
    ) -> float:
        """Annual USD saved relative to a baseline lifetime."""
        return self.annual_cost_usd(baseline_lifetime_days) - self.annual_cost_usd(
            lifetime_days
        )
