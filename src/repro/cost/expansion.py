"""Server expansion at constant TCO (paper Fig. 17).

"BAAT allows existing green datacenters to expand (scale-out) without
increasing the total cost of ownership ... because the cost savings due to
improved battery life can actually be used to purchase more servers."

The expansion is solved as a fixed point, because adding servers raises
the server-to-battery ratio, which shortens battery life (Fig. 15) and
eats part of the savings — the reason the paper's expansion ratio "does
not linearly grow when server number increases". The solar budget caps
how many added servers are actually powerable, tying the result to the
sunshine fraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cost.tco import TCOModel
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ExpansionModel:
    """Inputs for the constant-TCO expansion computation.

    Attributes
    ----------
    tco:
        The cost model.
    baseline_servers:
        Fleet size under the baseline (e-Buff) scheme.
    lifetime_of_ratio:
        Callable mapping server-to-battery ratio (W/Ah) to the *BAAT*
        battery lifetime in days — typically a fit of Fig. 15's sweep.
    baseline_lifetime_days:
        e-Buff battery lifetime at the baseline ratio.
    baseline_ratio_w_per_ah:
        Present server-to-battery ratio.
    solar_headroom_fraction:
        Fraction of additional servers the solar budget can actually
        power; grows with the sunshine fraction.
    """

    tco: TCOModel
    baseline_servers: int
    lifetime_of_ratio: Callable[[float], float]
    baseline_lifetime_days: float
    baseline_ratio_w_per_ah: float
    solar_headroom_fraction: float

    def __post_init__(self) -> None:
        if self.baseline_servers <= 0:
            raise ConfigurationError("baseline_servers must be positive")
        if self.baseline_lifetime_days <= 0:
            raise ConfigurationError("baseline_lifetime_days must be positive")
        if self.baseline_ratio_w_per_ah <= 0:
            raise ConfigurationError("baseline_ratio_w_per_ah must be positive")
        if not 0.0 <= self.solar_headroom_fraction <= 1.0:
            raise ConfigurationError("solar_headroom_fraction must be in [0, 1]")


def expansion_at_constant_tco(model: ExpansionModel, max_iter: int = 50) -> float:
    """Fractional server expansion affordable at the baseline's TCO.

    Iterates: candidate expansion -> new ratio -> new BAAT lifetime ->
    new battery cost -> affordable servers, to convergence. Returns the
    expansion fraction (0.12 = 12 % more servers), capped by the solar
    headroom.
    """
    baseline_cost = model.tco.annual(
        model.baseline_servers, model.baseline_lifetime_days
    ).total_usd

    expansion = 0.0
    for _ in range(max_iter):
        ratio = model.baseline_ratio_w_per_ah * (1.0 + expansion)
        lifetime = max(1.0, model.lifetime_of_ratio(ratio))
        battery_cost = model.tco.depreciation.annual_cost_usd(lifetime)
        server_budget = baseline_cost - battery_cost
        affordable = server_budget / model.tco.server_annual_usd
        new_expansion = max(0.0, affordable / model.baseline_servers - 1.0)
        new_expansion = min(new_expansion, model.solar_headroom_fraction)
        if abs(new_expansion - expansion) < 1e-6:
            expansion = new_expansion
            break
        expansion = 0.5 * (expansion + new_expansion)
    return expansion
