"""Total-cost-of-ownership model.

Only the components the paper's Figs. 16-17 argue about are modelled:
amortised server capex, battery depreciation, and the (small) residual
grid energy bill. Facility capex is identical across the compared schemes
and therefore omitted — differences, not absolutes, carry the result.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.depreciation import DepreciationModel
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CostBreakdown:
    """Annual cost components (USD/year)."""

    servers_usd: float
    batteries_usd: float
    energy_usd: float

    @property
    def total_usd(self) -> float:
        return self.servers_usd + self.batteries_usd + self.energy_usd


@dataclass(frozen=True)
class TCOModel:
    """Annualised costs for a green micro-datacenter.

    Attributes
    ----------
    server_price_usd / server_amortization_years:
        Capex amortisation for one server (2015-era 1U box).
    energy_price_usd_per_kwh:
        Residual utility price (solar itself is sunk capex).
    """

    depreciation: DepreciationModel
    server_price_usd: float = 2000.0
    server_amortization_years: float = 4.0
    energy_price_usd_per_kwh: float = 0.10

    def __post_init__(self) -> None:
        if self.server_price_usd <= 0 or self.server_amortization_years <= 0:
            raise ConfigurationError("server price and amortization must be positive")
        if self.energy_price_usd_per_kwh < 0:
            raise ConfigurationError("energy price must be >= 0")

    @property
    def server_annual_usd(self) -> float:
        """Amortised yearly cost of one server."""
        return self.server_price_usd / self.server_amortization_years

    def annual(
        self,
        n_servers: int,
        battery_lifetime_days: float,
        grid_kwh_per_year: float = 0.0,
    ) -> CostBreakdown:
        """Annual cost breakdown for a deployment."""
        if n_servers <= 0:
            raise ConfigurationError("n_servers must be positive")
        return CostBreakdown(
            servers_usd=n_servers * self.server_annual_usd,
            batteries_usd=self.depreciation.annual_cost_usd(battery_lifetime_days),
            energy_usd=grid_kwh_per_year * self.energy_price_usd_per_kwh,
        )
