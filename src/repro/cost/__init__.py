"""Cost models: depreciation, TCO, and server expansion (Figs. 16-17)."""

from repro.cost.depreciation import annual_depreciation_usd, DepreciationModel
from repro.cost.tco import TCOModel, CostBreakdown
from repro.cost.expansion import ExpansionModel, expansion_at_constant_tco
from repro.cost.replacement import (
    FleetSchedule,
    ReplacementEvent,
    ReplacementSimulator,
)

__all__ = [
    "annual_depreciation_usd",
    "DepreciationModel",
    "TCOModel",
    "CostBreakdown",
    "ExpansionModel",
    "expansion_at_constant_tco",
    "FleetSchedule",
    "ReplacementEvent",
    "ReplacementSimulator",
]
