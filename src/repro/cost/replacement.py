"""Event-based battery replacement simulation.

The depreciation model (Fig. 16) annualises a single lifetime figure.
Real fleets pay in *events*: a battery crosses the 80 %-capacity floor,
a technician swaps it, and the clock restarts — with replacement dates
scattered by manufacturing variation and load imbalance ("operators have
to replace batteries that undergo faster aging irregularly, which
unavoidably increases battery maintenance and replacement cost",
section IV-B). This module rolls a fleet forward over a horizon using
per-policy daily damage rates and produces the replacement schedule and
its cash flow, from which the annual cost emerges by accounting rather
than by formula.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.battery.aging.mechanisms import EOL_FADE
from repro.battery.params import BatteryParams
from repro.errors import ConfigurationError
from repro.rng import spawn
from repro.units import DAYS_PER_YEAR


@dataclass(frozen=True)
class ReplacementEvent:
    """One battery swap."""

    day: float
    unit: int
    cost_usd: float
    #: The service life the replaced battery achieved (days).
    lifetime_days: float = 0.0


@dataclass(frozen=True)
class FleetSchedule:
    """Outcome of a fleet roll-forward."""

    horizon_days: float
    events: Tuple[ReplacementEvent, ...]
    unit_cost_usd: float

    @property
    def total_cost_usd(self) -> float:
        return sum(e.cost_usd for e in self.events)

    @property
    def annual_cost_usd(self) -> float:
        years = self.horizon_days / DAYS_PER_YEAR
        return self.total_cost_usd / years if years > 0 else 0.0

    @property
    def replacements(self) -> int:
        return len(self.events)

    def irregularity(self) -> float:
        """Coefficient of variation of achieved battery lifetimes.

        0 means every battery lasts the same (maintenance can be batched
        and planned); large values mean the irregular, unplannable swaps
        the paper warns about.
        """
        if len(self.events) < 3:
            return 0.0
        lifetimes = np.array([e.lifetime_days for e in self.events])
        mean = float(np.mean(lifetimes))
        return float(np.std(lifetimes) / mean) if mean > 0 else 0.0


class ReplacementSimulator:
    """Rolls a battery fleet forward under a daily damage-rate profile."""

    def __init__(
        self,
        params: BatteryParams,
        n_batteries: int = 6,
        replacement_overhead_usd: float = 15.0,
        seed: int = 0,
    ):
        if n_batteries <= 0:
            raise ConfigurationError("n_batteries must be positive")
        self.params = params
        self.n_batteries = n_batteries
        self.unit_cost_usd = params.price_usd + replacement_overhead_usd
        self.seed = seed

    def simulate(
        self,
        mean_damage_per_day: float,
        horizon_days: float,
        damage_spread: float = 0.15,
    ) -> FleetSchedule:
        """Roll the fleet to ``horizon_days``.

        Parameters
        ----------
        mean_damage_per_day:
            Fleet-mean capacity-fade rate (from a policy's simulated
            season, e.g. ``SimResult.mean_damage_per_day()``).
        damage_spread:
            Relative std-dev of per-unit rates (load imbalance +
            manufacturing variation). Zero gives a perfectly synchronous
            fleet.
        """
        if mean_damage_per_day <= 0:
            raise ConfigurationError("mean_damage_per_day must be positive")
        if horizon_days <= 0:
            raise ConfigurationError("horizon_days must be positive")
        if damage_spread < 0:
            raise ConfigurationError("damage_spread must be >= 0")

        rng = spawn(self.seed, "replacement/rates")
        events: List[ReplacementEvent] = []
        for unit in range(self.n_batteries):
            day = 0.0
            while True:
                rate = mean_damage_per_day * max(
                    0.2, 1.0 + damage_spread * rng.standard_normal()
                )
                life = EOL_FADE / rate
                day += life
                if day > horizon_days:
                    break
                events.append(
                    ReplacementEvent(
                        day=day,
                        unit=unit,
                        cost_usd=self.unit_cost_usd,
                        lifetime_days=life,
                    )
                )
        events.sort(key=lambda e: (e.day, e.unit))
        return FleetSchedule(
            horizon_days=horizon_days,
            events=tuple(events),
            unit_cost_usd=self.unit_cost_usd,
        )

    def compare(
        self,
        rates: Dict[str, float],
        horizon_days: float = 4.0 * DAYS_PER_YEAR,
    ) -> Dict[str, FleetSchedule]:
        """Fleet schedules for several policies' damage rates."""
        return {
            name: self.simulate(rate, horizon_days) for name, rate in rates.items()
        }
