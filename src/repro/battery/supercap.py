"""Supercapacitor model (for hybrid energy buffers).

The paper's authors' follow-up work (HEB, its reference [52]) deploys
*hybrid* energy buffers: a supercapacitor absorbs power spikes so the
lead-acid battery sees only smoothed current. Electrically a supercap is
the battery's complement — tiny energy, huge power, essentially no
cycling wear, but steep self-discharge:

- usable energy `E = ½C(V_max² − V_min²)`, a few watt-hours per node;
- power limited only by ESR (kilowatts for module-scale parts);
- round-trip efficiency ~95-98 % (pure ESR loss);
- no cycle aging over datacenter timescales (10⁵-10⁶ cycles);
- self-discharge of several percent per day.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import SECONDS_PER_HOUR, clamp


@dataclass(frozen=True)
class SupercapParams:
    """Module-scale supercapacitor bank parameters.

    Defaults describe a small 58 F / 16 V module bank per node: ~2 Wh
    usable — enough to carry a multi-second spike, useless for bulk
    energy, exactly the division of labour a hybrid buffer wants.
    """

    capacitance_f: float = 58.0
    v_max: float = 16.0
    v_min: float = 8.0
    esr_ohm: float = 0.022
    max_power_w: float = 2000.0
    self_discharge_per_day: float = 0.05

    def __post_init__(self) -> None:
        if self.capacitance_f <= 0:
            raise ConfigurationError("capacitance_f must be positive")
        if not 0.0 <= self.v_min < self.v_max:
            raise ConfigurationError("need 0 <= v_min < v_max")
        if self.esr_ohm < 0 or self.max_power_w <= 0:
            raise ConfigurationError("esr_ohm >= 0 and max_power_w > 0 required")
        if not 0.0 <= self.self_discharge_per_day < 1.0:
            raise ConfigurationError("self_discharge_per_day must be in [0, 1)")

    @property
    def usable_energy_wh(self) -> float:
        """Energy between v_max and v_min, in watt-hours."""
        joules = 0.5 * self.capacitance_f * (self.v_max**2 - self.v_min**2)
        return joules / SECONDS_PER_HOUR


class Supercapacitor:
    """Energy-reservoir supercap: no aging, ESR losses, self-discharge."""

    def __init__(self, params: SupercapParams | None = None, initial_soc: float = 1.0):
        self.params = params or SupercapParams()
        if not 0.0 <= initial_soc <= 1.0:
            raise ConfigurationError("initial_soc must be in [0, 1]")
        self._energy_wh = initial_soc * self.params.usable_energy_wh
        self.energy_in_wh = 0.0
        self.energy_out_wh = 0.0

    @property
    def soc(self) -> float:
        """Stored fraction of usable energy."""
        cap = self.params.usable_energy_wh
        return self._energy_wh / cap if cap > 0 else 0.0

    @property
    def stored_wh(self) -> float:
        return self._energy_wh

    def _efficiency(self, power_w: float) -> float:
        """ESR loss fraction at a given power (approximate, at mid V)."""
        v = 0.5 * (self.params.v_max + self.params.v_min)
        current = power_w / max(v, 1e-9)
        loss = current * current * self.params.esr_ohm
        return clamp(1.0 - loss / max(power_w, 1e-9), 0.5, 1.0)

    def discharge(self, power_w: float, dt: float) -> float:
        """Deliver up to ``power_w`` for ``dt`` seconds; returns delivered
        average power."""
        if power_w < 0 or dt <= 0:
            raise ConfigurationError("power_w >= 0 and dt > 0 required")
        power_w = min(power_w, self.params.max_power_w)
        eta = self._efficiency(power_w)
        want_wh = power_w * dt / SECONDS_PER_HOUR / eta
        take_wh = min(want_wh, self._energy_wh)
        self._energy_wh -= take_wh
        delivered_wh = take_wh * eta
        self.energy_out_wh += delivered_wh
        return delivered_wh * SECONDS_PER_HOUR / dt

    def charge(self, power_w: float, dt: float) -> float:
        """Absorb up to ``power_w`` for ``dt`` seconds; returns average
        power drawn from the source."""
        if power_w < 0 or dt <= 0:
            raise ConfigurationError("power_w >= 0 and dt > 0 required")
        power_w = min(power_w, self.params.max_power_w)
        eta = self._efficiency(power_w)
        room_wh = self.params.usable_energy_wh - self._energy_wh
        stored_wh = min(power_w * dt / SECONDS_PER_HOUR * eta, room_wh)
        self._energy_wh += stored_wh
        drawn_wh = stored_wh / eta if eta > 0 else 0.0
        self.energy_in_wh += drawn_wh
        return drawn_wh * SECONDS_PER_HOUR / dt

    def rest(self, dt: float) -> None:
        """Self-discharge for ``dt`` seconds."""
        if dt <= 0:
            raise ConfigurationError("dt must be positive")
        import math

        self._energy_wh *= math.exp(
            -self.params.self_discharge_per_day * dt / 86400.0
        )
