"""Stateful battery unit: the object the rest of the system talks to.

:class:`BatteryUnit` composes the sub-models — coulomb-counting SoC with
the Peukert drain correction, the terminal-voltage model, the lumped
thermal model, the CC-CV charger, and the five-mechanism aging model —
behind a power-oriented API:

- :meth:`discharge` — "deliver up to P watts for dt seconds", returning
  what was actually delivered (the battery may curtail on cut-off SoC,
  cut-off voltage, or sheer emptiness);
- :meth:`charge` — "absorb up to P watts for dt seconds", limited by the
  charger's acceptance current and taper;
- :meth:`rest` — idle for dt seconds (calendar aging still accrues);
- :meth:`sample` — a Table-2-style sensor reading (current, voltage,
  temperature, time) for the BAAT power table.

Sign convention: *positive current = discharge*, matching the paper's
equations (Eq. 1 integrates the discharge current).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.battery.aging import AgingModel, OperatingConditions
from repro.battery.charger import Charger, ChargerParams
from repro.battery.params import BatteryParams
from repro.battery.peukert import peukert_factor
from repro.battery.thermal import ThermalModel
from repro.battery.voltage import VoltageModel
from repro.errors import BatteryCutoffError, ConfigurationError
from repro.units import SECONDS_PER_HOUR, clamp


@dataclass(frozen=True)
class BatteryState:
    """Sensor-style snapshot of a battery (the paper's Table 2 variables
    plus derived health quantities)."""

    name: str
    time_s: float
    soc: float
    current_a: float
    terminal_voltage_v: float
    temperature_c: float
    capacity_fade: float
    effective_capacity_ah: float
    hours_since_full_charge: float
    is_end_of_life: bool


@dataclass(frozen=True)
class StepResult:
    """Outcome of one charge/discharge/rest step.

    Attributes
    ----------
    delivered_power_w:
        Power actually sourced (discharge) or absorbed (charge), >= 0.
    current_a:
        Signed terminal current (positive = discharge).
    terminal_voltage_v:
        Voltage under that current.
    curtailed:
        True when the battery could not meet the full request (empty, at
        cut-off, or acceptance-limited).
    gassing_current_a:
        Charge current lost to gassing this step (charge only).
    """

    delivered_power_w: float
    current_a: float
    terminal_voltage_v: float
    curtailed: bool
    gassing_current_a: float = 0.0


class BatteryUnit:
    """One lead-acid block with full electrical, thermal, and aging state."""

    def __init__(
        self,
        params: Optional[BatteryParams] = None,
        name: str = "battery",
        initial_soc: float = 1.0,
        ambient_c: float = 25.0,
        capacity_factor: float = 1.0,
        charger_params: Optional[ChargerParams] = None,
        aging_model: Optional[AgingModel] = None,
    ):
        """
        Parameters
        ----------
        capacity_factor:
            Manufacturing variation: this unit's true initial capacity as a
            multiple of nominal (e.g. 0.98 for a slightly weak block). The
            paper names manufacturing deviation as one of the two sources
            of aging variation.
        """
        self.params = params or BatteryParams()
        if not 0.0 <= initial_soc <= 1.0:
            raise ConfigurationError("initial_soc must be in [0, 1]")
        if capacity_factor <= 0.0:
            raise ConfigurationError("capacity_factor must be positive")
        self.name = name
        self.capacity_factor = capacity_factor
        self.voltage_model = VoltageModel(self.params)
        self.thermal = ThermalModel(self.params, ambient_c=ambient_c)
        self.charger = Charger(self.params, charger_params)
        self.aging = aging_model or AgingModel(
            lifetime_full_cycles=self.params.lifetime_full_cycles
        )
        self._soc = initial_soc
        self._time_s = 0.0
        self._last_current = 0.0
        self._hours_since_full = 0.0 if initial_soc >= 0.99 else 48.0
        # Terminal energy accounting for round-trip efficiency (Fig. 5).
        self.energy_in_wh = 0.0
        self.energy_out_wh = 0.0

    # ------------------------------------------------------------------
    # Read-only state
    # ------------------------------------------------------------------
    @property
    def soc(self) -> float:
        """State of charge in [0, 1]."""
        return self._soc

    @property
    def time_s(self) -> float:
        """Total elapsed operating time in seconds."""
        return self._time_s

    @property
    def capacity_fade(self) -> float:
        """Fraction of capacity lost to aging."""
        return self.aging.capacity_fade

    @property
    def effective_capacity_ah(self) -> float:
        """Presently usable capacity in Ah (manufacturing x aging)."""
        return self.params.capacity_ah * self.capacity_factor * (1.0 - self.capacity_fade)

    @property
    def stored_ah(self) -> float:
        """Charge currently stored, in Ah."""
        return self._soc * self.effective_capacity_ah

    @property
    def depth_of_discharge(self) -> float:
        """1 - SoC."""
        return 1.0 - self._soc

    @property
    def is_end_of_life(self) -> bool:
        """True once aging has crossed the 80 %-capacity floor."""
        return self.aging.is_end_of_life

    @property
    def hours_since_full_charge(self) -> float:
        """Hours elapsed since the battery last reached full charge."""
        return self._hours_since_full

    @property
    def last_current_a(self) -> float:
        """Signed terminal current of the most recent step (A, positive =
        discharge), 0.0 before any step. The engine and recorder read
        this rather than reaching into private coulomb-counter state."""
        return self._last_current

    def terminal_voltage(self, current: float = 0.0) -> float:
        """Terminal voltage at a hypothetical signed current (A)."""
        return self.voltage_model.terminal_voltage(
            self._soc, current, self.capacity_fade, self.aging.resistance_growth
        )

    def open_circuit_voltage(self) -> float:
        """Rested voltage at the present SoC and age."""
        return self.voltage_model.ocv(self._soc, self.capacity_fade)

    def round_trip_efficiency(self) -> float:
        """Lifetime terminal-energy efficiency (out / in), or 1.0 if the
        battery has never been charged."""
        if self.energy_in_wh <= 0.0:
            return 1.0
        return min(1.0, self.energy_out_wh / self.energy_in_wh)

    def sample(self) -> BatteryState:
        """A Table-2 sensor reading for the BAAT power table."""
        return BatteryState(
            name=self.name,
            time_s=self._time_s,
            soc=self._soc,
            current_a=self._last_current,
            terminal_voltage_v=self.terminal_voltage(self._last_current),
            temperature_c=self.thermal.temperature_c,
            capacity_fade=self.capacity_fade,
            effective_capacity_ah=self.effective_capacity_ah,
            hours_since_full_charge=self._hours_since_full,
            is_end_of_life=self.is_end_of_life,
        )

    # ------------------------------------------------------------------
    # Power API
    # ------------------------------------------------------------------
    def max_discharge_power(self) -> float:
        """Largest power (W) sustainably sourceable right now.

        The binding constraints are the cut-off SoC, the cut-off terminal
        voltage, and — indirectly — aging (which lowers both OCV and the
        current ceiling). Used by policies to check the paper's "2 minutes
        of reserve" availability rule.
        """
        if self._soc <= self.params.cutoff_soc:
            return 0.0
        i_max = self.voltage_model.max_discharge_current(
            self._soc, self.capacity_fade, self.aging.resistance_growth
        )
        if i_max <= 0.0:
            return 0.0
        v = self.voltage_model.terminal_voltage(
            self._soc, i_max, self.capacity_fade, self.aging.resistance_growth
        )
        return max(0.0, i_max * v)

    def discharge(self, power_w: float, dt: float, strict: bool = False) -> StepResult:
        """Source up to ``power_w`` for ``dt`` seconds.

        Solves the implicit ``P = V(I) * I`` relation with two fixed-point
        refinements (ample for the < 10 % sag regime), then applies the
        SoC, voltage, and charge-availability limits. With ``strict=True``
        an unmeetable request raises :class:`BatteryCutoffError` instead of
        curtailing.
        """
        if power_w < 0:
            raise ConfigurationError("discharge power must be >= 0")
        if dt <= 0:
            raise ConfigurationError("dt must be positive")
        if power_w == 0.0:
            return self.rest(dt)

        fade = self.capacity_fade
        growth = self.aging.resistance_growth
        curtailed = False

        if self._soc <= self.params.cutoff_soc:
            if strict:
                raise BatteryCutoffError(
                    f"{self.name}: at cut-off SoC {self._soc:.2f}, cannot discharge"
                )
            self._advance_rest(dt)
            return StepResult(0.0, 0.0, self.terminal_voltage(0.0), True)

        # Fixed-point solve for current at the requested power.
        v = self.voltage_model.terminal_voltage(self._soc, 0.0, fade, growth)
        current = power_w / max(v, 1e-6)
        for _ in range(2):
            v = self.voltage_model.terminal_voltage(self._soc, current, fade, growth)
            if v <= 0:
                break
            current = power_w / v

        # Voltage cut-off limit.
        i_max = self.voltage_model.max_discharge_current(self._soc, fade, growth)
        if current > i_max:
            if strict:
                raise BatteryCutoffError(
                    f"{self.name}: request {power_w:.0f} W exceeds the "
                    f"cut-off-voltage current limit {i_max:.1f} A"
                )
            current = i_max
            curtailed = True
        if current <= 0.0:
            self._advance_rest(dt)
            return StepResult(0.0, 0.0, self.terminal_voltage(0.0), True)

        # Charge-availability limit: cannot drain below the cut-off SoC.
        cap = self.effective_capacity_ah
        pf = peukert_factor(current, self.params)
        drain_ah = current * pf * dt / SECONDS_PER_HOUR
        avail_ah = max(0.0, (self._soc - self.params.cutoff_soc) * cap)
        if drain_ah > avail_ah:
            scale = avail_ah / drain_ah if drain_ah > 0 else 0.0
            current *= scale
            drain_ah = avail_ah
            curtailed = True
            pf = peukert_factor(current, self.params)
            drain_ah = current * pf * dt / SECONDS_PER_HOUR

        v = self.voltage_model.terminal_voltage(self._soc, current, fade, growth)
        delivered_w = current * max(v, 0.0)

        cond = self._conditions(current=current)
        self._apply_step(cond, dt)
        self._soc = clamp(self._soc - drain_ah / max(cap, 1e-9), 0.0, 1.0)
        self.energy_out_wh += delivered_w * dt / SECONDS_PER_HOUR
        self._last_current = current
        return StepResult(delivered_w, current, v, curtailed)

    def charge(self, power_w: float, dt: float) -> StepResult:
        """Absorb up to ``power_w`` for ``dt`` seconds.

        Acceptance is limited by the CC-CV charger (bulk limit and taper);
        part of the accepted current is lost to gassing per the coulombic
        efficiency (worse with age), which feeds the water-loss mechanism.
        Returns the power drawn *from the source* (terminal power).
        """
        if power_w < 0:
            raise ConfigurationError("charge power must be >= 0")
        if dt <= 0:
            raise ConfigurationError("dt must be positive")
        if power_w == 0.0 or self._soc >= 1.0:
            result = self.rest(dt)
            # A full battery offered power is float-charging, not resting:
            if power_w > 0.0 and self._soc >= 1.0:
                self._register_float(dt)
            return result

        fade = self.capacity_fade
        growth = self.aging.resistance_growth
        v = self.voltage_model.terminal_voltage(self._soc, -1.0, fade, growth)
        i_request = power_w / max(v, 1e-6)
        i_accept = self.charger.acceptance_current(self._soc, fade)
        current = min(i_request, i_accept)
        curtailed = current < i_request - 1e-12

        eta = self.charger.coulombic_efficiency(self._soc) * (
            self.aging.coulombic_efficiency_factor
        )
        stored_current = current * eta
        gassing_current = current - stored_current

        cap = self.effective_capacity_ah
        stored_ah = stored_current * dt / SECONDS_PER_HOUR
        room_ah = max(0.0, (1.0 - self._soc) * cap)
        if stored_ah > room_ah:
            scale = room_ah / stored_ah if stored_ah > 0 else 0.0
            current *= scale
            stored_current *= scale
            gassing_current *= scale
            stored_ah = room_ah
            curtailed = True

        v = self.voltage_model.terminal_voltage(self._soc, -current, fade, growth)
        absorbed_w = current * v
        if absorbed_w > power_w > 0.0:
            # The fixed-point voltage estimate can overshoot slightly;
            # never draw more from the source than was offered.
            scale = power_w / absorbed_w
            current *= scale
            stored_current *= scale
            gassing_current *= scale
            stored_ah *= scale
            absorbed_w = power_w

        is_float = self._soc >= 0.99 and current <= self.charger.float_current * 2.0
        cond = self._conditions(
            current=-current, gassing_current=gassing_current, is_float=is_float
        )
        self._apply_step(cond, dt)
        reached_full = self._soc < 0.99
        self._soc = clamp(self._soc + stored_ah / max(cap, 1e-9), 0.0, 1.0)
        if self._soc >= 0.99:
            if reached_full:
                # Completing a full charge stirs the electrolyte and
                # undoes part of any accumulated stratification.
                self.aging.recover_stratification()
            self._hours_since_full = 0.0
        self.energy_in_wh += absorbed_w * dt / SECONDS_PER_HOUR
        self._last_current = -current
        return StepResult(absorbed_w, -current, v, curtailed, gassing_current)

    def rest(self, dt: float) -> StepResult:
        """Idle for ``dt`` seconds; calendar aging still accrues."""
        if dt <= 0:
            raise ConfigurationError("dt must be positive")
        self._advance_rest(dt)
        self._last_current = 0.0
        return StepResult(0.0, 0.0, self.terminal_voltage(0.0), False)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _conditions(
        self,
        current: float,
        gassing_current: float = 0.0,
        is_float: bool = False,
    ) -> OperatingConditions:
        return OperatingConditions(
            soc=self._soc,
            current=current,
            temperature_c=self.thermal.temperature_c,
            reference_current=self.params.reference_current,
            capacity_ah=self.params.capacity_ah * self.capacity_factor,
            is_float_charging=is_float,
            gassing_current=gassing_current,
            hours_since_full_charge=self._hours_since_full,
        )

    def _apply_step(self, cond: OperatingConditions, dt: float) -> None:
        resistance = self.voltage_model.resistance(self.aging.resistance_growth)
        self.thermal.step(abs(cond.current), resistance, dt)
        self.aging.step(cond, dt)
        self._time_s += dt
        if self._soc < 0.99:
            self._hours_since_full += dt / SECONDS_PER_HOUR

    def _advance_rest(self, dt: float) -> None:
        self._apply_step(self._conditions(current=0.0), dt)
        # Self-discharge: stored charge leaks at rest (the reason float
        # charging exists). Exponential decay of the stored fraction.
        rate = self.params.self_discharge_per_day
        if rate > 0.0 and self._soc > 0.0:
            self._soc *= math.exp(-rate * dt / 86400.0)

    def _register_float(self, dt: float) -> None:
        """Account float-stage aging for a full battery held on charge."""
        cond = self._conditions(
            current=-self.charger.float_current,
            gassing_current=self.charger.float_current,
            is_float=True,
        )
        # Float adds aging but no stored charge or meaningful energy flow;
        # time was already advanced by the preceding rest() call, so only
        # the aging integrals move here.
        self.aging.step(cond, dt)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BatteryUnit({self.name!r}, soc={self._soc:.2f}, "
            f"fade={self.capacity_fade:.3f}, t={self._time_s:.0f}s)"
        )
