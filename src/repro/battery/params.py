"""Datasheet-style battery parameters.

Defaults describe the paper's hardware: new sealed (VRLA) lead-acid blocks,
12 V nominal, 35 Ah capacity at the 20-hour rate, six 2 V cells in series.
Everything the rest of the simulator needs — voltage window, internal
resistance, Peukert exponent, thermal constants, lifetime throughput — is
collected here so a single object fully specifies a battery model.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BatteryParams:
    """Immutable parameter set for one lead-acid battery block.

    Attributes
    ----------
    nominal_voltage:
        Nameplate voltage (V). 12 V for the paper's blocks.
    capacity_ah:
        Nominal capacity (Ah) at the reference (20-hour) discharge rate.
    cells:
        Number of 2 V cells in series; used for per-cell voltage thresholds.
    ocv_full / ocv_empty:
        Open-circuit (rested) voltage at 100 % / 0 % SoC for a *new*
        battery. The linear OCV-SoC interpolation between these is a
        standard lead-acid approximation.
    internal_resistance_ohm:
        Fresh internal resistance. Grows with age (see
        :class:`~repro.battery.aging.model.AgingModel`).
    cutoff_voltage:
        Terminal voltage below which the battery is disconnected to protect
        it (the paper's "cut-out line"; 1.75 V/cell -> 10.5 V).
    cutoff_soc:
        SoC floor enforced by the battery management layer. Discharging is
        refused below it regardless of voltage.
    peukert_exponent:
        Rate-capacity (Peukert) exponent; 1.10-1.25 is typical for VRLA.
    reference_hours:
        Discharge duration defining the nominal rate (20 h convention).
    coulombic_efficiency:
        Charge-acceptance efficiency away from full charge.
    gassing_soc:
        SoC above which charging increasingly goes into gassing (water
        electrolysis) rather than stored charge.
    thermal_capacity_j_per_k / thermal_resistance_k_per_w:
        Lumped thermal model constants (battery mass ~11 kg).
    lifetime_full_cycles:
        Number of *unweighted* full (100 % DoD) cycles the block can deliver
        before reaching end of life under benign conditions; anchors the
        constant-total-Ah-throughput lifetime model (paper refs [31, 32]).
    eol_capacity_fraction:
        End-of-life threshold as a fraction of nominal capacity (80 %,
        paper section II-B).
    price_usd:
        Purchase price used by :mod:`repro.cost`. ~2 USD/Ah retail for a
        12 V VRLA block circa 2015.
    manufacturing_capacity_sigma:
        Relative standard deviation of initial capacity across units, the
        manufacturing variation behind the paper's "aging variation".
    """

    nominal_voltage: float = 12.0
    capacity_ah: float = 35.0
    cells: int = 6
    ocv_full: float = 12.90
    ocv_empty: float = 11.80
    internal_resistance_ohm: float = 0.015
    cutoff_voltage: float = 10.5
    cutoff_soc: float = 0.12
    peukert_exponent: float = 1.15
    reference_hours: float = 20.0
    coulombic_efficiency: float = 0.95
    gassing_soc: float = 0.90
    thermal_capacity_j_per_k: float = 20_000.0
    thermal_resistance_k_per_w: float = 0.8
    lifetime_full_cycles: float = 380.0
    eol_capacity_fraction: float = 0.80
    price_usd: float = 70.0
    manufacturing_capacity_sigma: float = 0.02
    #: Self-discharge at rest, as a fraction of stored charge per day.
    #: ~3 %/month is typical for VRLA at room temperature; it is why a
    #: float stage exists at all.
    self_discharge_per_day: float = 0.001

    def __post_init__(self) -> None:
        if self.capacity_ah <= 0:
            raise ConfigurationError("capacity_ah must be positive")
        if self.cells <= 0:
            raise ConfigurationError("cells must be positive")
        if not self.ocv_empty < self.ocv_full:
            raise ConfigurationError("ocv_empty must be below ocv_full")
        if self.internal_resistance_ohm < 0:
            raise ConfigurationError("internal_resistance_ohm must be >= 0")
        if not 0.0 <= self.cutoff_soc < 1.0:
            raise ConfigurationError("cutoff_soc must be in [0, 1)")
        if self.peukert_exponent < 1.0:
            raise ConfigurationError("peukert_exponent must be >= 1")
        if not 0.0 < self.coulombic_efficiency <= 1.0:
            raise ConfigurationError("coulombic_efficiency must be in (0, 1]")
        if not 0.0 < self.eol_capacity_fraction < 1.0:
            raise ConfigurationError("eol_capacity_fraction must be in (0, 1)")
        if not 0.0 < self.gassing_soc <= 1.0:
            raise ConfigurationError("gassing_soc must be in (0, 1]")

    @property
    def reference_current(self) -> float:
        """Nominal (20-hour-rate) discharge current in amperes."""
        return self.capacity_ah / self.reference_hours

    @property
    def nominal_energy_wh(self) -> float:
        """Nameplate stored energy in watt-hours."""
        return self.nominal_voltage * self.capacity_ah

    @property
    def lifetime_ah_throughput(self) -> float:
        """Total *weighted* dischargeable charge over the battery's life (Ah).

        The constant-charge-throughput lifetime model: the aggregate electric
        charge cyclable from a lead-acid battery before wear-out is roughly
        constant (paper refs [31, 32]). Used as ``CAP_nom`` in Eq. 1.
        """
        return self.lifetime_full_cycles * self.capacity_ah

    def with_capacity(self, capacity_ah: float) -> "BatteryParams":
        """Return a copy of these parameters with a different capacity.

        Resistance is scaled inversely with capacity (bigger blocks have
        proportionally lower resistance), keeping the C-rate behaviour
        identical — used by the Fig. 15 server-to-battery-ratio sweep.
        """
        scale = self.capacity_ah / capacity_ah
        return replace(
            self,
            capacity_ah=capacity_ah,
            internal_resistance_ohm=self.internal_resistance_ohm * scale,
            thermal_capacity_j_per_k=self.thermal_capacity_j_per_k / scale,
            price_usd=self.price_usd / scale,
        )


#: The paper's battery array: twelve 12 V 35 Ah sealed lead-acid blocks.
PAPER_BATTERY = BatteryParams()
