"""Peukert rate-capacity effect.

Lead-acid capacity depends strongly on discharge rate: the charge
deliverable at high current is smaller than the nameplate (20-hour-rate)
capacity because acid cannot diffuse to the plates fast enough. Peukert's
empirical law captures this:

    t = H * (C / (I * H)) ** k

where ``H`` is the reference discharge duration, ``C`` the nominal
capacity, ``I`` the discharge current and ``k`` the Peukert exponent
(1.10-1.25 for VRLA). We express the effect as a multiplicative *drain
factor* on coulomb counting: discharging at current ``I`` removes
``I * peukert_factor(I) * dt`` ampere-seconds of *effective* charge, so
that integrating a constant-current discharge empties the battery in
exactly the Peukert time. The factor is 1 at or below the reference
current — gentler-than-nominal rates are not credited with extra capacity,
a common conservative convention in system simulators.
"""

from __future__ import annotations

import numpy as np

from repro.battery.params import BatteryParams
from repro.errors import ConfigurationError


def peukert_factor(current: float, params: BatteryParams) -> float:
    """Effective-drain multiplier for a discharge at ``current`` amperes.

    Returns 1.0 for currents at or below the reference (20-hour) rate and
    ``(I / I_ref) ** (k - 1)`` above it.
    """
    if current < 0:
        raise ConfigurationError("peukert_factor expects a discharge current >= 0")
    i_ref = params.reference_current
    if current <= i_ref or i_ref <= 0:
        return 1.0
    return (current / i_ref) ** (params.peukert_exponent - 1.0)


def peukert_factor_array(current, i_ref, k_minus_1):
    """Vector :func:`peukert_factor` over numpy arrays.

    ``**`` goes through per-element Python-float pow (not numpy's array
    kernel) so each element is bit-identical to the scalar function —
    the contract the fleet fast path's equivalence tests rely on.
    Currents at or below the (positive) reference rate map to 1.0.
    """
    out = np.ones(len(current))
    hot = np.nonzero((current > i_ref) & (i_ref > 0.0))[0]
    if len(hot):
        out[hot] = [
            (c / ir) ** km1
            for c, ir, km1 in zip(
                current[hot].tolist(),
                i_ref[hot].tolist(),
                k_minus_1[hot].tolist(),
            )
        ]
    return out


def peukert_capacity(current: float, params: BatteryParams) -> float:
    """Deliverable capacity (Ah) when discharging steadily at ``current``.

    Equal to nominal capacity divided by the drain factor; e.g. with
    ``k = 1.15`` a 35 Ah block discharged at 10x its reference rate only
    delivers ~25 Ah.
    """
    factor = peukert_factor(current, params)
    return params.capacity_ah / factor
