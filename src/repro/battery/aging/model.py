"""Combined aging model: damage accumulation and derived degradation.

:class:`AgingModel` owns the five mechanisms and an :class:`AgingState`
holding cumulative per-mechanism damage. Each battery step feeds one
:class:`~repro.battery.aging.conditions.OperatingConditions` snapshot in;
the model returns the incremental fade and updates the state.

Two modelling choices beyond the raw mechanisms:

- **Synergy/feedback** — an aged battery ages faster (higher resistance
  means more self-heating; degraded plates shed more easily). Mechanism
  rates are multiplied by ``1 + feedback * fade``, which produces the
  accelerating degradation visible in the paper's Fig. 3 (voltage droop
  rate growing from 0.1 to 0.3 V/month).
- **Derived quantities** — capacity fade (sum of damage), resistance growth
  (resistive share of each mechanism, scaled), and coulombic-efficiency
  degradation (gassing worsens with age), which together reproduce the
  Fig. 3/4/5 measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.battery.aging.conditions import OperatingConditions
from repro.battery.aging.mechanisms import (
    EOL_FADE,
    AgingMechanism,
    default_mechanisms,
)
from repro.units import clamp

#: Multiplier translating resistive damage into fractional resistance growth.
RESISTANCE_GROWTH_GAIN = 3.0

#: Strength of the aging positive feedback (rate multiplier per unit fade).
FEEDBACK_GAIN = 1.5

#: Coulombic efficiency multiplier lost per unit fade (aged plates gas more).
COULOMBIC_DEGRADATION = 0.5


@dataclass
class AgingState:
    """Cumulative aging damage of one battery.

    ``damage`` maps mechanism name to its accumulated capacity-fade
    fraction. All derived properties are pure functions of this record, so
    the state is trivially serialisable and comparable.
    """

    damage: Dict[str, float] = field(default_factory=dict)
    #: Raw (unweighted) discharged charge, in Ah — numerator of Eq. 1.
    discharged_ah: float = 0.0
    #: Raw charged charge, in Ah (terminal, incl. gassing losses).
    charged_ah: float = 0.0

    def total_fade(self) -> float:
        """Total capacity-fade fraction (0 = new)."""
        return sum(self.damage.values())

    def fade_of(self, mechanism: str) -> float:
        """Fade contributed by one named mechanism."""
        return self.damage.get(mechanism, 0.0)

    def copy(self) -> "AgingState":
        """An independent snapshot of this state."""
        return AgingState(
            damage=dict(self.damage),
            discharged_ah=self.discharged_ah,
            charged_ah=self.charged_ah,
        )


class AgingModel:
    """Accumulates aging damage and derives degradation quantities."""

    def __init__(
        self,
        mechanisms: Optional[List[AgingMechanism]] = None,
        lifetime_full_cycles: float = 380.0,
        eol_fade: float = EOL_FADE,
        feedback_gain: float = FEEDBACK_GAIN,
    ):
        self.mechanisms = (
            mechanisms
            if mechanisms is not None
            else default_mechanisms(lifetime_full_cycles)
        )
        self.eol_fade = eol_fade
        self.feedback_gain = feedback_gain
        # Pre-seed every mechanism's damage entry so dict iteration (and
        # therefore the float summation order of total_fade/resistance
        # growth) is the fixed mechanism order rather than first-fire
        # order, which varied with each battery's history.
        self.state = AgingState(damage={m.name: 0.0 for m in self.mechanisms})
        self._resistance_shares = {m.name: m.resistance_share for m in self.mechanisms}
        #: Stratification accumulated since the last full charge — the
        #: portion a completing charge can still stir away.
        self._recoverable_stratification = 0.0

    def step(self, cond: OperatingConditions, dt: float) -> float:
        """Apply ``dt`` seconds of the given conditions; return added fade."""
        if dt < 0:
            raise ValueError("dt must be non-negative")
        feedback = 1.0 + self.feedback_gain * self.state.total_fade()
        added = 0.0
        for mech in self.mechanisms:
            d = mech.damage(cond, dt) * feedback
            if d < 0:
                raise ValueError(f"mechanism {mech.name} produced negative damage")
            if d:
                self.state.damage[mech.name] = self.state.damage.get(mech.name, 0.0) + d
                added += d
                if mech.name == "stratification":
                    self._recoverable_stratification += d
        if cond.is_discharging:
            self.state.discharged_ah += cond.current * dt / 3600.0
        elif cond.is_charging:
            self.state.charged_ah += -cond.current * dt / 3600.0
        return added

    # ------------------------------------------------------------------
    # Derived degradation quantities
    # ------------------------------------------------------------------
    @property
    def capacity_fade(self) -> float:
        """Fraction of nominal capacity permanently lost (capped at 95 %)."""
        return clamp(self.state.total_fade(), 0.0, 0.95)

    @property
    def resistance_growth(self) -> float:
        """Fractional internal-resistance increase due to aging."""
        resistive = sum(
            d * self._resistance_shares.get(name, 0.0)
            for name, d in self.state.damage.items()
        )
        return RESISTANCE_GROWTH_GAIN * resistive

    @property
    def coulombic_efficiency_factor(self) -> float:
        """Multiplier (<= 1) on the fresh coulombic efficiency."""
        return clamp(1.0 - COULOMBIC_DEGRADATION * self.capacity_fade, 0.3, 1.0)

    @property
    def is_end_of_life(self) -> bool:
        """True once fade reaches the 80 %-of-nominal-capacity floor."""
        return self.state.total_fade() >= self.eol_fade

    @property
    def health(self) -> float:
        """State of health in [0, 1]: 1 = new, 0 = at end-of-life fade."""
        return clamp(1.0 - self.state.total_fade() / self.eol_fade, 0.0, 1.0)

    def recover_stratification(self, fraction: float = 0.25) -> float:
        """Partially reverse stratification damage after a full charge.

        The gassing at the end of a full charge stirs the electrolyte,
        undoing part of the density gradient — the physical reason
        periodic full (equalisation) charges are prescribed for lead-acid
        banks, and why the paper's stratification mechanism only bites
        batteries that are "rarely fully recharged". Sulphation that
        stratification already caused is *not* recovered (it is
        irreversible); only the stratification term itself shrinks.

        Returns the amount of fade recovered.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        current = self.state.damage.get("stratification", 0.0)
        recovered = min(current, self._recoverable_stratification * fraction)
        if recovered > 0.0:
            self.state.damage["stratification"] = current - recovered
        # Whatever was not stirred away this time has consolidated into
        # sulphated plate area — permanently unrecoverable.
        self._recoverable_stratification = 0.0
        return recovered

    def damage_breakdown(self) -> Dict[str, float]:
        """Per-mechanism share of total damage (sums to 1; empty if new)."""
        total = self.state.total_fade()
        if total <= 0.0:
            return {}
        return {name: d / total for name, d in self.state.damage.items()}
