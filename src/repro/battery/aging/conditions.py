"""Operating-condition snapshot consumed by the aging mechanisms.

The paper's premise (section III) is that "battery operating conditions
(different voltage, current and temperature) largely determine the rate of
aging processes". :class:`OperatingConditions` is the per-timestep bundle
of exactly those observables, produced by :class:`~repro.battery.unit.
BatteryUnit` during each step and consumed by every
:class:`~repro.battery.aging.mechanisms.AgingMechanism`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OperatingConditions:
    """One timestep's battery operating conditions.

    Attributes
    ----------
    soc:
        State of charge in ``[0, 1]`` at the start of the step.
    current:
        Signed terminal current (A): positive = discharging,
        negative = charging, zero = rest.
    temperature_c:
        Block temperature in deg C.
    reference_current:
        The battery's nominal (20-hour-rate) current, for normalising
        rate stress.
    capacity_ah:
        Nominal capacity, for normalising throughput.
    is_float_charging:
        True when the charger is in the float/trickle stage (full battery
        held at float voltage) — the corrosion/water-loss driver.
    gassing_current:
        Portion of the charge current (A, >= 0) lost to gassing rather
        than stored — the water-loss driver.
    hours_since_full_charge:
        Time since the battery last reached (effectively) full charge.
        Long spans of partial cycling drive stratification and sulphation.
    """

    soc: float
    current: float
    temperature_c: float
    reference_current: float
    capacity_ah: float
    is_float_charging: bool = False
    gassing_current: float = 0.0
    hours_since_full_charge: float = 0.0

    @property
    def is_discharging(self) -> bool:
        """True when current flows out of the battery."""
        return self.current > 0.0

    @property
    def is_charging(self) -> bool:
        """True when current flows into the battery."""
        return self.current < 0.0

    @property
    def discharge_rate_normalized(self) -> float:
        """Discharge current relative to the reference (20-h) rate.

        Zero while charging or at rest.
        """
        if self.current <= 0.0 or self.reference_current <= 0.0:
            return 0.0
        return self.current / self.reference_current
