"""Battery aging: five mechanisms plus the combined damage model.

The paper (section II-B, Fig. 6) attributes lead-acid aging to five
synergistic mechanisms, each driven by identifiable operating conditions:

====================================  ======================================
Mechanism                             Drivers (Fig. 6)
====================================  ======================================
Grid corrosion                        float charging, polarisation, temp
Active-mass degradation/shedding      Ah throughput, low SoC, temp changes
Irreversible sulphation               time at low SoC, temperature
Loss of water (drying out)            over-charging/gassing, temperature
Electrolyte stratification            partial cycling w/o full recharge,
                                      deep low-current discharge
====================================  ======================================

:class:`AgingModel` accumulates per-mechanism damage from a stream of
:class:`OperatingConditions` snapshots and exposes the derived quantities
the rest of the system observes: capacity fade, internal-resistance growth,
and coulombic-efficiency degradation.
"""

from repro.battery.aging.conditions import OperatingConditions
from repro.battery.aging.mechanisms import (
    AgingMechanism,
    GridCorrosion,
    ActiveMassDegradation,
    Sulphation,
    WaterLoss,
    Stratification,
    default_mechanisms,
    soc_stress_weight,
    rate_stress_weight,
)
from repro.battery.aging.model import AgingModel, AgingState

__all__ = [
    "OperatingConditions",
    "AgingMechanism",
    "GridCorrosion",
    "ActiveMassDegradation",
    "Sulphation",
    "WaterLoss",
    "Stratification",
    "default_mechanisms",
    "soc_stress_weight",
    "rate_stress_weight",
    "AgingModel",
    "AgingState",
]
