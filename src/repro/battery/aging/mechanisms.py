"""The five lead-acid aging mechanisms.

Each mechanism converts one timestep of :class:`~repro.battery.aging.
conditions.OperatingConditions` into incremental *damage*, expressed as a
fraction of nominal capacity permanently lost. Damage fractions from all
mechanisms add up in :class:`~repro.battery.aging.model.AgingModel`; the
battery reaches end of life when total fade hits 20 % (the paper's 80 %-of-
initial-capacity criterion).

Calibration anchors (documented per mechanism below) are chosen so that:

- cycling-dominated use reaches end of life after
  ``BatteryParams.lifetime_full_cycles`` benign full-cycle equivalents
  (constant-Ah-throughput model, paper refs [31, 32]);
- a battery abandoned at 0 % SoC sulphates to death in ~2 months;
- pure float service lasts ~7 years (grid corrosion calendar life);
- the paper's six-month aggressive-cycling measurement (~14 % capacity
  fade, Fig. 4) is reproduced by the combined model under a comparable
  duty cycle (validated in tests and the fig04 experiment).
"""

from __future__ import annotations

import abc
from typing import List

from repro.battery.aging.conditions import OperatingConditions
from repro.battery.thermal import arrhenius_factor
from repro.units import SECONDS_PER_HOUR, clamp

#: Fade fraction at which the battery is end-of-life (80 % capacity floor).
EOL_FADE = 0.20


def soc_stress_weight(soc: float) -> float:
    """Damage weight of discharging at a given SoC.

    Mirrors the paper's partial-cycling insight (Eq. 4): Ah drawn at low
    SoC is more damaging than Ah drawn near full charge. Uses the same four
    SoC regions as Eq. 3 with super-linear weights — region A (100-80 %)
    is the benign baseline, region D (below 40 %) is 3x as damaging.
    """
    soc = clamp(soc, 0.0, 1.0)
    if soc >= 0.80:
        return 1.0
    if soc >= 0.60:
        return 1.5
    if soc >= 0.40:
        return 2.1
    return 3.0


def rate_stress_weight(rate_normalized: float) -> float:
    """Damage weight of the discharge rate relative to the 20-h rate.

    Rates at or below nominal are benign (weight 1); the weight grows with
    the fourth root of the rate multiple and saturates at 2x, reflecting
    that rate principally matters in *combination* with low SoC and via
    self-heating (which the thermal model captures separately).
    """
    if rate_normalized <= 1.0:
        return 1.0
    return min(2.0, rate_normalized**0.25)


class AgingMechanism(abc.ABC):
    """Interface for one aging mechanism.

    Subclasses implement :meth:`damage`, returning the incremental capacity
    fade (fraction of nominal capacity) caused by ``dt`` seconds spent in
    the given operating conditions. Mechanisms are stateless; any history
    dependence (e.g. time since full recharge) arrives via the conditions
    snapshot.
    """

    #: Stable key used in damage breakdowns and logs.
    name: str = "mechanism"

    #: Fraction of this mechanism's damage that manifests as internal-
    #: resistance growth (vs pure capacity loss). Corrosion and sulphation
    #: are the resistive mechanisms.
    resistance_share: float = 0.0

    @abc.abstractmethod
    def damage(self, cond: OperatingConditions, dt: float) -> float:
        """Incremental capacity-fade fraction for ``dt`` seconds."""


class GridCorrosion(AgingMechanism):
    """Positive-grid corrosion — calendar aging.

    Proceeds whenever the battery exists, accelerated by temperature
    (Arrhenius), by float charging (sustained positive-plate polarisation),
    and mildly by high SoC (higher acid density). Calibrated so that pure
    float service at 25 deg C reaches end of life in about seven years,
    the middle of the paper's quoted 3-10-year lead-acid service band.
    """

    name = "corrosion"
    resistance_share = 0.7

    #: Base fade per second at 20 deg C, mid SoC, no float. At 25 deg C
    #: with full-time float the combined multipliers (~3.3x) land a pure
    #: float-service block at ~5 years — inside the 3-10-year band the
    #: paper quotes for lead-acid.
    base_rate = EOL_FADE / (16.0 * 365.0 * 86400.0)
    float_multiplier = 0.8
    high_soc_multiplier = 0.3

    def damage(self, cond: OperatingConditions, dt: float) -> float:
        rate = self.base_rate * arrhenius_factor(cond.temperature_c)
        if cond.is_float_charging:
            rate *= 1.0 + self.float_multiplier
        if cond.soc > 0.9:
            rate *= 1.0 + self.high_soc_multiplier * (cond.soc - 0.9) / 0.1
        return rate * dt


class ActiveMassDegradation(AgingMechanism):
    """Active-mass degradation and shedding — cycling wear.

    Proportional to discharged Ah throughput, weighted by SoC region and
    discharge rate and accelerated by temperature. Calibration: with all
    weights at 1 the battery delivers exactly
    ``BatteryParams.lifetime_full_cycles`` full-cycle equivalents of charge
    before this mechanism alone reaches end of life — the constant-Ah-
    throughput lifetime model.
    """

    name = "active_mass"
    resistance_share = 0.15

    def __init__(self, lifetime_full_cycles: float = 380.0):
        self.lifetime_full_cycles = lifetime_full_cycles

    def damage(self, cond: OperatingConditions, dt: float) -> float:
        if not cond.is_discharging or cond.capacity_ah <= 0:
            return 0.0
        ah = cond.current * dt / SECONDS_PER_HOUR
        nat_increment = ah / cond.capacity_ah  # fraction of one full cycle
        weight = (
            soc_stress_weight(cond.soc)
            * rate_stress_weight(cond.discharge_rate_normalized)
            * arrhenius_factor(cond.temperature_c) ** 0.5
        )
        per_cycle_fade = EOL_FADE / self.lifetime_full_cycles
        return per_cycle_fade * nat_increment * weight


class Sulphation(AgingMechanism):
    """Irreversible lead-sulphate formation — the low-SoC killer.

    Accrues while the battery sits below 40 % SoC without timely recharge,
    growing with depth below the threshold, with time since the last full
    charge (crystal growth is progressive), and with temperature.
    Calibration: a battery abandoned fully discharged at 25 deg C is dead
    in roughly two months.
    """

    name = "sulphation"
    resistance_share = 0.6

    low_soc_threshold = 0.40
    #: Fade per second at SoC = 0, 20 deg C, crystals fully developed.
    base_rate = EOL_FADE / (55.0 * 86400.0)

    def damage(self, cond: OperatingConditions, dt: float) -> float:
        if cond.soc >= self.low_soc_threshold:
            return 0.0
        depth = (self.low_soc_threshold - cond.soc) / self.low_soc_threshold
        # Crystal growth develops over ~48 h without a full recharge.
        staleness = clamp(cond.hours_since_full_charge / 48.0, 0.1, 1.0)
        rate = self.base_rate * depth * staleness * arrhenius_factor(cond.temperature_c)
        return rate * dt


class WaterLoss(AgingMechanism):
    """Drying out of a VRLA block through gassing.

    Driven by the portion of charge current lost to electrolysis
    (over-charge / float near full SoC), accelerated by temperature. Water
    cannot be refilled in a sealed block, so the loss is permanent.
    Calibration: losing 100 full-charge equivalents to gassing costs the
    block its life — heavy daily overcharging alone would take ~5 years.
    """

    name = "water_loss"
    resistance_share = 0.2

    fade_per_gassing_cycle = EOL_FADE / 100.0

    def damage(self, cond: OperatingConditions, dt: float) -> float:
        if cond.gassing_current <= 0.0 or cond.capacity_ah <= 0:
            return 0.0
        gassing_ah = cond.gassing_current * dt / SECONDS_PER_HOUR
        fraction_of_cycle = gassing_ah / cond.capacity_ah
        accel = arrhenius_factor(cond.temperature_c)
        return self.fade_per_gassing_cycle * fraction_of_cycle * accel


class Stratification(AgingMechanism):
    """Electrolyte stratification under chronic partial cycling.

    When a battery cycles without periodically reaching full charge (whose
    gassing stirs the electrolyte), dense acid settles and the plate
    bottoms sulphate preferentially. Damage accrues while cycling with a
    stale full charge, faster at deep discharge with low current (the
    paper's "deeply discharged with very low current" condition).
    Calibration: perpetual partial cycling with no full recharge costs the
    battery its life in about 1.5 years from this mechanism alone.
    """

    name = "stratification"
    resistance_share = 0.3

    base_rate = EOL_FADE / (1.5 * 365.0 * 86400.0)
    #: Hours without a full recharge at which stratification saturates.
    saturation_hours = 72.0

    def damage(self, cond: OperatingConditions, dt: float) -> float:
        if cond.current == 0.0:
            return 0.0
        staleness = clamp(cond.hours_since_full_charge / self.saturation_hours, 0.0, 1.0)
        if staleness == 0.0:
            return 0.0
        rate = self.base_rate * staleness
        if cond.is_discharging and cond.soc < 0.4 and cond.discharge_rate_normalized < 1.0:
            rate *= 1.5  # deep, low-current discharge is the worst case
        return rate * dt


def default_mechanisms(lifetime_full_cycles: float = 380.0) -> List[AgingMechanism]:
    """The paper's five mechanisms with default calibration."""
    return [
        GridCorrosion(),
        ActiveMassDegradation(lifetime_full_cycles=lifetime_full_cycles),
        Sulphation(),
        WaterLoss(),
        Stratification(),
    ]
