"""Terminal-voltage model for lead-acid blocks.

A rested lead-acid cell's open-circuit voltage (OCV) is, to a good
approximation, linear in state of charge because OCV tracks electrolyte
(sulphuric acid) concentration, which coulomb counting depletes linearly.
Under load the terminal voltage additionally sags by ``I * R`` across the
internal resistance, with a mild extra sag at very low SoC where acid
depletion at the plate surface bites (modelled with a low-SoC knee).

Aging enters in two ways, reproducing the paper's Fig. 3 measurement
(fully-charged terminal voltage down ~9 % over six months of cyclic use):

- internal resistance grows with accumulated corrosion/sulphation damage,
  deepening the loaded sag; and
- the full-charge OCV itself falls as active mass is lost (the electrode
  can no longer hold the full acid gradient).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.battery.params import BatteryParams
from repro.units import clamp

#: Coefficient and exponent coupling full-charge OCV loss to capacity fade:
#: ``drop = OCV_FADE_COEFF * fade ** OCV_FADE_EXPONENT``. Superlinear in
#: fade so the droop *rate* accelerates as the battery ages — the paper's
#: Fig. 3 measures 0.1 V/month early growing to 0.3 V/month late, with a
#: total ~9 % drop co-occurring with ~14 % capacity fade.
OCV_FADE_COEFF = 1.30
OCV_FADE_EXPONENT = 1.35

#: SoC below which the extra concentration-polarisation sag ramps in.
LOW_SOC_KNEE = 0.20

#: Maximum additional sag (volts) contributed by the low-SoC knee at SoC=0
#: for a 12 V block under reference current.
LOW_SOC_SAG_V = 0.45


@dataclass(frozen=True)
class VoltageModel:
    """Computes OCV and loaded terminal voltage for one battery.

    Stateless: all state (SoC, fade, resistance growth) is passed in, so
    the same model object can serve any number of units.
    """

    params: BatteryParams

    def ocv(self, soc: float, capacity_fade: float = 0.0) -> float:
        """Open-circuit (rested) voltage at a given SoC and age.

        Parameters
        ----------
        soc:
            State of charge in ``[0, 1]``.
        capacity_fade:
            Fraction of nominal capacity lost to aging, in ``[0, 1)``.
        """
        soc = clamp(soc, 0.0, 1.0)
        p = self.params
        fade = clamp(capacity_fade, 0.0, 1.0)
        full = p.ocv_full * (1.0 - OCV_FADE_COEFF * fade**OCV_FADE_EXPONENT)
        empty = p.ocv_empty
        if full < empty:  # pathological age; keep the window non-inverted
            full = empty
        return empty + (full - empty) * soc

    def resistance(self, resistance_growth: float = 0.0) -> float:
        """Internal resistance (ohms) after aging.

        ``resistance_growth`` is the fractional increase accumulated by the
        aging model (0.0 for a new battery; 1.0 doubles resistance).
        """
        return self.params.internal_resistance_ohm * (1.0 + max(0.0, resistance_growth))

    def terminal_voltage(
        self,
        soc: float,
        current: float,
        capacity_fade: float = 0.0,
        resistance_growth: float = 0.0,
    ) -> float:
        """Loaded terminal voltage.

        Parameters
        ----------
        current:
            Signed current in amperes — positive for discharge, negative
            for charge (so charging *raises* the terminal voltage).
        """
        v = self.ocv(soc, capacity_fade)
        r = self.resistance(resistance_growth)
        v -= current * r
        if current > 0.0 and soc < LOW_SOC_KNEE:
            # The knee scales linearly with both depth below the knee and
            # (capped) discharge rate relative to the reference current.
            depth = (LOW_SOC_KNEE - clamp(soc, 0.0, 1.0)) / LOW_SOC_KNEE
            rate = min(current / self.params.reference_current, 4.0) / 4.0
            v -= LOW_SOC_SAG_V * depth * rate
        return v

    def max_discharge_current(
        self,
        soc: float,
        capacity_fade: float = 0.0,
        resistance_growth: float = 0.0,
    ) -> float:
        """Largest discharge current that keeps terminal voltage above the
        cut-off, ignoring the low-SoC knee (a conservative planner bound).

        Returns 0 when even the OCV is already at/below cut-off — an aged or
        deeply discharged battery that cannot sustain any high-current draw
        (the paper's "under-voltage battery ... disconnected from the
        system").
        """
        v = self.ocv(soc, capacity_fade)
        headroom = v - self.params.cutoff_voltage
        if headroom <= 0.0:
            return 0.0
        return headroom / self.resistance(resistance_growth)
