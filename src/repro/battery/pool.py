"""Rack-shared battery pool (Facebook Open-Rack style integration).

BAAT "supports two types of distributed energy storage architectures":
per-server batteries (Google style) and a pool of batteries shared by
several racks (Facebook Open Rack style). :class:`BatteryPool` provides
the second: a group of :class:`~repro.battery.unit.BatteryUnit` objects
behind a single charge/discharge interface that spreads current across
members.

Two dispatch strategies are provided:

- ``"proportional"`` — split power across live members in proportion to
  their present deliverable power (the electrical reality of paralleled
  strings: stronger/fuller blocks naturally source more current);
- ``"round_robin"`` — rotate the duty so usage evens out, a simple
  management baseline.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.battery.unit import BatteryUnit, StepResult
from repro.errors import ConfigurationError

_STRATEGIES = ("proportional", "round_robin")


class BatteryPool:
    """Several battery units behind one power interface."""

    def __init__(self, units: Sequence[BatteryUnit], strategy: str = "proportional"):
        if not units:
            raise ConfigurationError("a battery pool needs at least one unit")
        if strategy not in _STRATEGIES:
            raise ConfigurationError(
                f"unknown dispatch strategy {strategy!r}; choose from {_STRATEGIES}"
            )
        self.units: List[BatteryUnit] = list(units)
        self.strategy = strategy
        self._rr_cursor = 0

    # ------------------------------------------------------------------
    # Aggregate state
    # ------------------------------------------------------------------
    @property
    def soc(self) -> float:
        """Charge-weighted aggregate state of charge."""
        cap = sum(u.effective_capacity_ah for u in self.units)
        if cap <= 0:
            return 0.0
        return sum(u.stored_ah for u in self.units) / cap

    @property
    def effective_capacity_ah(self) -> float:
        """Total usable capacity across members."""
        return sum(u.effective_capacity_ah for u in self.units)

    def max_discharge_power(self) -> float:
        """Aggregate sustainable discharge power."""
        return sum(u.max_discharge_power() for u in self.units)

    def worst_unit(self) -> BatteryUnit:
        """The member with the highest capacity fade (the paper always
        reports the worst battery node)."""
        return max(self.units, key=lambda u: u.capacity_fade)

    # ------------------------------------------------------------------
    # Power interface
    # ------------------------------------------------------------------
    def discharge(self, power_w: float, dt: float) -> StepResult:
        """Source up to ``power_w`` for ``dt`` seconds across members."""
        if power_w < 0:
            raise ConfigurationError("discharge power must be >= 0")
        shares = self._shares(power_w, for_discharge=True)
        delivered = 0.0
        current = 0.0
        curtailed = False
        voltage = 0.0
        for unit, share in zip(self.units, shares):
            if share <= 0.0:
                unit.rest(dt)
                continue
            res = unit.discharge(share, dt)
            delivered += res.delivered_power_w
            current += max(res.current_a, 0.0)
            curtailed = curtailed or res.curtailed
            voltage = max(voltage, res.terminal_voltage_v)
        # Relative tolerance: the per-unit fixed-point voltage solve leaves
        # sub-milliwatt residuals that are not real curtailment.
        if delivered < power_w * (1.0 - 1e-4):
            curtailed = True
        return StepResult(delivered, current, voltage, curtailed)

    def charge(self, power_w: float, dt: float) -> StepResult:
        """Absorb up to ``power_w`` for ``dt`` seconds across members.

        Charging preferentially fills the emptiest members first (series
        chargers per string), which also counteracts stratification on the
        most-partial blocks.
        """
        if power_w < 0:
            raise ConfigurationError("charge power must be >= 0")
        remaining = power_w
        absorbed = 0.0
        current = 0.0
        gassing = 0.0
        for unit in sorted(self.units, key=lambda u: u.soc):
            if remaining <= 1e-12:
                unit.rest(dt)
                continue
            res = unit.charge(remaining, dt)
            absorbed += res.delivered_power_w
            remaining = max(0.0, remaining - res.delivered_power_w)
            current += res.current_a
            gassing += res.gassing_current_a
        curtailed = absorbed < power_w - 1e-9
        return StepResult(absorbed, current, 0.0, curtailed, gassing)

    def rest(self, dt: float) -> None:
        """Idle all members for ``dt`` seconds."""
        for unit in self.units:
            unit.rest(dt)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _shares(self, power_w: float, for_discharge: bool) -> List[float]:
        if self.strategy == "round_robin":
            return self._round_robin_shares(power_w)
        return self._proportional_shares(power_w)

    def _proportional_shares(self, power_w: float) -> List[float]:
        caps = [u.max_discharge_power() for u in self.units]
        total = sum(caps)
        if total <= 0.0:
            return [0.0] * len(self.units)
        return [power_w * c / total for c in caps]

    def _round_robin_shares(self, power_w: float) -> List[float]:
        """Assign the whole load to the next live unit in rotation,
        spilling over to subsequent units if it cannot carry it alone."""
        n = len(self.units)
        shares = [0.0] * n
        remaining = power_w
        for offset in range(n):
            idx = (self._rr_cursor + offset) % n
            unit = self.units[idx]
            can = unit.max_discharge_power()
            take = min(remaining, can)
            shares[idx] = take
            remaining -= take
            if remaining <= 1e-12:
                break
        self._rr_cursor = (self._rr_cursor + 1) % n
        return shares

    def __iter__(self) -> Iterable[BatteryUnit]:
        return iter(self.units)

    def __len__(self) -> int:
        return len(self.units)
