"""Hybrid energy buffer: supercapacitor + lead-acid battery.

The extension the paper's reference [52] (HEB) builds: pair each battery
with a small supercapacitor and split the duty by what each chemistry
tolerates —

- the **supercap takes the spikes**: any draw above the battery's gentle
  rate comes from the cap first, so the battery never sees the high
  discharge rates that section III-E identifies as an aging accelerant
  (Peukert losses, self-heating, DR-at-low-SoC);
- the **battery takes the bulk**: sustained deficit beyond the cap's few
  watt-hours still flows from the battery, at a smoothed rate;
- **calm periods refill the cap** (from surplus charge power first).

The buffer exposes the same ``discharge / charge / rest`` power API as a
bare :class:`~repro.battery.unit.BatteryUnit`, so experiments can swap
one for the other.
"""

from __future__ import annotations

from typing import Optional

from repro.battery.supercap import Supercapacitor, SupercapParams
from repro.battery.unit import BatteryUnit, StepResult
from repro.errors import ConfigurationError

#: Battery draws at or below this multiple of its reference (20-h) rate
#: are "gentle" — no Peukert inflation, no meaningful self-heating.
GENTLE_RATE_MULTIPLE = 3.0


class HybridBuffer:
    """A battery with a spike-absorbing supercapacitor in front."""

    def __init__(
        self,
        battery: Optional[BatteryUnit] = None,
        supercap: Optional[Supercapacitor] = None,
        name: str = "hybrid",
    ):
        self.battery = battery or BatteryUnit(name=f"{name}/battery")
        self.supercap = supercap or Supercapacitor()
        self.name = name

    # ------------------------------------------------------------------
    @property
    def soc(self) -> float:
        """Battery SoC (the cap's charge is working capital, not storage)."""
        return self.battery.soc

    @property
    def gentle_power_w(self) -> float:
        """Largest battery draw considered spike-free."""
        params = self.battery.params
        current = GENTLE_RATE_MULTIPLE * params.reference_current
        return current * self.battery.terminal_voltage(0.0)

    def max_discharge_power(self) -> float:
        return self.battery.max_discharge_power() + self.supercap.params.max_power_w

    # ------------------------------------------------------------------
    def discharge(self, power_w: float, dt: float) -> StepResult:
        """Serve ``power_w`` for ``dt``: battery up to its gentle rate,
        supercap for the excess (battery backstops an empty cap).

        During calm steps the battery's spare gentle headroom trickles
        into the cap, restoring the spike reserve — the HEB duty split.
        """
        if power_w < 0 or dt <= 0:
            raise ConfigurationError("power_w >= 0 and dt > 0 required")
        gentle = self.gentle_power_w
        from_battery_w = min(power_w, gentle)
        spike_w = power_w - from_battery_w

        delivered_spike = self.supercap.discharge(spike_w, dt) if spike_w > 0 else 0.0
        shortfall = spike_w - delivered_spike

        # Calm-step cap refill from spare gentle headroom.
        topup_w = 0.0
        if spike_w <= 0.0 and self.supercap.soc < 0.999:
            headroom = max(0.0, gentle - from_battery_w)
            topup_w = self.supercap.charge(headroom, dt)

        result = self.battery.discharge(from_battery_w + shortfall + topup_w, dt)
        total = result.delivered_power_w + delivered_spike - topup_w
        curtailed = total < power_w * (1.0 - 1e-4)
        return StepResult(
            delivered_power_w=max(0.0, total),
            current_a=result.current_a,
            terminal_voltage_v=result.terminal_voltage_v,
            curtailed=curtailed,
        )

    def charge(self, power_w: float, dt: float) -> StepResult:
        """Absorb ``power_w``: refill the supercap first (it is the spike
        reserve), then the battery."""
        if power_w < 0 or dt <= 0:
            raise ConfigurationError("power_w >= 0 and dt > 0 required")
        to_cap = self.supercap.charge(power_w, dt)
        result = self.battery.charge(max(0.0, power_w - to_cap), dt)
        return StepResult(
            delivered_power_w=result.delivered_power_w + to_cap,
            current_a=result.current_a,
            terminal_voltage_v=result.terminal_voltage_v,
            curtailed=result.curtailed,
            gassing_current_a=result.gassing_current_a,
        )

    def rest(self, dt: float) -> StepResult:
        self.supercap.rest(dt)
        return self.battery.rest(dt)
