"""CC-CV battery charger model.

The prototype's power module charges batteries from solar or utility power
under controller command. Lead-acid charging follows the classic
constant-current / constant-voltage (absorption) profile with a float
stage:

- **Bulk (CC)** — below the gassing region the battery accepts up to the
  charger's current limit (conventionally C/5 for VRLA);
- **Absorption (CV)** — approaching full charge the acceptance current
  tapers roughly linearly to the float level as the terminal voltage is
  held at the absorption setpoint;
- **Float** — a trickle that offsets self-discharge; prolonged float is an
  aging driver (corrosion, water loss) that the charge-factor metric (CF,
  Eq. 2) senses.

The charger also models *coulombic efficiency*: some charge current goes
into gassing rather than stored charge, increasingly so above the gassing
SoC. This is why a healthy lead-acid charge factor sits in the 1-1.3 band
the paper quotes from Svoboda et al.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.battery.params import BatteryParams
from repro.errors import ConfigurationError
from repro.units import clamp


@dataclass(frozen=True)
class ChargerParams:
    """Configuration for a CC-CV charger attached to one battery.

    Attributes
    ----------
    max_current_fraction_c:
        Bulk current limit as a fraction of capacity per hour (0.2 = C/5).
    float_current_fraction_c:
        Float/trickle current as a fraction of C (offsets self-discharge).
    taper_start_soc:
        SoC where CV taper begins; at and above this the acceptance limit
        falls linearly to the float current at 100 % SoC.
    """

    max_current_fraction_c: float = 0.20
    float_current_fraction_c: float = 0.002
    taper_start_soc: float = 0.85

    def __post_init__(self) -> None:
        if self.max_current_fraction_c <= 0:
            raise ConfigurationError("max_current_fraction_c must be positive")
        if self.float_current_fraction_c < 0:
            raise ConfigurationError("float_current_fraction_c must be >= 0")
        if not 0.0 < self.taper_start_soc < 1.0:
            raise ConfigurationError("taper_start_soc must be in (0, 1)")


class Charger:
    """Computes the acceptable charge current for a battery state.

    Stateless with respect to the battery; the battery unit calls
    :meth:`acceptance_current` each step with its current SoC.
    """

    def __init__(self, battery: BatteryParams, params: ChargerParams | None = None):
        self.battery = battery
        self.params = params or ChargerParams()

    @property
    def max_current(self) -> float:
        """Bulk-stage current limit in amperes."""
        return self.params.max_current_fraction_c * self.battery.capacity_ah

    @property
    def float_current(self) -> float:
        """Float-stage trickle current in amperes."""
        return self.params.float_current_fraction_c * self.battery.capacity_ah

    def acceptance_current(self, soc: float, capacity_fade: float = 0.0) -> float:
        """Maximum current (A) the battery will accept at the given SoC.

        An aged battery's acceptance shrinks proportionally with its
        remaining capacity: less active mass means less material available
        to convert, so bulk current scales by ``(1 - fade)``.
        """
        soc = clamp(soc, 0.0, 1.0)
        bulk = self.max_current * (1.0 - clamp(capacity_fade, 0.0, 1.0))
        start = self.params.taper_start_soc
        if soc < start:
            return bulk
        if soc >= 1.0:
            return self.float_current
        # Linear taper from bulk at taper_start_soc to float at SoC = 1.
        frac = (soc - start) / (1.0 - start)
        return bulk + (self.float_current - bulk) * frac

    def coulombic_efficiency(self, soc: float) -> float:
        """Fraction of charge current converted to stored charge.

        Below the gassing SoC the nominal efficiency applies; above it the
        efficiency falls linearly toward ~60 % at full charge as more of
        the current drives electrolysis. The lost fraction is what pushes
        the charge factor (Eq. 2) above 1 during normal cycling.
        """
        soc = clamp(soc, 0.0, 1.0)
        base = self.battery.coulombic_efficiency
        gas = self.battery.gassing_soc
        if soc <= gas:
            return base
        frac = (soc - gas) / max(1e-9, 1.0 - gas)
        floor = 0.60
        return base + (floor - base) * frac
