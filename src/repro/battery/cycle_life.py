"""Cycle life versus depth of discharge (paper Fig. 10).

The paper plots manufacturer cycle-life data from Hoppecke, Trojan, and UPG
showing that battery cycle life drops by ~50 % when cycles regularly exceed
50 % DoD. Datasheets for deep-cycle lead-acid blocks publish a handful of
(DoD, cycles) points; we embed representative point sets for the three
vendors (reconstructed from published deep-cycle VRLA/flooded curves of
that era) and fit the standard inverse-power model

    N(DoD) = N_100 * DoD ** (-b)

used throughout the battery-lifetime literature. The fitted curves drive
the planned-aging manager's DoD-to-lifetime reasoning (Eq. 7) and the
Fig. 10 bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.units import clamp


@dataclass(frozen=True)
class CycleLifeCurve:
    """A fitted cycle-life-vs-DoD curve for one battery product line.

    Attributes
    ----------
    name:
        Manufacturer/product label.
    points:
        The (DoD fraction, cycles) datasheet points the fit was made from.
    n_100:
        Fitted cycle count at 100 % DoD.
    exponent:
        Fitted inverse-power exponent ``b`` (>0; larger = steeper penalty
        for deep cycling).
    """

    name: str
    points: Tuple[Tuple[float, float], ...]
    n_100: float
    exponent: float

    def cycles(self, dod: float) -> float:
        """Cycle life at a given depth of discharge (fraction in (0, 1])."""
        if dod <= 0.0:
            raise ConfigurationError("DoD must be positive")
        dod = clamp(dod, 1e-3, 1.0)
        return self.n_100 * dod ** (-self.exponent)

    def lifetime_ah_throughput(self, capacity_ah: float, dod: float) -> float:
        """Total dischargeable Ah over life when cycling at constant DoD.

        ``cycles(dod) * dod * capacity`` — shallower cycling yields more
        total throughput, which is exactly the curvature BAAT's planned
        aging exploits.
        """
        return self.cycles(dod) * dod * capacity_ah


def fit_curve(name: str, points: Sequence[Tuple[float, float]]) -> CycleLifeCurve:
    """Least-squares fit of the inverse-power model in log-log space."""
    if len(points) < 2:
        raise ConfigurationError("need at least two (DoD, cycles) points to fit")
    dod = np.array([p[0] for p in points], dtype=float)
    cyc = np.array([p[1] for p in points], dtype=float)
    if np.any(dod <= 0) or np.any(cyc <= 0):
        raise ConfigurationError("DoD and cycle counts must be positive")
    # log N = log N_100 - b * log DoD  (DoD as fraction, so log DoD <= 0)
    slope, intercept = np.polyfit(np.log(dod), np.log(cyc), 1)
    return CycleLifeCurve(
        name=name,
        points=tuple((float(d), float(c)) for d, c in points),
        n_100=float(np.exp(intercept)),
        exponent=float(-slope),
    )


# Representative deep-cycle lead-acid datasheet points (DoD fraction, cycles).
_HOPPECKE_POINTS = ((0.2, 3200.0), (0.4, 1800.0), (0.6, 1200.0), (0.8, 900.0), (1.0, 700.0))
_TROJAN_POINTS = ((0.2, 3000.0), (0.4, 1600.0), (0.5, 1200.0), (0.8, 750.0), (1.0, 600.0))
_UPG_POINTS = ((0.3, 1100.0), (0.5, 500.0), (0.6, 400.0), (0.8, 300.0), (1.0, 225.0))

#: Fitted curves for the three manufacturers shown in the paper's Fig. 10.
MANUFACTURER_CURVES: Dict[str, CycleLifeCurve] = {
    "hoppecke": fit_curve("hoppecke", _HOPPECKE_POINTS),
    "trojan": fit_curve("trojan", _TROJAN_POINTS),
    "upg": fit_curve("upg", _UPG_POINTS),
}


def cycle_life_at_dod(dod: float, manufacturer: str = "trojan") -> float:
    """Convenience lookup of cycle life for one manufacturer's curve."""
    try:
        curve = MANUFACTURER_CURVES[manufacturer]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown manufacturer {manufacturer!r}; "
            f"choose from {sorted(MANUFACTURER_CURVES)}"
        ) from exc
    return curve.cycles(dod)


def mean_curve() -> CycleLifeCurve:
    """Fit a single curve through all three manufacturers' points.

    Used where the paper argues from the *family* of curves rather than a
    specific vendor (e.g. "cycle life decreases by 50 % if ... discharged
    at a DoD above 50 %").
    """
    points: list[Tuple[float, float]] = []
    for curve in MANUFACTURER_CURVES.values():
        points.extend(curve.points)
    return fit_curve("mean", points)
