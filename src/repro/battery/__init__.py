"""Lead-acid battery simulator.

This package is the physical substrate the paper measures: sealed 12 V /
35 Ah VRLA blocks used as distributed per-server energy buffers. It provides

- :class:`~repro.battery.params.BatteryParams` — datasheet-style parameters;
- :class:`~repro.battery.unit.BatteryUnit` — a stateful battery with SoC
  tracking, terminal voltage, thermal behaviour, and five aging mechanisms;
- :class:`~repro.battery.pool.BatteryPool` — a rack-shared pool of units
  (Facebook Open-Rack style integration);
- :mod:`~repro.battery.cycle_life` — manufacturer cycle-life-vs-DoD data
  (Fig. 10) and fitted curves;
- :class:`~repro.battery.charger.Charger` — CC-CV charging with gassing
  taper and coulombic efficiency.
"""

from repro.battery.params import BatteryParams
from repro.battery.voltage import VoltageModel
from repro.battery.thermal import ThermalModel
from repro.battery.peukert import peukert_factor, peukert_capacity
from repro.battery.charger import Charger, ChargerParams
from repro.battery.cycle_life import (
    CycleLifeCurve,
    MANUFACTURER_CURVES,
    cycle_life_at_dod,
)
from repro.battery.aging import AgingModel, AgingState, OperatingConditions
from repro.battery.unit import BatteryUnit, BatteryState, StepResult
from repro.battery.pool import BatteryPool

__all__ = [
    "BatteryParams",
    "VoltageModel",
    "ThermalModel",
    "peukert_factor",
    "peukert_capacity",
    "Charger",
    "ChargerParams",
    "CycleLifeCurve",
    "MANUFACTURER_CURVES",
    "cycle_life_at_dod",
    "AgingModel",
    "AgingState",
    "OperatingConditions",
    "BatteryUnit",
    "BatteryState",
    "StepResult",
    "BatteryPool",
]
