"""Lumped thermal model for a battery block.

The paper identifies temperature as a first-order aging driver: "a 10 deg C
temperature increase will result in a reduction of the lifetime by 50 %"
(section III-E, citing Jossen et al.). Temperature matters most under high
discharge rates, where I^2*R self-heating pushes the block above ambient.

We use a single thermal mass with Newtonian cooling:

    C_th * dT/dt = P_loss - (T - T_ambient) / R_th

where ``P_loss = I^2 * R`` is ohmic dissipation. With the default
constants (C_th = 20 kJ/K, R_th = 0.8 K/W) the time constant is ~4.4 h and
a sustained 1C discharge (35 A through ~15 mOhm) settles ~15 K above
ambient — consistent with the "high discharge rate ... increased battery
temperature" behaviour the paper warns about.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.battery.params import BatteryParams


@dataclass
class ThermalModel:
    """Mutable thermal state of one battery block."""

    params: BatteryParams
    ambient_c: float = 25.0
    temperature_c: float = 25.0

    def __post_init__(self) -> None:
        self.temperature_c = self.ambient_c

    def step(self, current: float, resistance_ohm: float, dt: float) -> float:
        """Advance the temperature by ``dt`` seconds.

        Parameters
        ----------
        current:
            Magnitude of charge/discharge current (A); sign is irrelevant
            since ohmic heating is ``I^2 * R``.
        resistance_ohm:
            Present internal resistance (aged value).
        dt:
            Timestep in seconds.

        Returns
        -------
        float
            The new block temperature in deg C.
        """
        p_loss = current * current * resistance_ohm
        # Exact integration of the linear ODE over dt for stability at
        # coarse timesteps (dt may exceed the thermal time constant in
        # accelerated runs).
        tau = self.params.thermal_capacity_j_per_k * self.params.thermal_resistance_k_per_w
        t_inf = self.ambient_c + p_loss * self.params.thermal_resistance_k_per_w
        if tau <= 0:
            self.temperature_c = t_inf
        else:
            import math

            decay = math.exp(-dt / tau)
            self.temperature_c = t_inf + (self.temperature_c - t_inf) * decay
        return self.temperature_c

    def reset(self, ambient_c: float | None = None) -> None:
        """Reset the block to (a possibly new) ambient temperature."""
        if ambient_c is not None:
            self.ambient_c = ambient_c
        self.temperature_c = self.ambient_c


def arrhenius_factor(temperature_c: float, reference_c: float = 20.0) -> float:
    """Aging acceleration relative to the reference temperature.

    Doubles per +10 deg C — the rule of thumb the paper states as a 50 %
    lifetime reduction per 10 deg C increase over the 20 deg C baseline.
    Temperatures below reference decelerate aging symmetrically.
    """
    return 2.0 ** ((temperature_c - reference_c) / 10.0)
