"""Online battery-lifetime prediction from runtime metrics.

BAAT "proactively predicts battery lifetime and trades off unnecessary
battery service life for better datacenter productivity" (section I).
Two predictors are provided, mirroring the two lifetime-model families
the paper's section VII surveys:

- :func:`predict_by_throughput` — the constant-Ah-throughput model
  (paper refs [31, 32] and Eq. 1): remaining life is the unburned share
  of the nominal life-long charge, divided by the observed discharge
  rate;
- :func:`predict_by_damage` — the damage-extrapolation model: remaining
  life is the distance to the 80 %-capacity floor divided by the
  observed fade rate (what :mod:`repro.analysis.lifetime` uses offline).

:class:`LifetimePredictor` blends the two (a damage-weighted average —
the throughput model is exact only when cycling conditions stay benign,
which the damage trend detects) and reports agreement, so the planner
can tell a confident prediction from a shaky one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.battery.aging.mechanisms import EOL_FADE
from repro.battery.unit import BatteryUnit
from repro.errors import ConfigurationError
from repro.units import SECONDS_PER_DAY


def predict_by_throughput(battery: BatteryUnit, elapsed_s: float) -> float:
    """Remaining lifetime (days) under the constant-Ah-throughput model.

    Returns ``inf`` for a battery that has not discharged yet.
    """
    if elapsed_s <= 0:
        raise ConfigurationError("elapsed_s must be positive")
    used_ah = battery.aging.state.discharged_ah
    if used_ah <= 0.0:
        return math.inf
    total_ah = battery.params.lifetime_ah_throughput
    remaining_ah = max(0.0, total_ah - used_ah)
    rate_per_day = used_ah / (elapsed_s / SECONDS_PER_DAY)
    return remaining_ah / rate_per_day if rate_per_day > 0 else math.inf


def predict_by_damage(battery: BatteryUnit, elapsed_s: float) -> float:
    """Remaining lifetime (days) by extrapolating the observed fade rate.

    Returns ``inf`` for a battery with no accumulated fade.
    """
    if elapsed_s <= 0:
        raise ConfigurationError("elapsed_s must be positive")
    fade = battery.capacity_fade
    if fade <= 0.0:
        return math.inf
    rate_per_day = fade / (elapsed_s / SECONDS_PER_DAY)
    remaining = max(0.0, EOL_FADE - fade)
    return remaining / rate_per_day if rate_per_day > 0 else math.inf


@dataclass(frozen=True)
class LifetimePrediction:
    """A blended lifetime prediction with its components.

    Attributes
    ----------
    remaining_days:
        The blended estimate.
    by_throughput_days / by_damage_days:
        The two component models.
    agreement:
        Ratio of the smaller to the larger component in (0, 1]; near 1
        means the models agree (benign, regular cycling), small values
        mean conditions are harsher than the throughput model assumes.
    """

    remaining_days: float
    by_throughput_days: float
    by_damage_days: float

    @property
    def agreement(self) -> float:
        a, b = self.by_throughput_days, self.by_damage_days
        if math.isinf(a) and math.isinf(b):
            return 1.0
        if math.isinf(a) or math.isinf(b) or a <= 0 or b <= 0:
            return 0.0
        return min(a, b) / max(a, b)

    @property
    def end_of_life_in_years(self) -> float:
        return self.remaining_days / 365.0


class LifetimePredictor:
    """Blends the two models, weighting toward damage as fade grows.

    A new battery has no damage signal, so the throughput model carries
    the estimate; as fade accumulates the damage extrapolation becomes
    the better-informed (it sees the *severity* of the cycling, not just
    its volume) and takes over.
    """

    def __init__(self, damage_weight_gain: float = 4.0):
        if damage_weight_gain < 0:
            raise ConfigurationError("damage_weight_gain must be >= 0")
        self.damage_weight_gain = damage_weight_gain

    def predict(self, battery: BatteryUnit, elapsed_s: float) -> LifetimePrediction:
        """Predict remaining lifetime for a battery observed for
        ``elapsed_s`` seconds."""
        by_tp = predict_by_throughput(battery, elapsed_s)
        by_dm = predict_by_damage(battery, elapsed_s)
        if math.isinf(by_tp) and math.isinf(by_dm):
            blended = math.inf
        elif math.isinf(by_tp):
            blended = by_dm
        elif math.isinf(by_dm):
            blended = by_tp
        else:
            # Weight toward the damage model as fade approaches EOL.
            w = min(1.0, self.damage_weight_gain * battery.capacity_fade / EOL_FADE)
            blended = (1.0 - w) * by_tp + w * by_dm
        return LifetimePrediction(
            remaining_days=blended,
            by_throughput_days=by_tp,
            by_damage_days=by_dm,
        )
