"""Cross-validation of the aging model against cycle-life curves.

Two independent lifetime representations coexist in this library:

- the **mechanistic model** (:mod:`repro.battery.aging`): five damage
  mechanisms integrated over simulated operating conditions; and
- the **empirical curves** (:mod:`repro.battery.cycle_life`): fitted
  manufacturer cycle-life-vs-DoD data (paper Fig. 10).

They were calibrated from different anchors (the paper's six-month
measurements vs datasheet points), so agreement between them is a real
consistency check, not a tautology. :func:`simulated_cycle_life` grinds a
battery through constant-DoD cycles until end of life;
:func:`validate_against_curves` compares the resulting cycle counts with
the empirical family and reports the discrepancy per DoD.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.battery.cycle_life import MANUFACTURER_CURVES, mean_curve
from repro.battery.params import BatteryParams
from repro.battery.unit import BatteryUnit
from repro.errors import ConfigurationError
from repro.units import SECONDS_PER_HOUR


def simulated_cycle_life(
    dod: float,
    params: Optional[BatteryParams] = None,
    max_cycles: int = 5000,
    dt_s: float = 1800.0,
) -> int:
    """Cycles to end of life when cycling a battery at constant DoD.

    Each cycle discharges the battery from full to ``1 - dod`` at a
    moderate (~C/7) rate, recharges fully, and rests briefly — a benign
    laboratory cycling profile comparable to datasheet test conditions.
    """
    if not 0.05 <= dod <= 0.95:
        raise ConfigurationError("dod must be in [0.05, 0.95]")
    params = params or BatteryParams()
    battery = BatteryUnit(params, name=f"cycle-test-{dod:.2f}")
    discharge_w = params.nominal_voltage * params.capacity_ah / 7.0

    for cycle in range(1, max_cycles + 1):
        target = 1.0 - dod
        # Discharge to the target SoC.
        while battery.soc > target:
            result = battery.discharge(discharge_w, dt_s)
            if result.curtailed and result.delivered_power_w <= 0.0:
                break
        # Recharge to full.
        guard = 0
        while battery.soc < 0.99 and guard < 200:
            battery.charge(discharge_w, dt_s)
            guard += 1
        battery.rest(2.0 * SECONDS_PER_HOUR)
        if battery.is_end_of_life:
            return cycle
    return max_cycles


@dataclass(frozen=True)
class ValidationPoint:
    """Comparison of simulated and empirical cycle life at one DoD."""

    dod: float
    simulated_cycles: int
    empirical_cycles: float

    @property
    def ratio(self) -> float:
        """Simulated over empirical; 1.0 is perfect agreement."""
        if self.empirical_cycles <= 0:
            return float("inf")
        return self.simulated_cycles / self.empirical_cycles


def validate_against_curves(
    dods: Sequence[float] = (0.3, 0.5, 0.8),
    manufacturer: str = "",
    params: Optional[BatteryParams] = None,
) -> Tuple[ValidationPoint, ...]:
    """Compare the mechanistic model to the empirical curve family.

    With ``manufacturer`` empty, the pooled mean curve is used.
    """
    if manufacturer:
        try:
            curve = MANUFACTURER_CURVES[manufacturer]
        except KeyError as exc:
            raise ConfigurationError(
                f"unknown manufacturer {manufacturer!r}"
            ) from exc
    else:
        curve = mean_curve()
    points = []
    for dod in dods:
        points.append(
            ValidationPoint(
                dod=dod,
                simulated_cycles=simulated_cycle_life(dod, params=params),
                empirical_cycles=curve.cycles(dod),
            )
        )
    return tuple(points)
