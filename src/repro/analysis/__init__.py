"""Analysis: lifetime extrapolation, comparisons, and table rendering."""

from repro.analysis.lifetime import (
    LifetimeEstimate,
    estimate_lifetime_days,
    lifetime_for_policies,
    season_day_classes,
)
from repro.analysis.prediction import (
    LifetimePredictor,
    LifetimePrediction,
    predict_by_damage,
    predict_by_throughput,
)
from repro.analysis.reporting import format_table, percent_change, ratio

__all__ = [
    "LifetimeEstimate",
    "estimate_lifetime_days",
    "lifetime_for_policies",
    "season_day_classes",
    "LifetimePredictor",
    "LifetimePrediction",
    "predict_by_damage",
    "predict_by_throughput",
    "format_table",
    "percent_change",
    "ratio",
]
