"""Intra-day metric time series (the paper's Fig. 12(e)-(k) curves).

The prototype's display plots the five aging metrics *as curves over the
day*, and the paper marks where the slowdown threshold is crossed on each
weather day. This module recomputes those cumulative curves offline from
a recorded run's per-node SoC and current series, so any simulation with
``record_series=True`` can be rendered the way the paper renders its
logs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.battery.params import BatteryParams
from repro.errors import ConfigurationError
from repro.metrics.accumulator import MetricsAccumulator
from repro.metrics.snapshot import AgingMetrics
from repro.sim.recorder import TraceRecorder


@dataclass(frozen=True)
class MetricCurves:
    """Cumulative metric curves for one node over one recorded run."""

    node: str
    times_s: np.ndarray
    nat: np.ndarray
    cf: np.ndarray
    pc: np.ndarray
    ddt: np.ndarray
    dr_peak: np.ndarray

    def at_hour(self, hour: float) -> Tuple[float, float, float, float]:
        """(NAT, CF, PC, DDT) at the first sample at/after ``hour``."""
        idx = int(np.searchsorted(self.times_s, hour * 3600.0))
        idx = min(idx, len(self.times_s) - 1)
        return (
            float(self.nat[idx]),
            float(self.cf[idx]),
            float(self.pc[idx]),
            float(self.ddt[idx]),
        )

    def threshold_crossing_h(self, nat_threshold: float) -> Optional[float]:
        """First hour at which cumulative NAT exceeds a threshold — the
        paper's "slowdown time" marker — or None if never crossed."""
        above = np.nonzero(self.nat > nat_threshold)[0]
        if len(above) == 0:
            return None
        return float(self.times_s[above[0]] / 3600.0)


def metric_curves(
    recorder: TraceRecorder,
    node: str,
    params: Optional[BatteryParams] = None,
    stride: int = 1,
) -> MetricCurves:
    """Recompute a node's cumulative metric curves from a recorded run.

    Parameters
    ----------
    recorder:
        A recorder with ``record_series=True`` data.
    stride:
        Keep every ``stride``-th sample in the output arrays (the
        accumulation itself always uses every sample).
    """
    if node not in recorder.soc_series:
        raise ConfigurationError(f"no recorded series for node {node!r}")
    socs = recorder.soc_series[node]
    currents = recorder.current_series[node]
    times = recorder.times_s
    if not socs:
        raise ConfigurationError(
            "recorder has no series; run the simulation with record_series=True"
        )
    if len(socs) != len(currents) or len(socs) != len(times):
        raise ConfigurationError("recorded series lengths disagree")
    if stride <= 0:
        raise ConfigurationError("stride must be positive")

    params = params or BatteryParams()
    acc = MetricsAccumulator()
    out_t: List[float] = []
    out = {"nat": [], "cf": [], "pc": [], "ddt": [], "dr_peak": []}
    dt = times[1] - times[0] if len(times) > 1 else 60.0
    for i, (soc, current) in enumerate(zip(socs, currents)):
        acc.observe(soc, current, dt, params.reference_current)
        if i % stride == 0 or i == len(socs) - 1:
            m = AgingMetrics.from_accumulator(
                acc, params.lifetime_ah_throughput, params.reference_current
            )
            out_t.append(times[i])
            out["nat"].append(m.nat)
            out["cf"].append(m.cf if np.isfinite(m.cf) else np.nan)
            out["pc"].append(m.pc)
            out["ddt"].append(m.ddt)
            out["dr_peak"].append(m.dr_peak)
    return MetricCurves(
        node=node,
        times_s=np.asarray(out_t),
        nat=np.asarray(out["nat"]),
        cf=np.asarray(out["cf"]),
        pc=np.asarray(out["pc"]),
        ddt=np.asarray(out["ddt"]),
        dr_peak=np.asarray(out["dr_peak"]),
    )
