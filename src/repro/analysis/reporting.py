"""Plain-text table rendering for experiment output.

Every benchmark prints its figure/table as monospace text so the
regeneration is inspectable without plotting dependencies.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.errors import ConfigurationError


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
    float_fmt: str = "{:.3f}",
) -> str:
    """Render a fixed-width text table.

    Floats are formatted with ``float_fmt``; everything else with ``str``.
    """
    rendered: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} does not match {len(headers)} headers"
            )
        rendered.append(
            [
                float_fmt.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def ratio(new: float, baseline: float) -> float:
    """Safe ``new / baseline`` (inf when the baseline is zero)."""
    if baseline == 0:
        return float("inf") if new > 0 else 1.0
    return new / baseline


def percent_change(new: float, baseline: float) -> float:
    """Signed percent change of ``new`` relative to ``baseline``."""
    return (ratio(new, baseline) - 1.0) * 100.0


def improvement_percent(new: float, baseline: float) -> float:
    """How much larger ``new`` is than ``baseline``, in percent.

    The paper's "+69 % lifetime" convention: 1.69x -> 69 %.
    """
    return percent_change(new, baseline)


def reduction_percent(new: float, baseline: float) -> float:
    """How much smaller ``new`` is than ``baseline``, in percent.

    The paper's "26 % cost reduction" convention: 0.74x -> 26 %.
    """
    return (1.0 - ratio(new, baseline)) * 100.0
