"""Battery lifetime estimation by accelerated simulation.

The paper extrapolates lifetime from measured aging rates; we do the same
from simulated rates. A policy is run over a short *representative season*
(a reproducible mix of sunny/cloudy/rainy days drawn from a location's
sunshine fraction); the worst battery node's capacity-fade rate over that
season is extrapolated to the 80 %-of-nominal end-of-life floor:

    lifetime_days = (EOL_fade - initial_fade) / (fade per day)

Using the *worst* node matches operational reality (the first battery to
die forces maintenance) and the paper's reporting convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.battery.aging.mechanisms import EOL_FADE
from repro.campaign import DEFAULT_CACHE, RunSpec, run_campaign
from repro.errors import ConfigurationError
from repro.rng import spawn
from repro.sim.results import SimResult
from repro.sim.scenario import Scenario
from repro.solar.trace import SolarTraceGenerator
from repro.solar.weather import DayClass, WeatherModel


@dataclass(frozen=True)
class LifetimeEstimate:
    """Lifetime extrapolation for one (policy, scenario) pair."""

    policy_name: str
    lifetime_days: float
    worst_fade_per_day: float
    mean_fade_per_day: float
    season_result: SimResult

    @property
    def lifetime_years(self) -> float:
        return self.lifetime_days / 365.0


def season_day_classes(
    sunshine_fraction: float, n_days: int, seed: int
) -> List[DayClass]:
    """A reproducible day-class sequence for a location.

    All policies evaluated at the same (sunshine fraction, seed) see the
    *identical* weather — the paper's matched-solar-scenario methodology.
    """
    if n_days <= 0:
        raise ConfigurationError("n_days must be positive")
    weather = WeatherModel(sunshine_fraction)
    rng = spawn(seed, f"lifetime/season/{sunshine_fraction:.3f}")
    return weather.sample_days(n_days, rng)


def _estimate_from_result(
    policy_name: str, scenario: Scenario, result: SimResult
) -> LifetimeEstimate:
    """Fold one season result into a lifetime extrapolation."""
    worst_rate = result.worst_damage_per_day()
    mean_rate = result.mean_damage_per_day()
    remaining = max(0.0, EOL_FADE - scenario.initial_fade)
    if worst_rate <= 0.0:
        lifetime = float("inf")
    else:
        lifetime = remaining / worst_rate
    return LifetimeEstimate(
        policy_name=policy_name,
        lifetime_days=lifetime,
        worst_fade_per_day=worst_rate,
        mean_fade_per_day=mean_rate,
        season_result=result,
    )


def estimate_lifetime_days(
    policy_name: str,
    scenario: Scenario,
    sunshine_fraction: float = 0.5,
    n_days: int = 6,
    day_classes: Optional[Sequence[DayClass]] = None,
) -> LifetimeEstimate:
    """Run one policy over a representative season and extrapolate.

    Parameters
    ----------
    day_classes:
        Explicit day sequence; overrides the sunshine-fraction sampler
        (useful for single-condition what-ifs).
    """
    return lifetime_for_policies(
        scenario,
        sunshine_fraction,
        n_days,
        policies=(policy_name,),
        day_classes=day_classes,
    )[policy_name]


def lifetime_for_policies(
    scenario: Scenario,
    sunshine_fraction: float = 0.5,
    n_days: int = 6,
    policies: Sequence[str] = ("e-buff", "baat-s", "baat-h", "baat"),
    day_classes: Optional[Sequence[DayClass]] = None,
    n_workers: Optional[int] = None,
    cache=DEFAULT_CACHE,
) -> Dict[str, LifetimeEstimate]:
    """Lifetime estimates for several policies over *identical* weather.

    The season runs go through the campaign runner: one process per
    policy up to ``n_workers`` (default: the campaign process default),
    memoized on disk unless ``cache=None``.
    """
    if day_classes is None:
        day_classes = season_day_classes(sunshine_fraction, n_days, scenario.seed)
    generator: SolarTraceGenerator = scenario.trace_generator()
    trace = generator.days(list(day_classes))
    specs = [
        RunSpec(scenario=scenario, trace=trace, policy=name, label=name)
        for name in policies
    ]
    results = run_campaign(specs, n_workers=n_workers, cache=cache).results()
    return {
        name: _estimate_from_result(name, scenario, results[name])
        for name in policies
    }
