"""Deterministic random-number plumbing.

Every stochastic component in the library (weather transitions, workload
jitter, battery manufacturing variation) draws from a
:class:`numpy.random.Generator` handed down from a single experiment seed.
:func:`spawn` derives independent child generators from named streams so
that, e.g., changing the number of servers never perturbs the weather
sequence — each subsystem owns its own stream.
"""

from __future__ import annotations

import hashlib

import numpy as np

DEFAULT_SEED = 20150622  # DSN 2015 conference start date; arbitrary but fixed


def make_rng(seed: int = DEFAULT_SEED) -> np.random.Generator:
    """Create the root generator for an experiment."""
    return np.random.default_rng(seed)


def stream_seed(root_seed: int, name: str) -> int:
    """Derive a stable 63-bit child seed from a root seed and a stream name.

    Uses SHA-256 over the ``(root_seed, name)`` pair so that stream seeds
    are independent of declaration order and of each other.
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def spawn(root_seed: int, name: str) -> np.random.Generator:
    """Create an independent named child generator.

    Parameters
    ----------
    root_seed:
        The experiment's root seed.
    name:
        A stable stream label such as ``"weather"`` or ``"battery/3"``.
    """
    return np.random.default_rng(stream_seed(root_seed, name))
