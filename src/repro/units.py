"""Unit conventions and conversion helpers.

The whole library uses SI-flavoured base units consistently:

========================  ==========================================
Quantity                  Unit
========================  ==========================================
time                      seconds (``float``)
power                     watts
energy                    joules internally, watt-hours at the API
                          surface where the paper speaks in Wh/kWh
charge                    ampere-hours (Ah) — the paper's native unit
current                   amperes
voltage                   volts
temperature               degrees Celsius
state of charge (SoC)     fraction in ``[0, 1]``
depth of discharge (DoD)  fraction in ``[0, 1]``
========================  ==========================================

Charge is deliberately kept in ampere-hours rather than coulombs because
every equation in the paper (Eqs. 1-5, 7) is written in Ah and battery
datasheets quote Ah capacity. The converters below make the few crossings
between conventions explicit.
"""

from __future__ import annotations

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0
HOURS_PER_DAY = 24.0
DAYS_PER_YEAR = 365.0
DAYS_PER_MONTH = 30.4375  # mean Gregorian month, used for "6 months" spans


def hours(h: float) -> float:
    """Convert hours to seconds."""
    return h * SECONDS_PER_HOUR


def minutes(m: float) -> float:
    """Convert minutes to seconds."""
    return m * SECONDS_PER_MINUTE


def days(d: float) -> float:
    """Convert days to seconds."""
    return d * SECONDS_PER_DAY


def months(m: float) -> float:
    """Convert mean months to seconds."""
    return m * DAYS_PER_MONTH * SECONDS_PER_DAY


def seconds_to_hours(s: float) -> float:
    """Convert seconds to hours."""
    return s / SECONDS_PER_HOUR


def seconds_to_days(s: float) -> float:
    """Convert seconds to days."""
    return s / SECONDS_PER_DAY


def amp_seconds_to_ah(amp_seconds: float) -> float:
    """Convert a charge expressed in ampere-seconds to ampere-hours."""
    return amp_seconds / SECONDS_PER_HOUR


def ah_to_amp_seconds(ah: float) -> float:
    """Convert ampere-hours to ampere-seconds."""
    return ah * SECONDS_PER_HOUR


def wh_to_joules(wh: float) -> float:
    """Convert watt-hours to joules."""
    return wh * SECONDS_PER_HOUR


def joules_to_wh(joules: float) -> float:
    """Convert joules to watt-hours."""
    return joules / SECONDS_PER_HOUR


def kwh_to_wh(kwh: float) -> float:
    """Convert kilowatt-hours to watt-hours."""
    return kwh * 1000.0


def wh_to_kwh(wh: float) -> float:
    """Convert watt-hours to kilowatt-hours."""
    return wh / 1000.0


def clamp(value: float, lo: float, hi: float) -> float:
    """Clamp ``value`` into the closed interval ``[lo, hi]``.

    Used pervasively for SoC, DoD, and weighting factors; raises
    ``ValueError`` if the interval itself is inverted so silent logic bugs
    cannot masquerade as saturation.
    """
    if lo > hi:
        raise ValueError(f"invalid clamp interval [{lo}, {hi}]")
    return max(lo, min(hi, value))
