"""Exception hierarchy for the BAAT reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate configuration mistakes from runtime
conditions (for example, a battery reaching its cut-off voltage).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A model or simulation was constructed with invalid parameters."""


class BatteryError(ReproError):
    """Base class for battery-related runtime errors."""


class BatteryCutoffError(BatteryError):
    """Raised when a discharge request would push the battery past its
    cut-off state of charge or minimum terminal voltage.

    The power path normally *handles* exhaustion gracefully (server
    checkpoint, zero throughput); this exception is only raised by the raw
    battery API when the caller asked for an infeasible discharge with
    ``strict=True``.
    """


class BatteryEndOfLifeError(BatteryError):
    """Raised when operating a battery whose capacity has degraded below the
    end-of-life floor (80 % of nominal, per the paper) with ``strict=True``.
    """


class SchedulingError(ReproError):
    """Raised when a workload placement request cannot be satisfied, e.g.
    no server has enough resource headroom for a VM."""


class MigrationError(SchedulingError):
    """Raised when a VM migration is requested but cannot be performed
    (source missing the VM, destination lacking capacity, or the VM pinned).
    """


class SimulationError(ReproError):
    """Raised when the simulation engine reaches an inconsistent state,
    such as a negative power balance that the power path cannot route."""


class TraceError(ReproError):
    """Raised when a trace (solar, workload, or sensor log) is malformed,
    e.g. non-monotonic timestamps or mismatched lengths."""
