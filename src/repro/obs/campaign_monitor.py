"""Campaign-level rollups: live progress, throughput, ETA, fleet health.

:class:`CampaignMonitor` is an :class:`~repro.obs.sinks.EventSink` that
folds the campaign-shaped slice of the event stream — ``campaign_start``,
``cell_*``, ``cell_health``, ``alert``, ``campaign_finish`` — into one
operator view of a many-cell sweep:

- **Progress**: cells done (cached / ok / failed), retries, in-flight.
- **Throughput and ETA**: executed cells per second on the campaign
  wall clock, remaining-cell estimate from the live rate.
- **Wall-time distribution**: p50/p95/p99 cell wall seconds via the
  registry's streaming (P²) histogram — no per-cell storage.
- **Aging rollup**: per-cell :class:`~repro.obs.events.CellHealthEvent`
  payloads merged into fleet-of-fleets aggregates (worst cell, max
  NAT/DDT/DR across every battery of every cell).
- **Alerts**: currently-active (fired, not cleared) alerts by rule/key.

It works identically attached live to the bus (``repro campaign
--watch``) or fed from a trace being tailed on disk (``repro top``),
because both paths deliver the same typed events. :meth:`summary`
returns the machine-readable rollup written to ``campaign_summary.json``
and :meth:`registry` bridges it to the OpenMetrics exporter;
:func:`render_dashboard` turns a summary into the ANSI dashboard text.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.events import TraceEvent
from repro.obs.metrics import Histogram, MetricRegistry
from repro.obs.sinks import EventSink


class CampaignMonitor(EventSink):
    """Streaming aggregator for one campaign's event stream."""

    def __init__(self) -> None:
        # Progress -----------------------------------------------------
        self.started = False
        self.finished = False
        self.n_cells = 0
        self.n_workers = 0
        self.starts = 0
        self.cached = 0
        self.ok = 0
        self.failed = 0
        self.retries = 0
        self.t_last = 0.0  # campaign wall clock, latest campaign event
        self.wall_s = 0.0  # authoritative once campaign_finish arrives
        self.wall = Histogram("campaign/cell_wall_s")
        # Health rollup ------------------------------------------------
        self.health_cells = 0
        self.health_batteries = 0
        self.health_samples = 0
        self._score_sum = 0.0
        self.score_max = 0.0
        self.worst_cell = ""
        self.worst_node = ""
        self.nat_max = 0.0
        self.ddt_max = 0.0
        self.dr_max = 0.0
        self.health_alerts = 0
        # Alerts -------------------------------------------------------
        self.alerts_fired = 0
        self.alerts_cleared = 0
        self._active: Dict[Tuple[str, str], TraceEvent] = {}
        self.n_events = 0

    # ------------------------------------------------------------------
    # EventSink contract
    # ------------------------------------------------------------------
    def emit(self, event: TraceEvent) -> None:  # noqa: C901 - dispatcher
        self.n_events += 1
        kind = event.kind
        if kind == "campaign_start":
            self.started = True
            self.n_cells = event.n_cells
            self.n_workers = event.n_workers
            self._clock(event.t)
        elif kind == "cell_cache_hit":
            self.cached += 1
            self._clock(event.t)
        elif kind == "cell_start":
            self.starts += 1
            self._clock(event.t)
        elif kind == "cell_retry":
            self.retries += 1
            self._clock(event.t)
        elif kind == "cell_finish":
            if event.ok:
                self.ok += 1
            else:
                self.failed += 1
            self.wall.observe(event.wall_s)
            self._clock(event.t)
        elif kind == "cell_health":
            self._fold_health(event)
            self._clock(event.t)
        elif kind == "campaign_finish":
            self.finished = True
            self.wall_s = event.wall_s
            if event.n_cells:
                self.n_cells = event.n_cells
            self._clock(event.t)
        elif kind == "alert":
            self._fold_alert(event)

    def _clock(self, t: float) -> None:
        # Only campaign-clock events advance the campaign clock; the
        # re-emitted worker events carry simulation timestamps.
        if t > self.t_last:
            self.t_last = t

    def _fold_health(self, event: TraceEvent) -> None:
        self.health_cells += 1
        self.health_batteries += event.n_batteries
        self.health_samples += event.n_samples
        self._score_sum += event.score_mean * max(1, event.n_batteries)
        if event.score_max > self.score_max:
            self.score_max = event.score_max
            self.worst_cell = event.label
            self.worst_node = event.worst
        self.nat_max = max(self.nat_max, event.nat_max)
        self.ddt_max = max(self.ddt_max, event.ddt_max)
        self.dr_max = max(self.dr_max, event.dr_max)
        self.health_alerts += event.alerts

    def _fold_alert(self, event: TraceEvent) -> None:
        key = (event.rule, event.node)
        if event.cleared:
            self.alerts_cleared += 1
            self._active.pop(key, None)
        else:
            self.alerts_fired += 1
            self._active[key] = event

    # ------------------------------------------------------------------
    # Derived rollups
    # ------------------------------------------------------------------
    @property
    def done(self) -> int:
        """Cells resolved one way or another (cached + ok + failed)."""
        return self.cached + self.ok + self.failed

    @property
    def executed(self) -> int:
        return self.ok + self.failed

    @property
    def in_flight(self) -> int:
        return max(0, self.starts - self.executed)

    @property
    def remaining(self) -> int:
        return max(0, self.n_cells - self.done)

    @property
    def hit_rate(self) -> float:
        return self.cached / self.n_cells if self.n_cells else 0.0

    @property
    def cells_per_s(self) -> float:
        """Executed-cell throughput on the campaign wall clock."""
        if self.executed and self.t_last > 0:
            return self.executed / self.t_last
        return 0.0

    @property
    def eta_s(self) -> Optional[float]:
        """Remaining-cell estimate from the live rate; None when unknown."""
        if self.finished or not self.remaining:
            return 0.0 if self.started else None
        rate = self.cells_per_s
        if rate <= 0:
            return None
        return self.remaining / rate

    def active_alerts(self) -> List[TraceEvent]:
        """Currently-firing alerts, worst-severity first."""
        order = {"critical": 0, "warning": 1, "info": 2}
        return sorted(
            self._active.values(),
            key=lambda e: (order.get(e.severity, 3), e.rule, e.node),
        )

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """The machine-readable rollup (``campaign_summary.json``)."""
        score_mean = (
            self._score_sum / self.health_batteries
            if self.health_batteries
            else 0.0
        )
        return {
            "campaign": {
                "started": self.started,
                "finished": self.finished,
                "n_cells": self.n_cells,
                "n_workers": self.n_workers,
                "wall_s": self.wall_s if self.finished else self.t_last,
            },
            "cells": {
                "done": self.done,
                "cached": self.cached,
                "ok": self.ok,
                "failed": self.failed,
                "executed": self.executed,
                "retries": self.retries,
                "in_flight": self.in_flight,
                "remaining": self.remaining,
            },
            "cache": {
                "hits": self.cached,
                "misses": self.n_cells - self.cached if self.n_cells else 0,
                "hit_rate": self.hit_rate,
            },
            "throughput": {
                "cells_per_s": self.cells_per_s,
                "eta_s": self.eta_s,
            },
            "wall_time_s": self.wall.to_dict(),
            "health": {
                "cells_reported": self.health_cells,
                "batteries": self.health_batteries,
                "samples": self.health_samples,
                "score_mean": score_mean,
                "score_max": self.score_max,
                "worst_cell": self.worst_cell,
                "worst_node": self.worst_node,
                "nat_max": self.nat_max,
                "ddt_max": self.ddt_max,
                "dr_max": self.dr_max,
                "cell_alerts": self.health_alerts,
            },
            "alerts": {
                "fired": self.alerts_fired,
                "cleared": self.alerts_cleared,
                "active": [
                    {
                        "rule": e.rule,
                        "node": e.node,
                        "severity": e.severity,
                        "value": e.value,
                        "threshold": e.threshold,
                    }
                    for e in self.active_alerts()
                ],
            },
        }

    def registry(self) -> MetricRegistry:
        """The rollup as a :class:`MetricRegistry` for OpenMetrics export."""
        reg = MetricRegistry()
        summary = self.summary()
        reg.gauge("campaign/n_cells").set(self.n_cells)
        reg.gauge("campaign/n_workers").set(self.n_workers)
        reg.counter("campaign/cells_done").inc(self.done)
        reg.counter("campaign/cells_cached").inc(self.cached)
        reg.counter("campaign/cells_ok").inc(self.ok)
        reg.counter("campaign/cells_failed").inc(self.failed)
        reg.counter("campaign/cell_retries").inc(self.retries)
        reg.gauge("campaign/cache_hit_rate").set(self.hit_rate)
        reg.gauge("campaign/cells_per_s").set(self.cells_per_s)
        reg.gauge("campaign/wall_s").set(summary["campaign"]["wall_s"])
        reg.gauge("campaign/health_score_max").set(self.score_max)
        reg.gauge("campaign/health_nat_max").set(self.nat_max)
        reg.gauge("campaign/health_ddt_max").set(self.ddt_max)
        reg.gauge("campaign/alerts_active").set(len(self._active))
        # Seeding an empty histogram from one snapshot is exact (see
        # Histogram.merge), so the export carries the true quantiles.
        reg.histogram("campaign/cell_wall_s").merge(self.wall.to_dict())
        return reg


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
_BAR_WIDTH = 40


def _bar(done: int, total: int, width: int = _BAR_WIDTH) -> str:
    if total <= 0:
        return "·" * width
    filled = int(round(width * min(1.0, done / total)))
    return "█" * filled + "·" * (width - filled)


def _fmt_eta(eta_s: Optional[float]) -> str:
    if eta_s is None:
        return "--"
    if eta_s <= 0:
        return "0s"
    if eta_s < 60:
        return f"{eta_s:.0f}s"
    if eta_s < 3600:
        return f"{eta_s / 60:.1f}m"
    return f"{eta_s / 3600:.1f}h"


def render_dashboard(summary: Dict[str, Any], ansi: bool = True) -> str:
    """Render a :meth:`CampaignMonitor.summary` dict as dashboard text.

    Pure function of the summary (no terminal I/O) so it is equally
    testable and usable by ``repro top``, ``--watch``, and anything
    tailing a summary file. With ``ansi`` false the output is plain
    text (for logs or dumb terminals).
    """
    bold = "\x1b[1m" if ansi else ""
    dim = "\x1b[2m" if ansi else ""
    red = "\x1b[31m" if ansi else ""
    green = "\x1b[32m" if ansi else ""
    yellow = "\x1b[33m" if ansi else ""
    reset = "\x1b[0m" if ansi else ""

    camp = summary["campaign"]
    cells = summary["cells"]
    cache = summary["cache"]
    thru = summary["throughput"]
    wall = summary["wall_time_s"]
    health = summary["health"]
    alerts = summary["alerts"]

    n = camp["n_cells"]
    done = cells["done"]
    state = "done" if camp["finished"] else ("running" if camp["started"] else "waiting")
    lines = [
        f"{bold}campaign{reset}  {state}  "
        f"{camp['n_workers']} worker(s)  wall {camp['wall_s']:.1f}s",
        f"  [{_bar(done, n)}] {done}/{n} cells"
        f"  {dim}eta {_fmt_eta(thru['eta_s'])}{reset}",
        f"  {green}ok {cells['ok']}{reset}  "
        f"{red}failed {cells['failed']}{reset}  "
        f"cached {cells['cached']}  retries {cells['retries']}  "
        f"in-flight {cells['in_flight']}",
        f"  cache hit rate {cache['hit_rate'] * 100:.0f}%  "
        f"throughput {thru['cells_per_s']:.2f} cells/s",
    ]
    if wall.get("count"):
        lines.append(
            f"  cell wall s  p50 {wall['p50']:.2f}  p95 {wall['p95']:.2f}  "
            f"p99 {wall['p99']:.2f}  max {wall['max']:.2f}"
        )
    if health["cells_reported"]:
        lines.append(
            f"  health  {health['batteries']} batteries / "
            f"{health['cells_reported']} cells  "
            f"score mean {health['score_mean']:.3f} max {health['score_max']:.3f}"
            f"  worst {health['worst_cell']}:{health['worst_node']}"
        )
        lines.append(
            f"  aging   nat_max {health['nat_max']:.4f}  "
            f"ddt_max {health['ddt_max']:.4f}  dr_max {health['dr_max']:.3f}"
        )
    active = alerts["active"]
    if active:
        lines.append(f"  {yellow}alerts ({len(active)} active){reset}")
        for a in active[:5]:
            colour = red if a["severity"] == "critical" else yellow
            lines.append(
                f"    {colour}{a['severity']:<8}{reset} {a['rule']} "
                f"[{a['node']}] value {a['value']:.3f} "
                f"threshold {a['threshold']:.3f}"
            )
        if len(active) > 5:
            lines.append(f"    {dim}... and {len(active) - 5} more{reset}")
    else:
        lines.append(f"  {dim}alerts: none active{reset}")
    return "\n".join(lines)


def write_summary(monitor: CampaignMonitor, path: str) -> Dict[str, Any]:
    """Write ``campaign_summary.json``; returns the summary dict.

    The file gets a provenance ``meta`` block (git sha, timestamp, host
    fingerprint) so a standalone summary is self-describing and the perf
    history store (``repro perf record``) can ingest it without guessing
    where it came from.
    """
    from repro.perf.meta import collect_meta

    summary = monitor.summary()
    summary["meta"] = collect_meta()
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return summary
