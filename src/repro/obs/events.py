"""Typed structured trace events.

Every notable decision the simulator makes — a VM placement, a migration,
a DVFS cap, a DoD-goal update, a campaign cell starting — is described by
one :class:`TraceEvent` subclass. Events are plain flat dataclasses so
they serialise losslessly to JSON dictionaries (:meth:`TraceEvent.
to_dict`) and back (:func:`event_from_dict`), which is what the JSONL
sink writes and ``repro trace`` reads.

The ``t`` field is the simulation clock (seconds from run start) for
engine/control events, and elapsed wall-clock seconds since campaign
start for the ``cell_*`` events (a campaign has no single simulation
clock).

Subclassing :class:`TraceEvent` with a ``kind`` automatically registers
the type for round-tripping.
"""

from __future__ import annotations

import gzip
import json
import os
import zlib
from dataclasses import dataclass, fields
from typing import IO, Any, ClassVar, Dict, Iterator, List, Optional, Type

from repro.errors import ConfigurationError

#: kind -> event class, populated by ``__init_subclass__``.
EVENT_TYPES: Dict[str, Type["TraceEvent"]] = {}

#: Base fields that exist purely for causal provenance. They default to
#: 0 ("absent") and are omitted from the serialised form when 0, so
#: traces written before — or without — the provenance layer keep their
#: exact shape and round-trip losslessly.
PROVENANCE_FIELDS = ("eid", "span_id", "cause_id")


@dataclass
class TraceEvent:
    """Base event: a timestamp plus a ``kind`` discriminator.

    Every event also carries three optional provenance ids (all 0 when
    unused): ``eid`` — a unique id the bus assigns at emit time;
    ``span_id`` — the enclosing :class:`SpanStartEvent`'s ``eid``;
    ``cause_id`` — the ``eid`` of the event that triggered this one.
    The bus stamps ``span_id``/``cause_id`` from the ambient
    :mod:`repro.obs.spans` context, so emit sites need no plumbing.
    """

    t: float = 0.0
    eid: int = 0
    span_id: int = 0
    cause_id: int = 0

    kind: ClassVar[str] = "event"

    #: Subclasses may list fields here to omit from the serialised form
    #: when falsy (like the provenance ids), for fields that are only
    #: meaningful on some emissions — e.g. a frame's node roster, which
    #: only the first frame of a run carries.
    OMIT_EMPTY_FIELDS: ClassVar[tuple] = ()

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        kind = cls.__dict__.get("kind")
        if kind:
            EVENT_TYPES[kind] = cls

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-ready dictionary (``kind`` first for readability).

        Provenance ids are omitted while 0 so un-instrumented events
        keep the pre-provenance wire shape.
        """
        out: Dict[str, Any] = {"kind": self.kind}
        omit = self.OMIT_EMPTY_FIELDS
        for f in fields(self):
            value = getattr(self, f.name)
            if not value and (f.name in PROVENANCE_FIELDS or f.name in omit):
                continue
            out[f.name] = value
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), separators=(",", ":"))


# ----------------------------------------------------------------------
# Engine / run lifecycle
# ----------------------------------------------------------------------
@dataclass
class RunStartEvent(TraceEvent):
    """Emitted once when a simulation begins stepping."""

    policy: str = ""
    n_nodes: int = 0
    steps_total: int = 0

    kind: ClassVar[str] = "run_start"


@dataclass
class DayStartEvent(TraceEvent):
    """A simulated day boundary (metric windows reset, plans refresh)."""

    day_index: int = 0

    kind: ClassVar[str] = "day_start"


@dataclass
class SocCrossingEvent(TraceEvent):
    """A node's battery crossed the low-SoC line (``direction`` is
    ``"down"`` entering the low region, ``"up"`` leaving it)."""

    node: str = ""
    soc: float = 0.0
    threshold: float = 0.0
    direction: str = "down"

    kind: ClassVar[str] = "soc_crossing"


@dataclass
class BrownoutEvent(TraceEvent):
    """A server lost power mid-window (unserved deficit)."""

    node: str = ""
    shortfall_w: float = 0.0

    kind: ClassVar[str] = "brownout"


@dataclass
class BatteryConfigEvent(TraceEvent):
    """One battery's aging-relevant parameters, emitted once per run.

    Carries exactly what :class:`~repro.metrics.snapshot.AgingMetrics`
    needs (``CAP_nom`` and the reference rate), so a trace is
    self-contained for offline metric attribution.
    """

    node: str = ""
    lifetime_ah_throughput: float = 0.0
    reference_current: float = 0.0
    capacity_ah: float = 0.0
    cutoff_soc: float = 0.0

    kind: ClassVar[str] = "battery_config"


@dataclass
class BatterySampleEvent(TraceEvent):
    """One battery sensor poll (Table 2): the exact sample the node's
    :class:`~repro.metrics.tracker.MetricsTracker` folded.

    Emitted at the tracker's own observation point so an offline replay
    of a trace reconstructs the per-battery aging metrics bit-for-bit
    (JSON floats round-trip losslessly through ``repr``).
    """

    node: str = ""
    soc: float = 0.0
    current_a: float = 0.0
    dt: float = 0.0

    kind: ClassVar[str] = "battery_sample"


@dataclass
class TraceMetaEvent(TraceEvent):
    """Trace header emitted once per run, before ``run_start``.

    Declares the wire-schema version and the telemetry policy the run
    was recorded under so replay tools (``repro health``/``trace``/
    ``validate``) know what they are reading — mixed-version or
    mixed-tier traces fail loudly instead of misparsing.
    """

    schema: int = 0
    telemetry: str = ""
    stepper: str = ""
    n_nodes: int = 0

    kind: ClassVar[str] = "trace_meta"


@dataclass
class BatteryFrameEvent(TraceEvent):
    """One step of battery telemetry for the whole fleet, columnar.

    Replaces ``n`` per-node :class:`BatterySampleEvent` lines with a
    single event carrying comma-joined integer columns: SoC and current
    are quantized (SoC x 1e8, current x 1e6 A) and delta-encoded
    against the previous frame, so steady-state columns compress to a
    few bytes per node.  The node roster (``nodes``) is carried only on
    the first frame of a run (``seq == 0``) and omitted afterwards.

    Frames are *lossy at the quantum* (5e-9 SoC / 5e-7 A worst-case
    round error — far inside the 1e-6 health-replay contract); per-node
    sample events remain the lossless format.
    """

    n: int = 0
    dt: float = 0.0
    seq: int = 0
    nodes: str = ""
    soc: str = ""
    cur: str = ""

    kind: ClassVar[str] = "battery_frame"
    OMIT_EMPTY_FIELDS: ClassVar[tuple] = ("nodes",)


@dataclass
class FleetSummaryEvent(TraceEvent):
    """Per-step fleet aggregate for the ``summary`` telemetry tier.

    Carries the distributional SoC picture plus step charge/discharge
    totals and the top-K aging outliers (``"node:score"`` pairs by the
    Eq.-6 composite), so fleet-level alerting still has a signal when
    per-node telemetry is turned off.
    """

    n: int = 0
    dt: float = 0.0
    soc_mean: float = 0.0
    soc_min: float = 0.0
    soc_max: float = 0.0
    soc_p10: float = 0.0
    discharge_ah: float = 0.0
    charge_ah: float = 0.0
    top: str = ""

    kind: ClassVar[str] = "fleet_summary"


@dataclass
class AlertEvent(TraceEvent):
    """A declarative alert rule fired (or cleared) for a key.

    ``rule`` names the :class:`~repro.obs.alerts.AlertRule`; ``node`` is
    the rule's key (a node name, or a synthetic key like ``"campaign"``).
    ``cleared`` marks the hysteresis release of a previously active
    alert.
    """

    rule: str = ""
    node: str = ""
    severity: str = "warning"
    value: float = 0.0
    threshold: float = 0.0
    cleared: bool = False
    message: str = ""

    kind: ClassVar[str] = "alert"


# ----------------------------------------------------------------------
# Placement / migration (cluster level)
# ----------------------------------------------------------------------
@dataclass
class VMPlacedEvent(TraceEvent):
    """A VM was placed on a node at deployment time."""

    vm: str = ""
    node: str = ""

    kind: ClassVar[str] = "vm_placed"


@dataclass
class VMMigratedEvent(TraceEvent):
    """A VM live-migrated between nodes."""

    vm: str = ""
    source: str = ""
    dest: str = ""

    kind: ClassVar[str] = "vm_migrated"


# ----------------------------------------------------------------------
# Slowdown monitor / policy control (intent level)
# ----------------------------------------------------------------------
@dataclass
class SlowdownActionEvent(TraceEvent):
    """The Fig.-9 monitor acted on a stressed node.

    ``action`` is one of ``migrated``/``throttled``/``capped``/``parked``;
    ``cap_w`` is the discharge cap left on the node afterwards;
    ``trigger`` names which check tripped (``ddt``/``dr``/``ration``).
    """

    node: str = ""
    action: str = ""
    soc: float = 0.0
    draw_w: float = 0.0
    cap_w: float = 0.0
    trigger: str = ""

    kind: ClassVar[str] = "slowdown_action"


@dataclass
class DvfsCapEvent(TraceEvent):
    """A server stepped down the DVFS ladder (frequency capped)."""

    node: str = ""
    freq_index: int = 0
    freq: float = 1.0

    kind: ClassVar[str] = "dvfs_cap"


@dataclass
class DvfsUncapEvent(TraceEvent):
    """A recovered server stepped back up the DVFS ladder."""

    node: str = ""
    freq_index: int = 0
    freq: float = 1.0

    kind: ClassVar[str] = "dvfs_uncap"


@dataclass
class EvacuationEvent(TraceEvent):
    """VMs were moved off a node about to park."""

    node: str = ""
    moved: int = 0

    kind: ClassVar[str] = "evacuation"


@dataclass
class ParkEvent(TraceEvent):
    """A server was put to policy sleep (``reason``: ``slowdown`` or
    ``consolidation``)."""

    node: str = ""
    reason: str = ""

    kind: ClassVar[str] = "park"


@dataclass
class WakeEvent(TraceEvent):
    """A parked server was brought back as supply recovered."""

    node: str = ""
    reason: str = ""

    kind: ClassVar[str] = "wake"


@dataclass
class ConsolidationEvent(TraceEvent):
    """One BAAT consolidation pass (cluster-wide plan)."""

    supportable: int = 0
    n_active: int = 0
    n_victims: int = 0

    kind: ClassVar[str] = "consolidation"


@dataclass
class DoDGoalEvent(TraceEvent):
    """Planned aging recomputed a node's Eq.-7 DoD goal."""

    node: str = ""
    goal: float = 0.0
    threshold: float = 0.0
    floor: float = 0.0

    kind: ClassVar[str] = "dod_goal"


# ----------------------------------------------------------------------
# Spans (causal intervals)
# ----------------------------------------------------------------------
@dataclass
class SpanStartEvent(TraceEvent):
    """A long-lived causal interval opened (see :mod:`repro.obs.spans`).

    The span's id *is* this event's ``eid`` (``span_id`` is set to the
    same value so the start line is self-describing). ``parent_id``
    links to an enclosing span's start ``eid`` (0 at top level), and
    ``scope`` names the clock domain: ``"run"`` spans use the simulation
    clock, ``"campaign"`` spans wall-clock seconds since campaign start.
    """

    span: str = ""
    node: str = ""
    parent_id: int = 0
    scope: str = "run"

    kind: ClassVar[str] = "span_start"


@dataclass
class SpanEndEvent(TraceEvent):
    """A span closed; ``span_id`` names the matching :class:`SpanStartEvent`."""

    span: str = ""
    node: str = ""
    scope: str = "run"
    duration_s: float = 0.0

    kind: ClassVar[str] = "span_end"


# ----------------------------------------------------------------------
# Campaign runner
# ----------------------------------------------------------------------
@dataclass
class CellStartEvent(TraceEvent):
    """A campaign cell began executing (not served from cache)."""

    label: str = ""

    kind: ClassVar[str] = "cell_start"


@dataclass
class CellCacheHitEvent(TraceEvent):
    """A campaign cell was served from the on-disk result cache."""

    label: str = ""

    kind: ClassVar[str] = "cell_cache_hit"


@dataclass
class CellDedupeEvent(TraceEvent):
    """A campaign cell joined an identical in-flight execution.

    Emitted by the campaign service daemon when a submitted cell shares
    its cache key with a cell another client is already running: the
    follower waits for that execution instead of starting its own.
    """

    label: str = ""

    kind: ClassVar[str] = "cell_dedupe"


@dataclass
class CellRetryEvent(TraceEvent):
    """A campaign cell attempt failed and is being retried."""

    label: str = ""
    attempt: int = 0
    error: str = ""

    kind: ClassVar[str] = "cell_retry"


@dataclass
class CellFinishEvent(TraceEvent):
    """A campaign cell finished (successfully or not)."""

    label: str = ""
    ok: bool = True
    attempts: int = 0
    wall_s: float = 0.0

    kind: ClassVar[str] = "cell_finish"


@dataclass
class CellHealthEvent(TraceEvent):
    """Per-cell aging rollup: the cell's fleet health in one event.

    Emitted once per executed cell of a traced campaign — computed from
    a live :class:`~repro.obs.health.FleetHealthModel` for inline cells
    and from the worker-shipped health summary for pooled cells — so a
    campaign-level monitor can aggregate aging across thousands of cells
    without re-folding every battery sample.
    """

    label: str = ""
    n_batteries: int = 0
    n_samples: int = 0
    score_mean: float = 0.0
    score_max: float = 0.0
    worst: str = ""
    nat_max: float = 0.0
    ddt_max: float = 0.0
    dr_max: float = 0.0
    alerts: int = 0

    kind: ClassVar[str] = "cell_health"


@dataclass
class CampaignStartEvent(TraceEvent):
    """A campaign began: the denominator every progress view needs."""

    n_cells: int = 0
    n_workers: int = 0

    kind: ClassVar[str] = "campaign_start"


@dataclass
class CampaignFinishEvent(TraceEvent):
    """A campaign completed; totals mirror the returned report."""

    n_cells: int = 0
    ok: int = 0
    failed: int = 0
    cached: int = 0
    executed: int = 0
    wall_s: float = 0.0

    kind: ClassVar[str] = "campaign_finish"


# ----------------------------------------------------------------------
# Perf observatory
# ----------------------------------------------------------------------
@dataclass
class PerfRegressionEvent(TraceEvent):
    """A benchmark metric fell outside its rolling perf-history baseline.

    Emitted by ``repro perf check`` (:mod:`repro.perf.regression`) for
    each confirmed regression: ``metric`` is the flattened series name
    (``engine/n48/fleet_steps_per_s``), ``baseline``/``sigma`` the
    robust median ± MAD window it was judged against, ``deviation`` how
    many sigmas *worse* the new ``value`` is, ``direction`` which way is
    better for this metric, and ``sha`` the commit that measured it.
    """

    metric: str = ""
    value: float = 0.0
    baseline: float = 0.0
    sigma: float = 0.0
    deviation: float = 0.0
    direction: str = ""
    sha: str = ""

    kind: ClassVar[str] = "perf_regression"


# ----------------------------------------------------------------------
# Round-tripping
# ----------------------------------------------------------------------
def event_from_dict(data: Dict[str, Any]) -> TraceEvent:
    """Rebuild a typed event from its :meth:`TraceEvent.to_dict` form.

    Unknown kinds raise :class:`~repro.errors.ConfigurationError`;
    unknown *fields* of a known kind are dropped, so newer traces stay
    readable by older code.
    """
    kind = data.get("kind")
    cls = EVENT_TYPES.get(kind or "")
    if cls is None:
        raise ConfigurationError(f"unknown trace event kind {kind!r}")
    known = {f.name for f in fields(cls)}
    return cls(**{k: v for k, v in data.items() if k in known})


def read_events(path: str, strict: bool = True) -> List[TraceEvent]:
    """Read a whole JSONL trace (all rotated segments) into typed events.

    Test helper only: this materializes the entire trace in memory.
    Replay consumers (CLI subcommands, health/provenance models,
    exporters) must stream via :func:`iter_events` instead so multi-GB
    rotated traces never build a full in-memory list.
    """
    return list(iter_events(path, strict=strict))


def segment_path(base: str, index: int) -> str:
    """Path of rotation segment ``index`` for a trace at ``base``.

    Segment 0 is the base path itself; later segments insert the index
    before any ``.gz`` suffix (``trace.jsonl.1``, ``trace.jsonl.1.gz``)
    so sort order matches write order without any renaming on rollover.
    """
    if index == 0:
        return base
    if base.endswith(".gz"):
        return f"{base[:-3]}.{index}.gz"
    return f"{base}.{index}"


def trace_segments(path: str) -> List[str]:
    """All on-disk segments of a possibly rotated/gzipped trace, in order.

    Accepts the path the trace was requested at: if ``path`` itself is
    missing but ``path + ".gz"`` exists (the sink compressed it), the
    gzipped family is used. Raises :class:`FileNotFoundError` when no
    first segment exists.
    """
    base = path
    if not os.path.exists(base):
        if not base.endswith(".gz") and os.path.exists(base + ".gz"):
            base = base + ".gz"
        else:
            raise FileNotFoundError(path)
    segments = [base]
    index = 1
    while True:
        candidate = segment_path(base, index)
        if os.path.exists(candidate):
            segments.append(candidate)
        elif not candidate.endswith(".gz") and os.path.exists(candidate + ".gz"):
            segments.append(candidate + ".gz")
        else:
            break
        index += 1
    return segments


def open_trace_segment(path: str) -> IO[str]:
    """Open one trace segment for text reading, gunzipping if needed."""
    if path.endswith(".gz"):
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def iter_trace_lines(path: str) -> Iterator[str]:
    """Stream raw JSONL lines across every rotated/gzipped segment."""
    for segment in trace_segments(path):
        with open_trace_segment(segment) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    yield line


class TraceTailer:
    """Follow-mode reader for a trace that is still being written.

    Unlike :func:`iter_events` (a one-shot replay of a finished trace),
    a tailer is *incremental*: every :meth:`drain` call returns the
    typed events that became readable since the last call and returns
    immediately — the ``repro top`` dashboard polls it on its render
    interval. It follows the same segment families the sink writes:

    - **Plain segments** keep a persistent file handle; partially
      written trailing lines (no ``\\n`` yet) are carried over and
      completed on a later drain, so no event is ever split or dropped.
    - **Gzipped segments** cannot be incrementally appended-read (the
      stream's end marker is missing until close), so each drain
      re-reads the segment from the top, salvages the decodable prefix
      of the unterminated stream, and skips the complete lines already
      returned.
    - **Rotation** is detected by the next segment appearing on disk
      (the sink closes a segment *before* opening its successor, so
      once ``trace.jsonl.N+1`` exists, segment ``N`` is final): the
      tailer finishes the current segment and advances, through as many
      segments as needed per drain.

    A missing first segment is not an error — the tailer waits for the
    writer to create it (``drain`` returns nothing until then), which is
    what lets ``repro top`` be started before the campaign.
    """

    def __init__(self, path: str, strict: bool = False):
        self.path = path
        self.strict = strict
        self.n_events = 0
        self.n_segments_done = 0
        self._base: Optional[str] = None  # resolved segment-family base
        self._seg: Optional[str] = None  # current segment's actual path
        self._index = 0
        self._fh: Optional[IO[str]] = None  # persistent handle (plain only)
        self._carry = ""  # partial trailing line (plain only)
        self._lines_done = 0  # complete lines consumed (gzip only)

    # ------------------------------------------------------------------
    def _resolve(self) -> bool:
        """Find the first segment once the writer has created it."""
        if self._base is not None:
            return True
        base = self.path
        if not os.path.exists(base):
            if base.endswith(".gz") or not os.path.exists(base + ".gz"):
                return False
            base = base + ".gz"
        self._base = base
        self._seg = base
        return True

    def _next_segment(self) -> Optional[str]:
        assert self._base is not None
        candidate = segment_path(self._base, self._index + 1)
        if os.path.exists(candidate):
            return candidate
        if not candidate.endswith(".gz") and os.path.exists(candidate + ".gz"):
            return candidate + ".gz"
        return None

    # ------------------------------------------------------------------
    def _read_plain(self) -> List[str]:
        assert self._seg is not None
        if self._fh is None:
            try:
                self._fh = open(self._seg, "r", encoding="utf-8")
            except OSError:
                return []
        data = self._fh.read()
        if not data:
            return []
        buf = self._carry + data
        lines = buf.split("\n")
        self._carry = lines.pop()  # "" when data ended on a newline
        return lines

    def _read_gzip(self) -> List[str]:
        assert self._seg is not None
        # Raw zlib decompression, not gzip.open: the file-object readers
        # raise EOFError on an unterminated member and discard whatever
        # they had already decoded, whereas the sink's per-event
        # Z_SYNC_FLUSH leaves a byte-aligned prefix that decompressobj
        # recovers as-is — which is the whole point of tailing a segment
        # the writer still has open.
        try:
            with open(self._seg, "rb") as fh:
                raw = fh.read()
        except OSError:
            return []
        decomp = zlib.decompressobj(wbits=31)  # gzip-wrapped stream
        pieces: List[bytes] = []
        try:
            pieces.append(decomp.decompress(raw))
            pieces.append(decomp.flush())
        except zlib.error:
            # Corrupt/partial tail past the sync point: keep the prefix.
            pass
        # Any byte-level truncation lands after the last newline (inside
        # the partial line we drop below), so lossy decoding cannot harm
        # a complete line.
        text = b"".join(pieces).decode("utf-8", errors="replace")
        complete = text.split("\n")[:-1]  # drop the piece after the last \n
        fresh = complete[self._lines_done :]
        self._lines_done = len(complete)
        return fresh

    def _finish_segment(self) -> List[str]:
        """Final lines of a rotated-away (closed, complete) segment."""
        tail: List[str] = []
        if self._seg is not None and self._seg.endswith(".gz"):
            tail = self._read_gzip()
        else:
            tail = self._read_plain()
            # A closed segment ends with a newline; a non-empty carry
            # here means the writer died mid-line — surface it anyway.
            if self._carry.strip():
                tail.append(self._carry)
            self._carry = ""
            if self._fh is not None:
                self._fh.close()
                self._fh = None
        self._lines_done = 0
        self.n_segments_done += 1
        return tail

    def _parse(self, lines: List[str], out: List[TraceEvent]) -> None:
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                event = event_from_dict(json.loads(line))
            except ValueError:
                if self.strict:
                    raise
                continue
            except ConfigurationError:
                if self.strict:
                    raise
                continue
            self.n_events += 1
            out.append(event)

    # ------------------------------------------------------------------
    def drain(self) -> List[TraceEvent]:
        """Every event that became readable since the last drain."""
        out: List[TraceEvent] = []
        if not self._resolve():
            return out
        while True:
            # Check for a successor *before* reading: if one exists, the
            # current segment is already final, so one read gets all of
            # it and we can advance without a re-read race.
            successor = self._next_segment()
            if successor is not None:
                self._parse(self._finish_segment(), out)
                self._seg = successor
                self._index += 1
                continue
            if self._seg is not None and self._seg.endswith(".gz"):
                self._parse(self._read_gzip(), out)
            else:
                self._parse(self._read_plain(), out)
            return out

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def iter_events(path: str, strict: bool = True) -> Iterator[TraceEvent]:
    """Stream typed events from a JSONL trace.

    Rotated segments (``trace.jsonl.1``, ...) and gzipped segments
    (``.gz``) are read transparently, so every replay consumer —
    ``repro trace``/``health``/``explain``, :class:`~repro.obs.health.
    FleetHealthModel` — handles rotated traces for free. With
    ``strict=False``, lines with unknown kinds are skipped instead of
    raising (useful for forward-compatible tooling).
    """
    for line in iter_trace_lines(path):
        data = json.loads(line)
        try:
            yield event_from_dict(data)
        except ConfigurationError:
            if strict:
                raise
