"""Event sinks: where emitted trace events go.

Three implementations cover the spectrum the telemetry layer needs:

- :class:`NullSink` discards everything. Attaching only null sinks keeps
  the bus *disabled*, so instrumented code never allocates an event —
  this is what makes tracing near-free when off.
- :class:`MemorySink` keeps the last ``maxlen`` events in a ring buffer,
  for tests and the ``repro stats`` command.
- :class:`JsonlSink` appends one JSON object per event to a file — the
  durable format ``repro trace`` reads back.
"""

from __future__ import annotations

import gzip
from collections import deque
from typing import IO, Deque, List, Optional

from repro.errors import ConfigurationError
from repro.obs.events import TraceEvent, segment_path
from repro.obs.metrics import REGISTRY

#: Default :class:`MemorySink` ring size. At the BAAT scenario's
#: telemetry rate (6 nodes x 1 sample/min plus control events, roughly
#: 10 events per simulated minute) this holds ~2.5 weeks of events in
#: ~25 MB — ample for any in-memory analysis while keeping a month-long
#: instrumented run from growing without bound. Pass ``maxlen=None``
#: explicitly to opt back into an unbounded buffer.
DEFAULT_MEMORY_SINK_MAXLEN = 262_144


class EventSink:
    """Interface: receives every event emitted on an enabled bus."""

    def emit(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release any resources (idempotent)."""


class NullSink(EventSink):
    """Discards events; does not enable the bus when attached."""

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - never
        # called: a bus with only null sinks stays disabled, and enabled
        # buses skip the loop body for null sinks' no-op emit anyway.
        pass


class MemorySink(EventSink):
    """Ring buffer of the most recent events.

    Bounded by default (:data:`DEFAULT_MEMORY_SINK_MAXLEN`); pass
    ``maxlen=None`` for an unbounded buffer.
    """

    def __init__(self, maxlen: Optional[int] = DEFAULT_MEMORY_SINK_MAXLEN):
        self._buffer: Deque[TraceEvent] = deque(maxlen=maxlen)

    def emit(self, event: TraceEvent) -> None:
        self._buffer.append(event)

    @property
    def events(self) -> List[TraceEvent]:
        """The buffered events, oldest first."""
        return list(self._buffer)

    @property
    def maxlen(self) -> Optional[int]:
        """The ring bound (``None`` = unbounded)."""
        return self._buffer.maxlen

    def clear(self) -> None:
        self._buffer.clear()

    def __len__(self) -> int:
        return len(self._buffer)


class JsonlSink(EventSink):
    """Writes events as JSON Lines to a file path or open text stream.

    File-path targets support size- or event-count-based rotation and
    optional gzip compression, so month-scale instrumented runs do not
    grow one unbounded file:

    - ``compress=True`` (or a target ending in ``.gz``) gzips every
      segment; the effective path gains a ``.gz`` suffix if missing.
    - ``rotate_bytes``/``rotate_events`` roll to a new segment once the
      current one reaches the limit. Segments are named by
      :func:`~repro.obs.events.segment_path` (``trace.jsonl``,
      ``trace.jsonl.1``, ... — index before ``.gz``), in write order,
      with no renames, and every replay reader
      (:func:`~repro.obs.events.iter_events`) walks them transparently.
      ``rotate_bytes`` counts *uncompressed* line bytes, so the limit
      bounds replay-buffer cost, not disk.

    Stream targets accept neither rotation nor compression.
    """

    def __init__(
        self,
        target,
        flush_every: int = 256,
        rotate_bytes: Optional[int] = None,
        rotate_events: Optional[int] = None,
        compress: Optional[bool] = None,
    ):
        self._flush_every = max(1, flush_every)
        self.n_written = 0
        self.bytes_written = 0  # total uncompressed line bytes, all segments
        self.segments_rotated = 0
        self._rotate_bytes = rotate_bytes
        self._rotate_events = rotate_events
        self._segment_index = 0
        self._segment_bytes = 0
        self._segment_events = 0
        if isinstance(target, (str, bytes)):
            base = target.decode() if isinstance(target, bytes) else str(target)
            if compress is None:
                compress = base.endswith(".gz")
            elif compress and not base.endswith(".gz"):
                base += ".gz"
            self._compress = bool(compress)
            self._base: Optional[str] = base
            self._owns_fh = True
            self._fh: IO[str] = self._open_segment(0)
            self.path: Optional[str] = base
        else:
            if rotate_bytes or rotate_events or compress:
                raise ConfigurationError(
                    "JsonlSink rotation/compression requires a file path "
                    "target, not an open stream"
                )
            self._compress = False
            self._base = None
            self._fh = target
            self._owns_fh = False
            self.path = getattr(target, "name", None)

    def _open_segment(self, index: int) -> IO[str]:
        assert self._base is not None
        path = segment_path(self._base, index)
        if self._compress:
            return gzip.open(path, "wt", encoding="utf-8")
        return open(path, "w", encoding="utf-8")

    @property
    def segment_paths(self) -> List[str]:
        """Paths of every segment written so far, in write order."""
        if self._base is None:
            return [self.path] if self.path else []
        return [
            segment_path(self._base, i) for i in range(self._segment_index + 1)
        ]

    def _should_rotate(self) -> bool:
        if self._rotate_bytes and self._segment_bytes >= self._rotate_bytes:
            return True
        if self._rotate_events and self._segment_events >= self._rotate_events:
            return True
        return False

    def emit(self, event: TraceEvent) -> None:
        line = event.to_json()
        self._fh.write(line)
        self._fh.write("\n")
        self.n_written += 1
        line_bytes = len(line) + 1
        self.bytes_written += line_bytes
        self._segment_bytes += line_bytes
        self._segment_events += 1
        if REGISTRY.enabled:
            REGISTRY.counter("obs/sink_bytes").inc(line_bytes)
        if self.n_written % self._flush_every == 0:
            self._fh.flush()
        if self._owns_fh and self._should_rotate():
            self._fh.close()
            self._segment_index += 1
            self._segment_bytes = 0
            self._segment_events = 0
            self._fh = self._open_segment(self._segment_index)
            self.segments_rotated += 1
            if REGISTRY.enabled:
                REGISTRY.counter("obs/segments_rotated").inc()

    def close(self) -> None:
        if self._fh.closed:
            return
        self._fh.flush()
        if self._owns_fh:
            self._fh.close()
