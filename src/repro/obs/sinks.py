"""Event sinks: where emitted trace events go.

Three implementations cover the spectrum the telemetry layer needs:

- :class:`NullSink` discards everything. Attaching only null sinks keeps
  the bus *disabled*, so instrumented code never allocates an event —
  this is what makes tracing near-free when off.
- :class:`MemorySink` keeps the last ``maxlen`` events in a ring buffer,
  for tests and the ``repro stats`` command.
- :class:`JsonlSink` appends one JSON object per event to a file — the
  durable format ``repro trace`` reads back.
"""

from __future__ import annotations

import io
from collections import deque
from typing import Deque, List, Optional

from repro.obs.events import TraceEvent

#: Default :class:`MemorySink` ring size. At the BAAT scenario's
#: telemetry rate (6 nodes x 1 sample/min plus control events, roughly
#: 10 events per simulated minute) this holds ~2.5 weeks of events in
#: ~25 MB — ample for any in-memory analysis while keeping a month-long
#: instrumented run from growing without bound. Pass ``maxlen=None``
#: explicitly to opt back into an unbounded buffer.
DEFAULT_MEMORY_SINK_MAXLEN = 262_144


class EventSink:
    """Interface: receives every event emitted on an enabled bus."""

    def emit(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release any resources (idempotent)."""


class NullSink(EventSink):
    """Discards events; does not enable the bus when attached."""

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - never
        # called: a bus with only null sinks stays disabled, and enabled
        # buses skip the loop body for null sinks' no-op emit anyway.
        pass


class MemorySink(EventSink):
    """Ring buffer of the most recent events.

    Bounded by default (:data:`DEFAULT_MEMORY_SINK_MAXLEN`); pass
    ``maxlen=None`` for an unbounded buffer.
    """

    def __init__(self, maxlen: Optional[int] = DEFAULT_MEMORY_SINK_MAXLEN):
        self._buffer: Deque[TraceEvent] = deque(maxlen=maxlen)

    def emit(self, event: TraceEvent) -> None:
        self._buffer.append(event)

    @property
    def events(self) -> List[TraceEvent]:
        """The buffered events, oldest first."""
        return list(self._buffer)

    @property
    def maxlen(self) -> Optional[int]:
        """The ring bound (``None`` = unbounded)."""
        return self._buffer.maxlen

    def clear(self) -> None:
        self._buffer.clear()

    def __len__(self) -> int:
        return len(self._buffer)


class JsonlSink(EventSink):
    """Writes events as JSON Lines to a file path or open text stream."""

    def __init__(self, target, flush_every: int = 256):
        if isinstance(target, (str, bytes)):
            self._fh = open(target, "w", encoding="utf-8")
            self._owns_fh = True
            self.path: Optional[str] = str(target)
        else:
            self._fh: io.TextIOBase = target
            self._owns_fh = False
            self.path = getattr(target, "name", None)
        self._flush_every = max(1, flush_every)
        self.n_written = 0

    def emit(self, event: TraceEvent) -> None:
        self._fh.write(event.to_json())
        self._fh.write("\n")
        self.n_written += 1
        if self.n_written % self._flush_every == 0:
            self._fh.flush()

    def close(self) -> None:
        if self._fh.closed:
            return
        self._fh.flush()
        if self._owns_fh:
            self._fh.close()
