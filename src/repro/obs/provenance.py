"""Causal provenance: rebuild the decision DAG from the event stream.

:class:`ProvenanceIndex` is an :class:`~repro.obs.sinks.EventSink` (like
:class:`~repro.obs.health.FleetHealthModel`) that works identically
live on the bus or replaying a JSONL trace (:meth:`ProvenanceIndex.
from_trace`). It indexes every event that can participate in a causal
chain — control actions, alerts, SoC crossings, spans — by the ``eid``
the bus stamped, and resolves chains by walking ``cause_id`` links with
``span_id``/``parent_id`` fallbacks::

    DVFS cap on node batt03 ← alert dr_reserve_exhaustion ← span
    deep_discharge opened ← SoC crossing down 38.0 %

which is exactly the paper's Fig.-9 decision tree read backwards: the
monitor acted *because* a rule tripped *because* the battery entered a
deep-discharge excursion.

The module also hosts :func:`validate_trace`, the schema/monotonicity/
span-matching checker behind ``repro trace validate``. Validation works
on the raw JSON lines (not typed events) so it can flag unknown fields
and type drift that :func:`~repro.obs.events.event_from_dict`
deliberately tolerates.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Iterable, List, Optional, Tuple, Type

from repro.obs.events import (
    EVENT_TYPES,
    TraceEvent,
    iter_events,
    open_trace_segment,
    trace_segments,
)
from repro.obs.metrics import MetricRegistry
from repro.obs.sinks import EventSink
from repro.obs.telemetry import SCHEMA_VERSION

#: Kinds kept in the eid index. High-volume telemetry (battery samples,
#: day starts) is counted but not stored, so a month-scale trace indexes
#: in O(control decisions), not O(sensor polls).
INDEXED_KINDS = frozenset(
    {
        "run_start",
        "soc_crossing",
        "brownout",
        "alert",
        "vm_placed",
        "vm_migrated",
        "slowdown_action",
        "dvfs_cap",
        "dvfs_uncap",
        "evacuation",
        "park",
        "wake",
        "consolidation",
        "dod_goal",
        "span_start",
        "span_end",
        "cell_start",
        "cell_cache_hit",
        "cell_retry",
        "cell_finish",
        "cell_health",
        "campaign_start",
        "campaign_finish",
    }
)

#: Kinds that represent a control decision acting on the cluster.
ACTION_KINDS = (
    "slowdown_action",
    "vm_migrated",
    "dvfs_cap",
    "dvfs_uncap",
    "evacuation",
    "park",
    "wake",
    "consolidation",
    "dod_goal",
)

#: The subset ``repro explain`` walks by default (the Fig.-9 outcomes).
DEFAULT_EXPLAIN_KINDS = (
    "slowdown_action",
    "vm_migrated",
    "dvfs_cap",
    "park",
    "wake",
    "evacuation",
)

#: ``cell_*`` events run on the campaign wall clock, not the sim clock.
CAMPAIGN_EVENT_KINDS = frozenset(
    {
        "cell_start",
        "cell_cache_hit",
        "cell_retry",
        "cell_finish",
        "cell_health",
        "campaign_start",
        "campaign_finish",
    }
)


@dataclass
class SpanRecord:
    """One span interval reconstructed from start/end events."""

    span_id: int
    name: str
    node: str
    scope: str
    t_start: float
    parent_id: int = 0
    cause_id: int = 0
    t_end: Optional[float] = None
    duration_s: Optional[float] = None
    end_eid: int = 0

    @property
    def open(self) -> bool:
        return self.t_end is None


@dataclass
class RunInfo:
    """One simulation run seen in the stream (for display scoping)."""

    start_eid: int
    policy: str
    t_start: float
    n_nodes: int = 0
    n_actions: int = 0


class ProvenanceIndex(EventSink):
    """Rebuilds the causal DAG from events, live or from a trace."""

    def __init__(self) -> None:
        self.n_events = 0
        self.event_counts: Dict[str, int] = {}
        self.events: Dict[int, TraceEvent] = {}
        self.spans: Dict[int, SpanRecord] = {}
        self.actions: List[int] = []
        self.runs: List[RunInfo] = []
        #: ``span/<name>`` duration histograms, same shape the live
        #: registry exports to OpenMetrics.
        self.registry = MetricRegistry()
        self.registry.enabled = True

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    @classmethod
    def from_trace(cls, path: str, strict: bool = False) -> "ProvenanceIndex":
        """Replay a JSONL trace (rotated/gzipped segments included)."""
        index = cls()
        for event in iter_events(path, strict=strict):
            index.emit(event)
        return index

    def emit(self, event: TraceEvent) -> None:
        self.n_events += 1
        kind = event.kind
        self.event_counts[kind] = self.event_counts.get(kind, 0) + 1
        if kind not in INDEXED_KINDS or not event.eid:
            return
        self.events[event.eid] = event
        if kind == "run_start":
            self.runs.append(
                RunInfo(
                    start_eid=event.eid,
                    policy=getattr(event, "policy", ""),
                    t_start=event.t,
                    n_nodes=getattr(event, "n_nodes", 0),
                )
            )
        elif kind == "span_start":
            self.spans[event.eid] = SpanRecord(
                span_id=event.eid,
                name=getattr(event, "span", ""),
                node=getattr(event, "node", ""),
                scope=getattr(event, "scope", "run"),
                t_start=event.t,
                parent_id=getattr(event, "parent_id", 0),
                cause_id=event.cause_id,
            )
        elif kind == "span_end":
            record = self.spans.get(event.span_id)
            if record is not None and record.open:
                record.t_end = event.t
                record.duration_s = getattr(
                    event, "duration_s", event.t - record.t_start
                )
                record.end_eid = event.eid
                self.registry.histogram(f"span/{record.name}").observe(
                    record.duration_s
                )
        elif kind in ACTION_KINDS:
            self.actions.append(event.eid)
            if self.runs:
                self.runs[-1].n_actions += 1

    # ------------------------------------------------------------------
    # Chain walking
    # ------------------------------------------------------------------
    def _next_link(self, event: TraceEvent) -> int:
        """The eid one step up the causal chain (0 at a root)."""
        if event.cause_id:
            return event.cause_id
        parent = getattr(event, "parent_id", 0)
        if parent:
            return parent
        if event.span_id and event.span_id != event.eid:
            return event.span_id
        return 0

    def chain(self, eid: int) -> List[TraceEvent]:
        """The causal chain from ``eid`` back to its root, inclusive.

        Walks ``cause_id`` first, then a span-start's ``parent_id``,
        then the enclosing span — with a cycle guard, since ids come
        from (possibly hand-edited) trace files.
        """
        out: List[TraceEvent] = []
        seen: set = set()
        current = self.events.get(eid)
        while current is not None and current.eid not in seen:
            seen.add(current.eid)
            out.append(current)
            current = self.events.get(self._next_link(current))
        return out

    def trigger_of(self, chain: List[TraceEvent]) -> str:
        """Classify a chain by what tripped it (for aggregate stats).

        Preference order: the first alert rule in the chain (the Fig.-9
        DDT/DR checks are alert rules), then the monitor's own recorded
        trigger, then the first enclosing span, then the root kind.
        """
        if not chain:
            return "unattributed"
        for event in chain:
            if event.kind == "alert":
                return f"alert:{getattr(event, 'rule', '?')}"
        trigger = getattr(chain[0], "trigger", "")
        if trigger:
            return f"monitor:{trigger}"
        for event in chain[1:]:
            if event.kind == "span_start":
                return f"span:{getattr(event, 'span', '?')}"
            if event.kind == "consolidation":
                return "consolidation"
            if event.kind == "dod_goal":
                return "dod_goal"
        if len(chain) > 1:
            return chain[-1].kind
        return "unattributed"

    def _matches_node(self, event: TraceEvent, node: str) -> bool:
        for attr in ("node", "source", "dest"):
            if getattr(event, attr, None) == node:
                return True
        return False

    def action_chains(
        self,
        kinds: Optional[Iterable[str]] = None,
        node: Optional[str] = None,
    ) -> List[List[TraceEvent]]:
        """Chains for every recorded action, filtered by kind/node."""
        wanted = set(kinds) if kinds is not None else set(DEFAULT_EXPLAIN_KINDS)
        out = []
        for eid in self.actions:
            event = self.events[eid]
            if event.kind not in wanted:
                continue
            if node and not self._matches_node(event, node):
                continue
            out.append(self.chain(eid))
        return out

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def action_summary(self) -> Dict[str, Dict[str, int]]:
        """``{action kind: {trigger label: count}}`` over all actions."""
        summary: Dict[str, Dict[str, int]] = {}
        for eid in self.actions:
            event = self.events[eid]
            label = self.trigger_of(self.chain(eid))
            per_kind = summary.setdefault(event.kind, {})
            per_kind[label] = per_kind.get(label, 0) + 1
        return summary

    def span_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-span-name interval stats (closed durations + open count)."""
        stats: Dict[str, Dict[str, float]] = {}
        for name, hist in sorted(self.registry.snapshot()["histograms"].items()):
            if name.startswith("span/"):
                stats[name[len("span/") :]] = dict(hist, open=0)
        for record in self.spans.values():
            if record.open:
                entry = stats.setdefault(
                    record.name,
                    {"count": 0, "total": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0},
                )
                entry["open"] = entry.get("open", 0) + 1
        return stats

    def open_spans(self) -> List[SpanRecord]:
        return [r for r in self.spans.values() if r.open]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    @staticmethod
    def _fmt_t(event: TraceEvent) -> str:
        scope = getattr(event, "scope", "run")
        if event.kind in CAMPAIGN_EVENT_KINDS or scope == "campaign":
            return f"[+{event.t:.1f}s]"
        day = int(event.t // 86400.0)
        tod = event.t - day * 86400.0
        return f"[d{day} {int(tod) // 3600:02d}:{int(tod) % 3600 // 60:02d}]"

    @staticmethod
    def _pct(x: float) -> str:
        return f"{100.0 * x:.1f} %"

    def describe_event(self, event: TraceEvent) -> str:
        """One human-readable line for a chain element."""
        k = event.kind
        g = lambda a, d=None: getattr(event, a, d)  # noqa: E731
        if k == "soc_crossing":
            body = (
                f"SoC crossing {g('direction')} {self._pct(g('soc', 0.0))} "
                f"on {g('node')} (line {self._pct(g('threshold', 0.0))})"
            )
        elif k == "alert":
            state = "cleared" if g("cleared") else g("severity", "warning")
            body = (
                f"alert {g('rule')} [{state}] on {g('node')} "
                f"(value {g('value', 0.0):.4g}, threshold {g('threshold', 0.0):.4g})"
            )
        elif k == "span_start":
            body = f"span {g('span')} opened on {g('node') or 'cluster'}"
        elif k == "span_end":
            body = (
                f"span {g('span')} closed on {g('node') or 'cluster'} "
                f"after {g('duration_s', 0.0):.0f} s"
            )
        elif k == "slowdown_action":
            trigger = g("trigger", "")
            suffix = f" [trigger {trigger}]" if trigger else ""
            body = (
                f"slowdown {g('action')} on {g('node')} "
                f"(SoC {self._pct(g('soc', 0.0))}, draw {g('draw_w', 0.0):.0f} W)"
                f"{suffix}"
            )
        elif k == "dvfs_cap":
            body = (
                f"DVFS cap on {g('node')} -> step {g('freq_index')} "
                f"({self._pct(g('freq', 1.0))} freq)"
            )
        elif k == "dvfs_uncap":
            body = (
                f"DVFS uncap on {g('node')} -> step {g('freq_index')} "
                f"({self._pct(g('freq', 1.0))} freq)"
            )
        elif k == "vm_migrated":
            body = f"migration {g('vm')}: {g('source')} -> {g('dest')}"
        elif k == "vm_placed":
            body = f"placement {g('vm')} -> {g('node')}"
        elif k == "park":
            body = f"park {g('node')} ({g('reason')})"
        elif k == "wake":
            body = f"wake {g('node')} ({g('reason')})"
        elif k == "evacuation":
            body = f"evacuation of {g('node')} ({g('moved')} VM(s))"
        elif k == "consolidation":
            body = (
                f"consolidation: {g('supportable')} supportable, "
                f"{g('n_active')} active, {g('n_victims')} victim(s)"
            )
        elif k == "dod_goal":
            body = (
                f"DoD goal on {g('node')}: {g('goal', 0.0):.3f} "
                f"(threshold {self._pct(g('threshold', 0.0))})"
            )
        elif k == "brownout":
            body = f"brownout on {g('node')} ({g('shortfall_w', 0.0):.0f} W short)"
        elif k == "run_start":
            body = f"run start (policy {g('policy')}, {g('n_nodes')} nodes)"
        elif k.startswith("cell_"):
            body = f"{k} {g('label', '')}"
        else:
            body = k
        return f"{self._fmt_t(event)} {body} (#{event.eid})"

    def render_chain(self, chain: List[TraceEvent]) -> List[str]:
        """Chain as indented ``←`` lines, action first."""
        lines = []
        for depth, event in enumerate(chain):
            prefix = "  " * depth + ("← " if depth else "")
            lines.append(prefix + self.describe_event(event))
        return lines


# ----------------------------------------------------------------------
# Trace validation (`repro trace validate`)
# ----------------------------------------------------------------------
@dataclass
class TraceViolation:
    """One broken invariant at a specific trace line."""

    segment: str
    line_no: int
    message: str

    def __str__(self) -> str:
        return f"{self.segment}:{self.line_no}: {self.message}"


@dataclass
class TraceValidation:
    """Outcome of :func:`validate_trace`."""

    path: str
    n_lines: int = 0
    n_valid: int = 0
    n_runs: int = 0
    kind_counts: Dict[str, int] = field(default_factory=dict)
    violations: List[TraceViolation] = field(default_factory=list)
    open_spans: List[Tuple[int, str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} violation(s)"
        return (
            f"{self.path}: {self.n_valid}/{self.n_lines} valid event line(s), "
            f"{self.n_runs} run(s), {len(self.open_spans)} span(s) left open "
            f"-> {status}"
        )


def _field_type_ok(value: Any, default: Any) -> bool:
    """Does ``value`` fit the field whose default is ``default``?

    ``bool`` is checked before ``int`` (bool subclasses int); ints are
    accepted where floats are expected (JSON does not keep ``2.0``
    apart from ``2`` after arithmetic upstream).
    """
    if isinstance(default, bool):
        return isinstance(value, bool)
    if isinstance(default, int):
        return isinstance(value, int) and not isinstance(value, bool)
    if isinstance(default, float):
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if isinstance(default, str):
        return isinstance(value, str)
    return True


def _class_field_defaults(cls: Type[TraceEvent]) -> Dict[str, Any]:
    return {f.name: f.default for f in fields(cls)}


def validate_trace(path: str, max_violations: int = 100) -> TraceValidation:
    """Check a JSONL trace's structural invariants line by line.

    - every line parses as a JSON object whose ``kind`` is registered in
      :data:`~repro.obs.events.EVENT_TYPES`, with no unknown fields and
      values matching the dataclass field types;
    - ``t`` is monotonically non-decreasing within each clock domain:
      per simulation run (reset at each ``run_start``) for engine
      events, and across the file for campaign-clock events (``cell_*``,
      campaign-scope spans, campaign alerts);
    - every ``span_end`` names a ``span_start`` seen earlier; spans
      still open at EOF are reported but are not violations (a trace
      may legitimately end mid-excursion).

    Reads rotated/gzipped segments transparently. Collection stops
    after ``max_violations`` so a corrupt gigabyte file fails fast.
    """
    result = TraceValidation(path=path)
    field_cache: Dict[str, Dict[str, Any]] = {}
    open_spans: Dict[int, Tuple[str, str]] = {}
    last_t_run: Optional[float] = None
    last_t_campaign: Optional[float] = None
    last_run_kind = ""
    # battery_frame chain state, reset at every run boundary: the
    # roster size declared by the run's first frame, and the last seq
    # seen (frames delta-encode, so a gap breaks every later frame).
    frame_roster: Optional[int] = None
    last_frame_seq: Optional[int] = None
    truncated = False

    def violation(segment: str, line_no: int, message: str) -> bool:
        result.violations.append(TraceViolation(segment, line_no, message))
        return len(result.violations) >= max_violations

    for segment in trace_segments(path):
        if truncated:
            break
        with open_trace_segment(segment) as fh:
            for line_no, raw in enumerate(fh, start=1):
                raw = raw.strip()
                if not raw:
                    continue
                result.n_lines += 1
                try:
                    data = json.loads(raw)
                except ValueError as exc:
                    truncated = violation(segment, line_no, f"bad JSON: {exc}")
                    if truncated:
                        break
                    continue
                if not isinstance(data, dict):
                    truncated = violation(segment, line_no, "line is not an object")
                    if truncated:
                        break
                    continue
                kind = data.get("kind")
                cls = EVENT_TYPES.get(kind or "")
                if cls is None:
                    truncated = violation(
                        segment, line_no, f"unknown event kind {kind!r}"
                    )
                    if truncated:
                        break
                    continue
                defaults = field_cache.get(kind)  # type: ignore[arg-type]
                if defaults is None:
                    defaults = field_cache[kind] = _class_field_defaults(cls)
                bad = False
                for name, value in data.items():
                    if name == "kind":
                        continue
                    if name not in defaults:
                        truncated = violation(
                            segment,
                            line_no,
                            f"unknown field {name!r} on kind {kind!r}",
                        )
                        bad = True
                        break
                    if not _field_type_ok(value, defaults[name]):
                        truncated = violation(
                            segment,
                            line_no,
                            f"field {name!r} on kind {kind!r} has "
                            f"{type(value).__name__} value {value!r}",
                        )
                        bad = True
                        break
                if truncated:
                    break
                if bad:
                    continue
                result.n_valid += 1
                result.kind_counts[kind] = result.kind_counts.get(kind, 0) + 1

                if kind == "trace_meta":
                    schema = data.get("schema", 0)
                    if schema != SCHEMA_VERSION:
                        truncated = violation(
                            segment,
                            line_no,
                            f"trace schema {schema} is not the supported "
                            f"version {SCHEMA_VERSION}",
                        )
                        if truncated:
                            break
                elif kind == "battery_frame":
                    n = data.get("n", 0)
                    nodes_text = data.get("nodes", "")
                    seq = data.get("seq", 0)
                    frame_problems = []
                    if nodes_text:
                        frame_roster = len(nodes_text.split(","))
                        if seq != 0:
                            frame_problems.append(
                                f"roster carried on mid-run frame seq={seq}"
                            )
                    if frame_roster is None:
                        frame_problems.append(
                            "frame before any roster-carrying frame"
                        )
                    elif n != frame_roster:
                        frame_problems.append(
                            f"n={n} does not match roster of {frame_roster}"
                        )
                    if last_frame_seq is not None and seq != last_frame_seq + 1:
                        frame_problems.append(
                            f"seq {seq} after {last_frame_seq} "
                            f"(delta chain broken)"
                        )
                    last_frame_seq = seq
                    for column in ("soc", "cur"):
                        text = data.get(column, "")
                        count = len(text.split(",")) if text else 0
                        if count != n:
                            frame_problems.append(
                                f"{column} column has {count} entries, "
                                f"expected {n}"
                            )
                    for problem in frame_problems:
                        truncated = violation(
                            segment, line_no, "battery_frame: " + problem
                        )
                        if truncated:
                            break
                    if truncated:
                        break

                t = data.get("t", 0.0)
                scope = data.get("scope", "run")
                campaign_clock = (
                    kind in CAMPAIGN_EVENT_KINDS
                    or (kind in ("span_start", "span_end") and scope == "campaign")
                    or (kind == "alert" and data.get("node") == "campaign")
                )
                if kind == "run_start" or kind == "trace_meta":
                    # Both open a fresh run scope: trace_meta is the
                    # header stamped just before its run_start.
                    last_t_run = t
                    last_run_kind = kind
                    frame_roster = None
                    last_frame_seq = None
                    if kind == "run_start":
                        result.n_runs += 1
                elif campaign_clock:
                    if last_t_campaign is not None and t < last_t_campaign:
                        truncated = violation(
                            segment,
                            line_no,
                            f"campaign clock went backwards: {kind} at t={t} "
                            f"after t={last_t_campaign}",
                        )
                        if truncated:
                            break
                        continue
                    last_t_campaign = t
                else:
                    if last_t_run is not None and t < last_t_run:
                        truncated = violation(
                            segment,
                            line_no,
                            f"run clock went backwards: {kind} at t={t} "
                            f"after {last_run_kind} at t={last_t_run}",
                        )
                        if truncated:
                            break
                        continue
                    if last_t_run is not None or kind != "alert":
                        last_t_run, last_run_kind = t, kind

                if kind == "span_start":
                    span_id = data.get("span_id") or data.get("eid") or 0
                    if not span_id:
                        truncated = violation(
                            segment, line_no, "span_start without a span_id"
                        )
                        if truncated:
                            break
                        continue
                    if span_id in open_spans:
                        truncated = violation(
                            segment,
                            line_no,
                            f"span id {span_id} opened twice",
                        )
                        if truncated:
                            break
                        continue
                    open_spans[span_id] = (
                        data.get("span", ""),
                        data.get("node", ""),
                    )
                elif kind == "span_end":
                    span_id = data.get("span_id", 0)
                    if span_id not in open_spans:
                        truncated = violation(
                            segment,
                            line_no,
                            f"span_end for span id {span_id} "
                            f"({data.get('span', '?')}) without a matching "
                            f"span_start",
                        )
                        if truncated:
                            break
                        continue
                    del open_spans[span_id]

    result.open_spans = [
        (span_id, name, node)
        for span_id, (name, node) in sorted(open_spans.items())
    ]
    return result


__all__ = [
    "ACTION_KINDS",
    "CAMPAIGN_EVENT_KINDS",
    "DEFAULT_EXPLAIN_KINDS",
    "INDEXED_KINDS",
    "ProvenanceIndex",
    "RunInfo",
    "SpanRecord",
    "TraceValidation",
    "TraceViolation",
    "validate_trace",
]
