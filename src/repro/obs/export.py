"""Metric exporters: OpenMetrics/Prometheus text format and CSV.

The :class:`~repro.obs.metrics.MetricRegistry` is a process-local store;
these functions serialise it for the outside world:

- :func:`to_openmetrics` renders the registry in the OpenMetrics text
  exposition format (the `Prometheus scrape format
  <https://prometheus.io/docs/instrumenting/exposition_formats/>`_), so
  a simulated datacenter's telemetry drops straight into the dashboards
  a production fleet would use. :func:`parse_openmetrics` reads it back
  (round-trip tested).
- :func:`to_csv_snapshot` flattens the same snapshot into two-column CSV
  for spreadsheet-grade analysis.
- :class:`PeriodicExportSink` is an :class:`~repro.obs.sinks.EventSink`
  that rewrites an export file every ``interval_s`` of *simulation*
  time, driven by the event stream's timestamps — the moral equivalent
  of a scrape endpoint for a batch simulator.

Histograms are bucket-free summaries, so they export as the
``_count``/``_sum`` pair OpenMetrics defines plus ``_min``/``_max``
gauges (a common pattern for summary-style metrics) and the streaming
p50/p95/p99 estimates as the standard ``{quantile="..."}``-labelled
summary samples.
"""

from __future__ import annotations

import csv
import io
import re
from typing import Any, Dict, Optional

from repro.errors import ConfigurationError
from repro.obs.events import TraceEvent
from repro.obs.metrics import MetricRegistry
from repro.obs.sinks import EventSink

#: OpenMetrics metric names: letters, digits, underscores, colons; the
#: registry's dotted names (``engine.step.place``) map onto this.
_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_FIX = re.compile(r"[^a-zA-Z0-9_:]")

#: Histogram quantile keys and their OpenMetrics ``quantile`` label.
_QUANTILE_KEYS = (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99"))
_QUANTILE_BY_LABEL = {q: key for key, q in _QUANTILE_KEYS}


def sanitize_metric_name(name: str) -> str:
    """Map a registry metric name onto the OpenMetrics charset."""
    out = _NAME_FIX.sub("_", name)
    if not out or not _NAME_OK.match(out):
        out = "_" + out
    return out


def to_openmetrics(registry: MetricRegistry, prefix: str = "repro") -> str:
    """Render a registry snapshot in OpenMetrics text format.

    Counters get the mandated ``_total`` sample suffix, gauges export
    verbatim, histograms as ``_count``/``_sum`` plus ``_min``/``_max``
    gauges. Ends with the required ``# EOF`` marker.
    """
    snap = registry.snapshot()
    lines = []
    for name, value in snap["counters"].items():
        metric = f"{prefix}_{sanitize_metric_name(name)}"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total {value!r}")
    for name, value in snap["gauges"].items():
        metric = f"{prefix}_{sanitize_metric_name(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value!r}")
    for name, hist in snap["histograms"].items():
        metric = f"{prefix}_{sanitize_metric_name(name)}"
        lines.append(f"# TYPE {metric} summary")
        for key, q in _QUANTILE_KEYS:
            if key in hist:
                lines.append(f'{metric}{{quantile="{q}"}} {hist[key]!r}')
        lines.append(f"{metric}_count {hist['count']!r}")
        lines.append(f"{metric}_sum {hist['total']!r}")
        lines.append(f"# TYPE {metric}_min gauge")
        lines.append(f"{metric}_min {hist['min']!r}")
        lines.append(f"# TYPE {metric}_max gauge")
        lines.append(f"{metric}_max {hist['max']!r}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def parse_openmetrics(text: str) -> Dict[str, Dict[str, float]]:
    """Parse :func:`to_openmetrics` output back into typed value maps.

    Returns ``{"counter": {...}, "gauge": {...}, "summary": {...}}``
    keyed by the *exported* metric name (prefix included, ``_total`` and
    summary suffixes stripped). Summaries map to their
    ``count``/``sum``/``min``/``max`` fields. Only the subset of the
    format :func:`to_openmetrics` emits is supported.
    """
    types: Dict[str, str] = {}
    out: Dict[str, Dict[str, float]] = {"counter": {}, "gauge": {}, "summary": {}}
    for line in text.splitlines():
        line = line.strip()
        if not line or line == "# EOF":
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            metric, _, mtype = rest.partition(" ")
            types[metric] = mtype
            continue
        if line.startswith("#"):
            continue
        name, _, value_str = line.rpartition(" ")
        if not name:
            raise ConfigurationError(f"malformed OpenMetrics line: {line!r}")
        value = float(value_str)
        if "{" in name:
            # A quantile-labelled summary sample: metric{quantile="0.5"}.
            base, _, labels = name.partition("{")
            match = re.match(r'quantile="([^"]+)"\}$', labels)
            key = _QUANTILE_BY_LABEL.get(match.group(1)) if match else None
            if key is None or types.get(base) != "summary":
                raise ConfigurationError(
                    f"unsupported labelled OpenMetrics sample: {line!r}"
                )
            out["summary"].setdefault(base, {})[key] = value
            continue
        base, suffix = name, ""
        for candidate in ("_total", "_count", "_sum", "_min", "_max"):
            if name.endswith(candidate):
                base, suffix = name[: -len(candidate)], candidate
                break
        if types.get(base) == "counter" and suffix == "_total":
            out["counter"][base] = value
        elif types.get(base) == "summary" and suffix in ("_count", "_sum"):
            field = "count" if suffix == "_count" else "sum"
            out["summary"].setdefault(base, {})[field] = value
        elif types.get(base) == "summary" and suffix in ("_min", "_max"):
            out["summary"].setdefault(base, {})[suffix.lstrip("_")] = value
        elif types.get(name) == "gauge":
            out["gauge"][name] = value
        elif types.get(base) == "gauge" and suffix:
            # A summary's _min/_max arrive typed as gauges on base+suffix.
            out["gauge"][name] = value
        else:
            raise ConfigurationError(f"untyped OpenMetrics sample: {line!r}")
    # Fold stray summary _min/_max gauges back under their summary.
    for name in list(out["gauge"]):
        for candidate in ("_min", "_max"):
            if name.endswith(candidate) and name[: -len(candidate)] in out["summary"]:
                out["summary"][name[: -len(candidate)]][candidate.lstrip("_")] = (
                    out["gauge"].pop(name)
                )
    return out


def to_csv_snapshot(registry: MetricRegistry) -> str:
    """Flatten a registry snapshot to ``metric,field,value`` CSV rows."""
    snap = registry.snapshot()
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(["metric", "field", "value"])
    for name, value in snap["counters"].items():
        writer.writerow([name, "count", repr(value)])
    for name, value in snap["gauges"].items():
        writer.writerow([name, "value", repr(value)])
    for name, hist in snap["histograms"].items():
        for field in ("count", "total", "mean", "min", "max", "p50", "p95", "p99"):
            if field in hist:
                writer.writerow([name, field, repr(hist[field])])
    return buf.getvalue()


#: format name -> renderer, for the CLI and the periodic sink.
EXPORT_FORMATS = {
    "openmetrics": to_openmetrics,
    "csv": lambda registry, prefix="repro": to_csv_snapshot(registry),
}


def write_export(
    registry: MetricRegistry,
    path: str,
    fmt: str = "openmetrics",
    prefix: str = "repro",
) -> str:
    """Serialise the registry to ``path``; returns the rendered text."""
    try:
        render = EXPORT_FORMATS[fmt]
    except KeyError:
        raise ConfigurationError(
            f"unknown export format {fmt!r}; choose from {sorted(EXPORT_FORMATS)}"
        ) from None
    text = render(registry, prefix=prefix)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return text


class PeriodicExportSink(EventSink):
    """Rewrites a metrics export every ``interval_s`` of event time.

    Attach next to a JSONL sink (or alone) and the export file tracks
    the run as it progresses — each rewrite is a full snapshot, so the
    file is always a valid scrape. A final export happens on
    :meth:`close`.
    """

    def __init__(
        self,
        registry: MetricRegistry,
        path: str,
        interval_s: float = 3600.0,
        fmt: str = "openmetrics",
        prefix: str = "repro",
    ) -> None:
        if interval_s <= 0:
            raise ConfigurationError("interval_s must be positive")
        if fmt not in EXPORT_FORMATS:
            raise ConfigurationError(
                f"unknown export format {fmt!r}; choose from {sorted(EXPORT_FORMATS)}"
            )
        self.registry = registry
        self.path = path
        self.interval_s = interval_s
        self.fmt = fmt
        self.prefix = prefix
        self.n_exports = 0
        self._next_t: Optional[float] = None

    def emit(self, event: TraceEvent) -> None:
        if self._next_t is None:
            self._next_t = event.t + self.interval_s
            return
        if event.t >= self._next_t:
            self._write()
            # Catch up past idle gaps without a burst of rewrites.
            while self._next_t <= event.t:
                self._next_t += self.interval_s

    def _write(self) -> None:
        write_export(self.registry, self.path, fmt=self.fmt, prefix=self.prefix)
        self.n_exports += 1

    def close(self) -> None:
        self._write()
