"""Worker-side trace capture and parent-side replay for pooled campaigns.

A campaign cell running inside a ``ProcessPoolExecutor`` worker has its
own process-local :data:`~repro.obs.bus.BUS` — events it emits never
reach the parent's sinks, which is why (before this module) only inline
cells appeared in a campaign trace. The fix is capture-and-ship:

- :func:`run_captured` wraps a cell's execution in the worker. It
  enables the worker-local observability singletons for exactly the
  duration of the cell (worker processes are *reused* across cells, so
  per-cell setup/teardown is mandatory), buffers every bus event in a
  bounded :class:`CaptureSink`, folds fleet health live, and returns a
  picklable :class:`CellCapture` next to the cell result.
- :func:`replay_capture` re-emits a shipped capture on the parent bus
  with fresh parent event ids, remapping the worker-local provenance
  ids (``eid``/``cause_id``/``span_id``) through the same table so
  causal chains survive the process hop, and parenting the worker's
  top-level spans (and span-less events) under the parent's
  ``campaign_cell`` span. The result is one unified trace whose
  validator (:func:`~repro.obs.provenance.validate_trace`) cannot tell
  fan-out cells from inline ones.

The capture buffer keeps the *first* ``max_events`` events (head-keep)
rather than the last: the head contains the ``trace_meta``/``run_start``
header that resets the trace validator's run clock, plus the span starts
later events reference. Dropped-tail counts are reported on the capture
so truncation is visible, and :func:`replay_capture` skips ``span_end``
events whose start fell past the cap so the trace never contains an
unmatched span end.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.alerts import ALERTS, default_rules
from repro.obs.bus import BUS
from repro.obs.events import TraceEvent, event_from_dict
from repro.obs.health import FleetHealthModel
from repro.obs.metrics import REGISTRY
from repro.obs.sinks import EventSink
from repro.obs.spans import SPANS
from repro.obs.telemetry import TELEMETRY

#: Per-cell event cap. A 3-day, 6-node cell in the default lossless tier
#: emits ~26k events; 64k covers it with headroom while bounding a
#: runaway cell to ~25 MB of pickled events.
DEFAULT_CAPTURE_MAXLEN = 65536


@dataclass(frozen=True)
class CaptureConfig:
    """What the parent asks each pooled cell to capture.

    Picklable and shipped to the worker with the spec. ``telemetry`` is
    the tier *spec string* (see :mod:`repro.obs.telemetry`) so the
    parent's ``--telemetry`` choice governs worker cells too; empty
    means "leave the worker's default".
    """

    telemetry: str = ""
    max_events: int = DEFAULT_CAPTURE_MAXLEN
    alerts: bool = True
    health: bool = True
    #: Arm the worker's metric registry (step-phase timers, engine
    #: counters). The full-fidelity default; the monitoring preset turns
    #: it off because a live dashboard consumes none of it.
    metrics: bool = True

    @classmethod
    def monitoring(cls, telemetry: str = "sampled:8") -> "CaptureConfig":
        """The lean tier for live campaign monitoring (``--watch``).

        Keeps what a :class:`~repro.obs.campaign_monitor.CampaignMonitor`
        actually consumes — cell lifecycle, per-cell health rollups, and
        alert episodes — while dropping the deep-debugging payload:
        battery telemetry is sampled (every 8th step by default) and the
        worker metric registry stays dark. This is what keeps a watched
        campaign within a few percent of an untraced one; pass a full
        :class:`CaptureConfig` (the default protocol) when you need
        lossless traces instead.
        """
        return cls(telemetry=telemetry, metrics=False)


def sanitize_forked_worker() -> None:
    """Drop observability state inherited across a ``fork``.

    POSIX process pools fork workers from the parent mid-campaign, so a
    worker starts with the parent's attached sinks — including a JSONL
    sink whose file descriptor is *shared* with the parent and whose
    buffered, not-yet-flushed lines were copied into the child. Left
    alone, the worker would interleave its events directly into the
    parent's trace file and re-flush the copied buffer (duplicating
    lines). Point the inherited descriptor at ``/dev/null`` (fork copies
    the fd table, so the parent's own descriptor is untouched), detach
    every sink, and reset the singletons; the worker then runs
    observability-silent until :func:`run_captured` builds the per-cell
    state it actually wants. Used as the pool's worker ``initializer``.
    """
    for sink in BUS.sinks:
        fh = getattr(sink, "_fh", None)
        if fh is None:
            continue
        try:
            devnull = os.open(os.devnull, os.O_WRONLY)
            try:
                os.dup2(devnull, fh.fileno())
            finally:
                os.close(devnull)
        except (OSError, ValueError):
            pass
    BUS.clear_sinks()
    REGISTRY.reset()
    REGISTRY.enabled = False
    ALERTS.reset()
    ALERTS.enabled = False
    SPANS.reset()


class CaptureSink(EventSink):
    """Bounded head-keep event buffer (see module docstring for why)."""

    def __init__(self, maxlen: int = DEFAULT_CAPTURE_MAXLEN) -> None:
        self.maxlen = maxlen
        self.events: List[TraceEvent] = []
        self.n_seen = 0
        self.n_dropped = 0

    def emit(self, event: TraceEvent) -> None:
        self.n_seen += 1
        if len(self.events) < self.maxlen:
            self.events.append(event)
        else:
            self.n_dropped += 1


@dataclass
class CellCapture:
    """Everything a worker cell ships back besides its result.

    ``events`` are serialised dictionaries (``TraceEvent.to_dict`` plus
    the provenance ids) — dicts pickle leaner than dataclass instances
    and decouple the pool protocol from the event class registry.
    """

    events: List[Dict[str, Any]] = field(default_factory=list)
    n_seen: int = 0
    n_dropped: int = 0
    metrics: Dict[str, Any] = field(default_factory=dict)
    health: Optional[Dict[str, Any]] = None

    @property
    def truncated(self) -> bool:
        return self.n_dropped > 0


def summarize_health(model: FleetHealthModel) -> Optional[Dict[str, Any]]:
    """Reduce a cell's :class:`FleetHealthModel` to one rollup dict.

    The dict mirrors :class:`~repro.obs.events.CellHealthEvent`'s
    payload fields; ``None`` when the model saw no battery telemetry
    (e.g. ``--telemetry summary`` hides per-battery state).
    """
    model.finalize()
    run = None
    for candidate in reversed(model.runs):
        if candidate.batteries:
            run = candidate
            break
    if run is None:
        return None
    scores: List[float] = []
    worst = ""
    worst_score = float("-inf")
    nat_max = ddt_max = dr_max = 0.0
    n_samples = 0
    for node, battery in sorted(run.batteries.items()):
        breakdown = battery.breakdown(model.weights)
        scores.append(breakdown.score)
        if breakdown.score > worst_score:
            worst_score = breakdown.score
            worst = node
        metrics = battery.metrics()
        nat_max = max(nat_max, metrics.nat)
        ddt_max = max(ddt_max, metrics.ddt)
        dr_max = max(dr_max, metrics.dr_mean)
        n_samples += battery.n_samples
    return {
        "n_batteries": len(run.batteries),
        "n_samples": n_samples,
        "score_mean": sum(scores) / len(scores),
        "score_max": max(scores),
        "worst": worst,
        "nat_max": nat_max,
        "ddt_max": ddt_max,
        "dr_max": dr_max,
        "alerts": len(run.alerts),
    }


def run_captured(
    fn: Callable[[], Any],
    cfg: CaptureConfig,
) -> Tuple[Any, Optional[str], CellCapture]:
    """Run ``fn`` in this (worker) process with full capture around it.

    Returns ``(result, error, capture)`` where exactly one of
    ``result``/``error`` is meaningful: exceptions are caught and
    stringified so the partial capture still travels back for the
    parent to replay before retrying. The worker-local singletons
    (BUS sinks, REGISTRY, ALERTS, TELEMETRY) are set up before and
    restored after *every* cell, because pool workers are reused.
    """
    sink = CaptureSink(maxlen=cfg.max_events)
    model = FleetHealthModel() if cfg.health else None

    prev_registry_enabled = REGISTRY.enabled
    prev_alerts_enabled = ALERTS.enabled
    prev_alerts_bus = ALERTS.bus
    prev_telemetry = TELEMETRY.policy.spec()

    BUS.add_sink(sink)
    if model is not None:
        BUS.add_sink(model)
    if cfg.telemetry:
        TELEMETRY.set_policy(cfg.telemetry)
    REGISTRY.reset()
    REGISTRY.enabled = cfg.metrics
    if cfg.alerts:
        if not ALERTS.rules:
            for rule in default_rules():
                ALERTS.add_rule(rule)
        ALERTS.reset()
        ALERTS.bus = BUS
        ALERTS.enabled = True

    result: Any = None
    error: Optional[str] = None
    try:
        result = fn()
    except Exception as exc:  # noqa: BLE001 - shipped back as data
        error = f"{type(exc).__name__}: {exc}"
    finally:
        BUS.remove_sink(sink)
        if model is not None:
            BUS.remove_sink(model)
        metrics = REGISTRY.snapshot()
        REGISTRY.reset()
        REGISTRY.enabled = prev_registry_enabled
        if cfg.alerts:
            ALERTS.reset()
        ALERTS.enabled = prev_alerts_enabled
        ALERTS.bus = prev_alerts_bus
        if cfg.telemetry:
            TELEMETRY.set_policy(prev_telemetry)

    capture = CellCapture(
        events=[_serialize(e) for e in sink.events],
        n_seen=sink.n_seen,
        n_dropped=sink.n_dropped,
        metrics=metrics,
        health=summarize_health(model) if model is not None else None,
    )
    return result, error, capture


def _serialize(event: TraceEvent) -> Dict[str, Any]:
    """``to_dict`` plus the provenance ids it deliberately omits."""
    data = event.to_dict()
    data["eid"] = event.eid
    data["span_id"] = event.span_id
    data["cause_id"] = event.cause_id
    return data


def replay_capture(
    capture: CellCapture,
    cell_span_id: int = 0,
    bus=None,
) -> int:
    """Re-emit a worker capture on the parent bus; returns events emitted.

    Every event gets a fresh parent ``eid``; worker-local
    ``cause_id``/``span_id`` references are remapped through the
    worker-eid -> parent-eid table built as the replay walks the buffer
    in emission order (references always point backwards, so the table
    is complete when needed). References that fall outside the capture
    (or past a truncated tail) degrade gracefully: causes drop to 0,
    span memberships and top-level span parents re-anchor on
    ``cell_span_id`` — the parent's ``campaign_cell`` span — and
    ``span_end`` events whose start was truncated away are skipped
    entirely so the merged trace stays validator-clean.
    """
    if bus is None:
        bus = BUS
    idmap: Dict[int, int] = {}
    emitted = 0
    for data in capture.events:
        event = event_from_dict(dict(data))
        old_eid = event.eid
        old_span = event.span_id
        old_cause = event.cause_id
        if event.kind == "span_end" and old_span not in idmap:
            continue
        new_eid = bus.next_eid()
        if old_eid:
            idmap[old_eid] = new_eid
        event.eid = new_eid
        event.cause_id = idmap.get(old_cause, 0) if old_cause else 0
        if event.kind == "span_start":
            # The span's id is its own (new) eid; re-parent top-level
            # worker spans under the parent's campaign_cell span.
            event.span_id = new_eid
            parent = getattr(event, "parent_id", 0)
            event.parent_id = idmap.get(parent, cell_span_id)
        elif event.kind == "span_end":
            event.span_id = idmap[old_span]
        else:
            event.span_id = idmap.get(old_span, cell_span_id)
        bus.emit(event)
        emitted += 1
    return emitted
