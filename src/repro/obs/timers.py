"""Phase timers: wall-clock instrumentation feeding the metric registry.

Two forms:

- :class:`StepPhaseTimers` — pre-resolved histogram handles for the
  engine's four step phases (control, power-path, VM advance, record).
  The engine times phases inline with ``perf_counter`` pairs guarded on
  ``REGISTRY.enabled``; this class only removes the per-step name lookup.
- :func:`time_phase` — a context manager for coarser, non-hot-loop
  phases (campaign cells, experiment sweeps).
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Iterator

from repro.obs.metrics import Histogram, MetricRegistry

#: Engine step phases, in execution order.
STEP_PHASES = ("control", "power", "advance", "record")


class StepPhaseTimers:
    """Histogram handles for the engine's per-step phases (seconds)."""

    __slots__ = ("control", "power", "advance", "record")

    def __init__(self, registry: MetricRegistry):
        self.control: Histogram = registry.histogram("phase/control")
        self.power: Histogram = registry.histogram("phase/power")
        self.advance: Histogram = registry.histogram("phase/advance")
        self.record: Histogram = registry.histogram("phase/record")


@contextmanager
def time_phase(registry: MetricRegistry, name: str) -> Iterator[None]:
    """Time a block into ``phase/<name>`` when the registry is enabled."""
    if not registry.enabled:
        yield
        return
    hist = registry.histogram(f"phase/{name}")
    t0 = perf_counter()
    try:
        yield
    finally:
        hist.observe(perf_counter() - t0)
