"""Process-local metric registry: counters, gauges, histograms.

Complements the event bus: events answer *what happened and when*, the
registry answers *how much and how fast* — step-phase latencies, action
counts, cache hit rates — without storing one record per occurrence.

Like the bus, the module-level :data:`REGISTRY` is disabled by default
and instrumented code guards on ``REGISTRY.enabled`` before touching it,
so the recording path costs nothing when observability is off. Metric
objects themselves are live handles: fetch them once (``registry.
counter("x")``) and call ``inc``/``set``/``observe`` on the handle in
hot loops.

:meth:`MetricRegistry.sample` folds the current values into a
timestamped snapshot list — the engine samples at day boundaries, giving
the periodic series the paper's per-day analyses need.
"""

from __future__ import annotations

from typing import Any, Dict, List


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Last-written value (set semantics)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming summary of observed values: count, sum, min, max, mean.

    Deliberately bucket-free — the phase timers and cell durations this
    registry serves need rates and means, not tail quantiles, and a
    four-float update keeps the hot path cheap.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }


class MetricRegistry:
    """Named metric store with periodic snapshot sampling."""

    def __init__(self) -> None:
        self.enabled: bool = False
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self.samples: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    # Get-or-create handles
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            c = self._counters[name] = Counter(name)
            return c

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            g = self._gauges[name] = Gauge(name)
            return g

    def histogram(self, name: str) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            h = self._histograms[name] = Histogram(name)
            return h

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Plain-data view of every metric's current value."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.to_dict() for n, h in sorted(self._histograms.items())
            },
        }

    def sample(self, t: float) -> Dict[str, Any]:
        """Record (and return) a timestamped snapshot."""
        snap = {"t": t, **self.snapshot()}
        self.samples.append(snap)
        return snap

    def reset(self) -> None:
        """Drop every metric and sample (the ``enabled`` flag persists)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self.samples.clear()


#: The process-wide registry instrumented modules record into.
REGISTRY = MetricRegistry()
