"""Process-local metric registry: counters, gauges, histograms.

Complements the event bus: events answer *what happened and when*, the
registry answers *how much and how fast* — step-phase latencies, action
counts, cache hit rates — without storing one record per occurrence.

Like the bus, the module-level :data:`REGISTRY` is disabled by default
and instrumented code guards on ``REGISTRY.enabled`` before touching it,
so the recording path costs nothing when observability is off. Metric
objects themselves are live handles: fetch them once (``registry.
counter("x")``) and call ``inc``/``set``/``observe`` on the handle in
hot loops.

:meth:`MetricRegistry.sample` folds the current values into a
timestamped snapshot list — the engine samples at day boundaries, giving
the periodic series the paper's per-day analyses need. The list is
bounded (:data:`DEFAULT_SAMPLE_LIMIT`) so week-long campaigns cannot
grow it without limit; the newest samples win.

Histograms additionally keep streaming p50/p95/p99 estimates via the
P² algorithm (:class:`P2Quantile`) — O(1) memory per quantile, no
per-observation storage — which is what lets a campaign report cell
wall-time tails without ever holding the samples.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional

#: Cap on the registry's timestamped snapshot list (day boundaries for a
#: single run, rollup points for campaigns). Oldest entries are dropped
#: first; 4096 day-samples is > 11 simulated years.
DEFAULT_SAMPLE_LIMIT = 4096

#: The quantiles every histogram tracks (keys in ``to_dict``).
HISTOGRAM_QUANTILES = (("p50", 0.5), ("p95", 0.95), ("p99", 0.99))


class P2Quantile:
    """Streaming quantile estimate via the P² algorithm.

    Jain & Chlamtac (1985): five markers track the min, max, the target
    quantile, and its two flanking quantiles; each observation nudges
    marker heights by a piecewise-parabolic update. O(1) memory and
    O(1) per observation — exact for the first five observations (a
    sorted-sample interpolation is returned until the markers take
    over), an estimate with bounded drift afterwards.
    """

    __slots__ = ("q", "n", "_heights", "_positions", "_dinit", "_rates")

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self.n = 0
        self._heights: List[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        # Desired marker positions are linear in the observation count
        # (init + t * rate after t post-warm-up observations), so they
        # are computed on demand in observe() rather than stored and
        # incremented — this is the metrics hot path (every step-phase
        # timer lands here), so per-observation work is kept minimal.
        self._dinit = (1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0)
        self._rates = (0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0)

    def observe(self, x: float) -> None:
        self.n += 1
        h = self._heights
        if len(h) < 5:
            h.append(x)
            h.sort()
            return
        # Locate the marker cell the observation falls into.
        if x < h[0]:
            h[0] = x
            k = 0
        elif x < h[1]:
            k = 0
        elif x < h[2]:
            k = 1
        elif x < h[3]:
            k = 2
        elif x < h[4]:
            k = 3
        else:
            h[4] = x
            k = 3
        pos = self._positions
        if k == 0:
            pos[1] += 1.0
            pos[2] += 1.0
            pos[3] += 1.0
        elif k == 1:
            pos[2] += 1.0
            pos[3] += 1.0
        elif k == 2:
            pos[3] += 1.0
        pos[4] += 1.0
        # Nudge the three interior markers toward their desired positions.
        t = float(self.n - 5)
        dinit = self._dinit
        rates = self._rates
        for i in (1, 2, 3):
            pi = pos[i]
            d = dinit[i] + t * rates[i] - pi
            if (d >= 1.0 and pos[i + 1] - pi > 1.0) or (
                d <= -1.0 and pos[i - 1] - pi < -1.0
            ):
                step = 1.0 if d > 0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, step)
                pos[i] = pi + step

    def _parabolic(self, i: int, d: float) -> float:
        h, pos = self._heights, self._positions
        return h[i] + d / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + d)
            * (h[i + 1] - h[i])
            / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - d)
            * (h[i] - h[i - 1])
            / (pos[i] - pos[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        h, pos = self._heights, self._positions
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (pos[j] - pos[i])

    @property
    def value(self) -> float:
        """The current quantile estimate (0.0 before any observation)."""
        h = self._heights
        if not h:
            return 0.0
        if self.n <= 5:
            # Markers not initialized yet: exact linear interpolation
            # over the sorted observations (numpy 'linear' convention).
            if len(h) == 1:
                return h[0]
            idx = self.q * (len(h) - 1)
            lo = int(idx)
            frac = idx - lo
            if lo + 1 >= len(h):
                return h[-1]
            return h[lo] + frac * (h[lo + 1] - h[lo])
        return h[2]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Last-written value (set semantics)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming summary of observed values — no per-sample storage.

    Deliberately bucket-free: count/sum/min/max in four floats, plus
    p50/p95/p99 tails tracked by constant-memory :class:`P2Quantile`
    estimators, so week-long campaigns never accumulate samples.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_quantiles")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._quantiles = tuple(P2Quantile(q) for _, q in HISTOGRAM_QUANTILES)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for estimator in self._quantiles:
            estimator.observe(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, key: str) -> float:
        """Current estimate for ``"p50"``/``"p95"``/``"p99"``."""
        for (name, _), estimator in zip(HISTOGRAM_QUANTILES, self._quantiles):
            if name == key:
                return estimator.value
        raise KeyError(key)

    def merge(self, other: Dict[str, Any]) -> None:
        """Fold another histogram's ``to_dict`` form into this one.

        Used to aggregate worker-process registries into the parent's.
        count/total/min/max merge exactly; quantile estimators cannot be
        merged, so each incoming quantile value is fed to its estimator
        as one observation — a quantile-of-quantiles approximation that
        is exact when this histogram had no local observations and only
        one snapshot is merged.
        """
        incoming = int(other.get("count", 0))
        if incoming <= 0:
            return
        self.count += incoming
        self.total += other.get("total", 0.0)
        if other["min"] < self.min:
            self.min = other["min"]
        if other["max"] > self.max:
            self.max = other["max"]
        for (key, _), estimator in zip(HISTOGRAM_QUANTILES, self._quantiles):
            if key in other:
                estimator.observe(other[key])

    def to_dict(self) -> Dict[str, float]:
        out = {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }
        for (key, _), estimator in zip(HISTOGRAM_QUANTILES, self._quantiles):
            out[key] = estimator.value
        return out


class MetricRegistry:
    """Named metric store with periodic snapshot sampling."""

    def __init__(self, sample_limit: Optional[int] = DEFAULT_SAMPLE_LIMIT) -> None:
        self.enabled: bool = False
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._samples: Deque[Dict[str, Any]] = deque(maxlen=sample_limit)

    @property
    def samples(self) -> List[Dict[str, Any]]:
        """Timestamped snapshots recorded by :meth:`sample`, oldest first.

        Bounded (``sample_limit``, newest win) so long campaigns cannot
        grow the registry without limit.
        """
        return list(self._samples)

    # ------------------------------------------------------------------
    # Get-or-create handles
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            c = self._counters[name] = Counter(name)
            return c

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            g = self._gauges[name] = Gauge(name)
            return g

    def histogram(self, name: str) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            h = self._histograms[name] = Histogram(name)
            return h

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Plain-data view of every metric's current value."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.to_dict() for n, h in sorted(self._histograms.items())
            },
        }

    def sample(self, t: float) -> Dict[str, Any]:
        """Record (and return) a timestamped snapshot."""
        snap = {"t": t, **self.snapshot()}
        self._samples.append(snap)
        return snap

    def merge_snapshot(self, snap: Dict[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        The campaign runner uses this to aggregate worker-process
        registries into the parent's: counters add, gauges take the
        incoming value (last writer wins), histograms merge via
        :meth:`Histogram.merge`.
        """
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, hist in snap.get("histograms", {}).items():
            self.histogram(name).merge(hist)

    def reset(self) -> None:
        """Drop every metric and sample (the ``enabled`` flag persists)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._samples.clear()


#: The process-wide registry instrumented modules record into.
REGISTRY = MetricRegistry()
