"""Causal spans and the ambient cause context.

A *span* is a long-lived interval in a run's life — a deep-discharge
excursion below the 40 % SoC line, a DVFS cap→uncap episode, a park,
an evacuation, a consolidation epoch, a DoD-goal plan window, a
campaign cell. Spans are first-class events on the trace bus: a
:class:`~repro.obs.events.SpanStartEvent` opens one (the span's id *is*
that event's ``eid``) and a :class:`~repro.obs.events.SpanEndEvent`
closes it, so any JSONL trace replays into the same interval structure
(:class:`~repro.obs.provenance.ProvenanceIndex` does exactly that).

Two contextvar-based managers thread provenance to deep emit sites
without touching call signatures — the ``CauseContext`` of the issue:

``caused_by(eid)``
    every event emitted inside the block gets ``cause_id=eid`` (unless
    the emit site set one explicitly);
``in_span(span_id)``
    every event emitted inside gets ``span_id=span_id``, and spans
    started inside record it as their ``parent_id``.

The module-level :data:`SPANS` manager tracks open spans by
``(name, node)`` so distant code (e.g. ``cluster.migrate`` waking a
parked server) can close a span it did not open. Closing a span feeds
its duration into the metric registry as a ``span/<name>`` histogram,
which the OpenMetrics exporter publishes as a duration summary for
free.

Everything here is inert while the bus is disabled: ``start`` returns
0, the context managers set nothing, and no event is allocated.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.obs.bus import BUS, CURRENT_CAUSE, CURRENT_SPAN, TraceBus
from repro.obs.events import SpanEndEvent, SpanStartEvent
from repro.obs.metrics import REGISTRY

#: The span taxonomy this codebase emits (documentation + validation aid;
#: the layer itself accepts any name).
SPAN_NAMES = (
    "deep_discharge",  # battery below the Fig.-9 low-SoC line
    "dvfs_cap",  # first throttle-down until back at full frequency
    "parked",  # server policy-off until wake / migration-in
    "evacuation",  # moving VMs off a node about to park
    "consolidation",  # one BAAT night-consolidation epoch
    "dod_plan",  # one Eq.-7 DoD-goal plan window
    "campaign_cell",  # one inline campaign cell (campaign clock)
    "hiding_rebalance",  # one BAAT-H random-migration burst
)


def current_cause() -> int:
    """The ambient cause eid events are being stamped with (0 if none)."""
    return CURRENT_CAUSE.get()


def current_span() -> int:
    """The ambient span id events are being stamped with (0 if none)."""
    return CURRENT_SPAN.get()


@contextmanager
def caused_by(eid: int) -> Iterator[None]:
    """Stamp ``cause_id=eid`` on events emitted in the block (no-op for 0)."""
    if not eid:
        yield
        return
    token = CURRENT_CAUSE.set(eid)
    try:
        yield
    finally:
        CURRENT_CAUSE.reset(token)


@contextmanager
def in_span(span_id: int) -> Iterator[None]:
    """Stamp ``span_id`` on events emitted in the block (no-op for 0)."""
    if not span_id:
        yield
        return
    token = CURRENT_SPAN.set(span_id)
    try:
        yield
    finally:
        CURRENT_SPAN.reset(token)


@dataclass
class OpenSpan:
    """Book-keeping for a span whose end has not been emitted yet."""

    span_id: int
    name: str
    node: str
    t_start: float
    scope: str


class SpanManager:
    """Tracks open spans by ``(name, node)`` and emits their events."""

    def __init__(self, bus: Optional[TraceBus] = None) -> None:
        self.bus = bus if bus is not None else BUS
        self._open: Dict[Tuple[str, str], OpenSpan] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(
        self,
        name: str,
        node: str = "",
        t: Optional[float] = None,
        cause: int = 0,
        scope: str = "run",
    ) -> int:
        """Open a span; returns its id (0 when the bus is disabled).

        Re-entrant: starting an already-open ``(name, node)`` span
        returns the existing id without emitting a second start.
        """
        bus = self.bus
        if not bus.enabled:
            return 0
        key = (name, node)
        existing = self._open.get(key)
        if existing is not None:
            return existing.span_id
        t_start = bus.now if t is None else t
        event = SpanStartEvent(
            t=t_start,
            span=name,
            node=node,
            parent_id=CURRENT_SPAN.get(),
            scope=scope,
        )
        event.eid = bus.next_eid()
        event.span_id = event.eid  # a span's id is its start event's eid
        if cause:
            event.cause_id = cause
        bus.emit(event)
        self._open[key] = OpenSpan(event.eid, name, node, t_start, scope)
        return event.eid

    def end(self, name: str, node: str = "", t: Optional[float] = None) -> int:
        """Close a span if open; returns its id (0 if it was not open)."""
        span = self._open.pop((name, node), None)
        if span is None:
            return 0
        bus = self.bus
        if not bus.enabled:
            return 0
        t_end = bus.now if t is None else t
        duration = max(0.0, t_end - span.t_start)
        bus.emit(
            SpanEndEvent(
                t=t_end,
                span_id=span.span_id,
                span=name,
                node=node,
                scope=span.scope,
                duration_s=duration,
            )
        )
        if REGISTRY.enabled:
            REGISTRY.histogram(f"span/{name}").observe(duration)
        return span.span_id

    @contextmanager
    def span(
        self,
        name: str,
        node: str = "",
        t: Optional[float] = None,
        cause: int = 0,
        scope: str = "run",
    ) -> Iterator[int]:
        """Open a span around a block and make it the ambient span.

        Events emitted inside are stamped with the span's id, and nested
        span starts record it as ``parent_id``. The end is emitted at
        block exit with the bus clock (or the same ``t`` if given — sim
        time does not advance inside one control pass).
        """
        span_id = self.start(name, node=node, t=t, cause=cause, scope=scope)
        if not span_id:
            yield 0
            return
        token = CURRENT_SPAN.set(span_id)
        try:
            yield span_id
        finally:
            CURRENT_SPAN.reset(token)
            self.end(name, node=node, t=t)

    # ------------------------------------------------------------------
    # Queries / reset
    # ------------------------------------------------------------------
    def open_id(self, name: str, node: str = "") -> int:
        """Id of the open ``(name, node)`` span, or 0."""
        span = self._open.get((name, node))
        return span.span_id if span is not None else 0

    def open_spans(self) -> Dict[Tuple[str, str], OpenSpan]:
        """Snapshot of currently open spans (copy)."""
        return dict(self._open)

    def reset(self, scope: Optional[str] = None) -> None:
        """Forget open spans without emitting ends.

        A new simulation run calls ``reset(scope="run")`` so stale
        intervals from a previous run in the same process cannot leak
        into it; campaign-scope spans (the enclosing cell) survive.
        """
        if scope is None:
            self._open.clear()
            return
        for key in [k for k, v in self._open.items() if v.scope == scope]:
            del self._open[key]


#: The process-wide span manager, bound to the process-wide bus.
SPANS = SpanManager(BUS)
