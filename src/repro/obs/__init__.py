"""Structured telemetry: event bus, metrics, alerts, health, exporters.

The observability substrate every control decision reports through:

- :data:`BUS` — the process-local :class:`~repro.obs.bus.TraceBus`;
  engine, policies, power path, and campaign runner emit typed
  :class:`~repro.obs.events.TraceEvent` objects to it when enabled.
- :data:`REGISTRY` — the process-local
  :class:`~repro.obs.metrics.MetricRegistry` holding counters, gauges,
  and histograms (notably the engine's step-phase timers).
- :data:`ALERTS` — the process-local
  :class:`~repro.obs.alerts.AlertEngine`; the slowdown monitor, planned
  aging, and campaign runner feed it threshold observations, and fired
  alerts go back onto :data:`BUS` as ``alert`` events.
- :class:`~repro.obs.health.FleetHealthModel` folds the stream (live or
  a replayed JSONL trace) into per-battery aging attribution.
- :data:`SPANS` — the process-local :class:`~repro.obs.spans.
  SpanManager`; control paths open/close causal intervals on it, and
  the ``caused_by``/``in_span`` context managers stamp provenance ids
  onto every event emitted inside them.
- :class:`~repro.obs.provenance.ProvenanceIndex` rebuilds the causal
  DAG (live or from a trace) behind ``repro explain``;
  :func:`~repro.obs.provenance.validate_trace` backs
  ``repro trace validate``.
- :mod:`repro.obs.export` serialises the registry (OpenMetrics / CSV).

All three process-local singletons are *disabled* by default, and every
instrumented call site guards on a single ``enabled`` attribute, so the
layer is near-free when off (verified by
``benchmarks/bench_obs_overhead.py``).

Typical use::

    from repro.obs import BUS, REGISTRY, enable_observability

    with BUS.trace_to("out.jsonl"):
        run_policy_on_trace(scenario, policy, trace)

or, for the CLI's ``--trace`` flag, :func:`enable_observability` /
:func:`disable_observability` manage a JSONL sink plus the registry and
alert engine in one call.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.alerts import (
    ALERTS,
    AlertEngine,
    AlertRule,
    default_rules,
    severity_rank,
)
from repro.obs.bus import BUS, TraceBus
from repro.obs.campaign_monitor import (
    CampaignMonitor,
    render_dashboard,
    write_summary,
)
from repro.obs.capture import (
    DEFAULT_CAPTURE_MAXLEN,
    CaptureConfig,
    CaptureSink,
    CellCapture,
    replay_capture,
    run_captured,
    summarize_health,
)
from repro.obs.events import (
    EVENT_TYPES,
    AlertEvent,
    BatteryConfigEvent,
    BatteryFrameEvent,
    BatterySampleEvent,
    BrownoutEvent,
    CampaignFinishEvent,
    CampaignStartEvent,
    CellCacheHitEvent,
    CellDedupeEvent,
    CellFinishEvent,
    CellHealthEvent,
    CellRetryEvent,
    CellStartEvent,
    ConsolidationEvent,
    DayStartEvent,
    DoDGoalEvent,
    DvfsCapEvent,
    DvfsUncapEvent,
    EvacuationEvent,
    FleetSummaryEvent,
    ParkEvent,
    PerfRegressionEvent,
    RunStartEvent,
    SlowdownActionEvent,
    SocCrossingEvent,
    SpanEndEvent,
    SpanStartEvent,
    TraceEvent,
    TraceMetaEvent,
    TraceTailer,
    VMMigratedEvent,
    VMPlacedEvent,
    WakeEvent,
    event_from_dict,
    iter_events,
    read_events,
    trace_segments,
)
from repro.obs.export import (
    PeriodicExportSink,
    parse_openmetrics,
    to_csv_snapshot,
    to_openmetrics,
    write_export,
)
from repro.obs.health import FleetHealthModel, FleetHealthReport
from repro.obs.metrics import (
    DEFAULT_SAMPLE_LIMIT,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    P2Quantile,
)
from repro.obs.provenance import (
    ProvenanceIndex,
    TraceValidation,
    validate_trace,
)
from repro.obs.sinks import (
    DEFAULT_MEMORY_SINK_MAXLEN,
    EventSink,
    JsonlSink,
    MemorySink,
    NullSink,
)
from repro.obs.spans import (
    SPANS,
    SpanManager,
    caused_by,
    current_cause,
    current_span,
    in_span,
)
from repro.obs.telemetry import (
    SCHEMA_VERSION,
    TELEMETRY,
    BatteryTelemetry,
    FrameDecoder,
    FrameEncoder,
    TelemetryPolicy,
    expand_frame,
    make_battery_sample,
    parse_telemetry,
)
from repro.obs.timers import STEP_PHASES, StepPhaseTimers, time_phase

__all__ = [
    "BUS",
    "REGISTRY",
    "ALERTS",
    "SPANS",
    "EVENT_TYPES",
    "STEP_PHASES",
    "DEFAULT_MEMORY_SINK_MAXLEN",
    "TraceBus",
    "TraceEvent",
    "MetricRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "EventSink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "StepPhaseTimers",
    "time_phase",
    "AlertEngine",
    "AlertRule",
    "default_rules",
    "severity_rank",
    "FleetHealthModel",
    "FleetHealthReport",
    "PeriodicExportSink",
    "to_openmetrics",
    "parse_openmetrics",
    "to_csv_snapshot",
    "write_export",
    "event_from_dict",
    "iter_events",
    "read_events",
    "trace_segments",
    "enable_observability",
    "disable_observability",
    "SpanManager",
    "caused_by",
    "in_span",
    "current_cause",
    "current_span",
    "ProvenanceIndex",
    "TraceValidation",
    "validate_trace",
    "RunStartEvent",
    "DayStartEvent",
    "SocCrossingEvent",
    "BrownoutEvent",
    "BatteryConfigEvent",
    "BatterySampleEvent",
    "BatteryFrameEvent",
    "FleetSummaryEvent",
    "TraceMetaEvent",
    "SCHEMA_VERSION",
    "TELEMETRY",
    "BatteryTelemetry",
    "TelemetryPolicy",
    "parse_telemetry",
    "FrameEncoder",
    "FrameDecoder",
    "expand_frame",
    "make_battery_sample",
    "AlertEvent",
    "VMPlacedEvent",
    "VMMigratedEvent",
    "SlowdownActionEvent",
    "DvfsCapEvent",
    "DvfsUncapEvent",
    "EvacuationEvent",
    "ParkEvent",
    "WakeEvent",
    "ConsolidationEvent",
    "DoDGoalEvent",
    "PerfRegressionEvent",
    "CellStartEvent",
    "CellCacheHitEvent",
    "CellDedupeEvent",
    "CellRetryEvent",
    "CellFinishEvent",
    "CellHealthEvent",
    "CampaignStartEvent",
    "CampaignFinishEvent",
    "SpanStartEvent",
    "SpanEndEvent",
    "TraceTailer",
    "CampaignMonitor",
    "render_dashboard",
    "write_summary",
    "CaptureConfig",
    "CaptureSink",
    "CellCapture",
    "DEFAULT_CAPTURE_MAXLEN",
    "DEFAULT_SAMPLE_LIMIT",
    "P2Quantile",
    "run_captured",
    "replay_capture",
    "summarize_health",
]

_active_jsonl: Optional[JsonlSink] = None


def enable_observability(
    trace_path: Optional[str] = None,
    compress: Optional[bool] = None,
    rotate_bytes: Optional[int] = None,
    rotate_events: Optional[int] = None,
    telemetry=None,
) -> Optional[JsonlSink]:
    """Turn the full layer on: registry, alert engine, optional JSONL sink.

    Returns the attached sink (``None`` when no path was given). The CLI
    uses this behind ``--trace``; call :func:`disable_observability` to
    tear it back down. The process alert engine gets the standard
    :func:`~repro.obs.alerts.default_rules` on first enable (rules added
    beforehand are kept) and publishes onto :data:`BUS`.

    ``compress``/``rotate_bytes``/``rotate_events`` pass through to
    :class:`~repro.obs.sinks.JsonlSink` (the ``--trace-gzip`` /
    ``--trace-rotate-mb`` CLI flags). ``telemetry`` (a spec string or
    :class:`~repro.obs.telemetry.TelemetryPolicy`) selects the battery
    telemetry tier — the ``--telemetry`` flag; the default keeps the
    lossless per-node ``full-events`` stream.
    """
    global _active_jsonl
    if telemetry is not None:
        TELEMETRY.set_policy(telemetry)
    REGISTRY.enabled = True
    if not ALERTS.rules:
        for rule in default_rules():
            ALERTS.add_rule(rule)
    ALERTS.bus = BUS
    ALERTS.enabled = True
    if trace_path is not None:
        _active_jsonl = JsonlSink(
            trace_path,
            compress=compress,
            rotate_bytes=rotate_bytes,
            rotate_events=rotate_events,
        )
        BUS.add_sink(_active_jsonl)
    return _active_jsonl


def disable_observability() -> None:
    """Detach the managed JSONL sink (if any) and disable the layer."""
    global _active_jsonl
    if _active_jsonl is not None:
        BUS.remove_sink(_active_jsonl)
        _active_jsonl.close()
        _active_jsonl = None
    REGISTRY.enabled = False
    ALERTS.enabled = False
    ALERTS.reset()
    SPANS.reset()
    TELEMETRY.set_policy(TelemetryPolicy())
