"""Structured telemetry: event bus, metric registry, phase timers.

The observability substrate every control decision reports through:

- :data:`BUS` — the process-local :class:`~repro.obs.bus.TraceBus`;
  engine, policies, power path, and campaign runner emit typed
  :class:`~repro.obs.events.TraceEvent` objects to it when enabled.
- :data:`REGISTRY` — the process-local
  :class:`~repro.obs.metrics.MetricRegistry` holding counters, gauges,
  and histograms (notably the engine's step-phase timers).

Both are *disabled* by default, and every instrumented call site guards
on a single ``enabled`` attribute, so the layer is near-free when off
(verified by ``benchmarks/bench_obs_overhead.py``).

Typical use::

    from repro.obs import BUS, REGISTRY, enable_observability

    with BUS.trace_to("out.jsonl"):
        run_policy_on_trace(scenario, policy, trace)

or, for the CLI's ``--trace`` flag, :func:`enable_observability` /
:func:`disable_observability` manage a JSONL sink plus the registry in
one call.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.bus import BUS, TraceBus
from repro.obs.events import (
    EVENT_TYPES,
    BrownoutEvent,
    CellCacheHitEvent,
    CellFinishEvent,
    CellRetryEvent,
    CellStartEvent,
    ConsolidationEvent,
    DayStartEvent,
    DoDGoalEvent,
    DvfsCapEvent,
    DvfsUncapEvent,
    EvacuationEvent,
    ParkEvent,
    RunStartEvent,
    SlowdownActionEvent,
    SocCrossingEvent,
    TraceEvent,
    VMMigratedEvent,
    VMPlacedEvent,
    WakeEvent,
    event_from_dict,
    iter_events,
    read_events,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricRegistry, REGISTRY
from repro.obs.sinks import EventSink, JsonlSink, MemorySink, NullSink
from repro.obs.timers import STEP_PHASES, StepPhaseTimers, time_phase

__all__ = [
    "BUS",
    "REGISTRY",
    "EVENT_TYPES",
    "STEP_PHASES",
    "TraceBus",
    "TraceEvent",
    "MetricRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "EventSink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "StepPhaseTimers",
    "time_phase",
    "event_from_dict",
    "iter_events",
    "read_events",
    "enable_observability",
    "disable_observability",
    "RunStartEvent",
    "DayStartEvent",
    "SocCrossingEvent",
    "BrownoutEvent",
    "VMPlacedEvent",
    "VMMigratedEvent",
    "SlowdownActionEvent",
    "DvfsCapEvent",
    "DvfsUncapEvent",
    "EvacuationEvent",
    "ParkEvent",
    "WakeEvent",
    "ConsolidationEvent",
    "DoDGoalEvent",
    "CellStartEvent",
    "CellCacheHitEvent",
    "CellRetryEvent",
    "CellFinishEvent",
]

_active_jsonl: Optional[JsonlSink] = None


def enable_observability(trace_path: Optional[str] = None) -> Optional[JsonlSink]:
    """Turn the full layer on: metric registry plus an optional JSONL sink.

    Returns the attached sink (``None`` when no path was given). The CLI
    uses this behind ``--trace``; call :func:`disable_observability` to
    tear it back down.
    """
    global _active_jsonl
    REGISTRY.enabled = True
    if trace_path is not None:
        _active_jsonl = JsonlSink(trace_path)
        BUS.add_sink(_active_jsonl)
    return _active_jsonl


def disable_observability() -> None:
    """Detach the managed JSONL sink (if any) and disable the registry."""
    global _active_jsonl
    if _active_jsonl is not None:
        BUS.remove_sink(_active_jsonl)
        _active_jsonl.close()
        _active_jsonl = None
    REGISTRY.enabled = False
