"""Fleet health: per-battery aging attribution from the event stream.

The paper's prototype surfaced battery state on a LabVIEW display; this
module is that operator view for the simulator. A
:class:`FleetHealthModel` is an :class:`~repro.obs.sinks.EventSink`: it
consumes the telemetry stream — live (attached to the bus during a run)
or replayed from a JSONL trace — and maintains, per battery:

- the five aging metrics (NAT, CF, PC, DDT, DR) rebuilt from the exact
  sensor samples the node's :class:`~repro.metrics.tracker.
  MetricsTracker` folded (``battery_sample`` events carry them
  losslessly), so attribution agrees with the in-engine tracker;
- the Eq.-6 weighted aging score decomposed into its three weighted
  terms, so an operator can see *which* metric drives a bad score;
- aging speed — the per-day score — tracked against the fleet median,
  feeding the ``aging_speed_regression`` fleet alert rule;
- an EOL projection (days until NAT reaches 1 at the observed rate) and
  its drift versus the planned-aging DoD goal (Eq. 7) when the run
  published ``dod_goal`` events.

Multiple runs in one trace (a serial campaign) are kept separate: each
``run_start`` event opens a new :class:`RunHealth` scope.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.metrics.accumulator import MetricsAccumulator
from repro.metrics.snapshot import AgingMetrics
from repro.metrics.weighted import (
    EQUAL_WEIGHTS,
    NAT_SCORE_SCALE,
    MetricWeights,
    node_aging_score,
)
from repro.errors import ConfigurationError
from repro.obs.alerts import AlertEngine
from repro.obs.events import TraceEvent
from repro.obs.sinks import EventSink
from repro.obs.telemetry import FrameDecoder
from repro.units import SECONDS_PER_DAY


@dataclass(frozen=True)
class BatteryConfig:
    """The per-battery constants metric attribution needs.

    Defaults mirror :class:`~repro.battery.params.BatteryParams` (the
    paper's 12 V / 35 Ah block) for traces predating ``battery_config``
    events.
    """

    lifetime_ah_throughput: float = 380.0 * 35.0
    reference_current: float = 35.0 / 20.0
    capacity_ah: float = 35.0
    cutoff_soc: float = 0.12


@dataclass
class ScoreBreakdown:
    """Eq.-6 score with its three weighted contributions."""

    score: float
    nat_term: float
    cf_term: float
    pc_term: float


@dataclass
class BatteryHealth:
    """Rolling health state for one battery within one run."""

    node: str
    config: BatteryConfig = field(default_factory=BatteryConfig)
    acc: MetricsAccumulator = field(default_factory=MetricsAccumulator)
    day_mark: MetricsAccumulator = field(default_factory=MetricsAccumulator)
    #: Per-closed-day weighted aging score (the aging *speed* series).
    day_scores: List[float] = field(default_factory=list)
    dod_goal: Optional[float] = None
    n_samples: int = 0
    last_soc: float = 1.0

    # ------------------------------------------------------------------
    def metrics(self) -> AgingMetrics:
        """Lifetime five-metric snapshot (matches the engine tracker)."""
        return AgingMetrics.from_accumulator(
            self.acc,
            lifetime_ah_throughput=self.config.lifetime_ah_throughput,
            reference_current=self.config.reference_current,
        )

    def window_metrics(self) -> AgingMetrics:
        """Metrics since the last closed day boundary."""
        return AgingMetrics.from_accumulator(
            self.acc - self.day_mark,
            lifetime_ah_throughput=self.config.lifetime_ah_throughput,
            reference_current=self.config.reference_current,
        )

    def breakdown(self, weights: MetricWeights) -> ScoreBreakdown:
        """Decompose the lifetime Eq.-6 score into its weighted terms."""
        m = self.metrics()
        nat_term = weights.nat * min(1.0, m.nat * NAT_SCORE_SCALE)
        cf_term = weights.cf * (0.0 if math.isinf(m.cf) else m.cf_deficit)
        pc_term = weights.pc * m.pc
        return ScoreBreakdown(
            score=node_aging_score(m, weights),
            nat_term=nat_term,
            cf_term=cf_term,
            pc_term=pc_term,
        )

    def aging_speed(self) -> float:
        """Mean per-day weighted aging score (score units per day)."""
        if not self.day_scores:
            return 0.0
        return sum(self.day_scores) / len(self.day_scores)

    def elapsed_days(self) -> float:
        return self.acc.total_time_s / SECONDS_PER_DAY

    def eol_projection_days(self) -> float:
        """Days until NAT reaches 1 at the observed discharge rate."""
        days = self.elapsed_days()
        if days <= 0:
            return math.inf
        nat = self.metrics().nat
        rate = nat / days
        if rate <= 0:
            return math.inf
        return (1.0 - nat) / rate

    def plan_drift(self) -> Optional[float]:
        """Observed daily discharge vs the Eq.-7 planned allowance.

        Positive = spending throughput faster than the plan (the battery
        will die before the discard date); ``None`` when the run never
        published a DoD goal or nothing was discharged yet.
        """
        if self.dod_goal is None:
            return None
        days = self.elapsed_days()
        if days <= 0:
            return None
        planned_ah_per_day = self.dod_goal * self.config.capacity_ah
        if planned_ah_per_day <= 0:
            return None
        observed_ah_per_day = self.acc.discharged_ah / days
        return observed_ah_per_day / planned_ah_per_day - 1.0


@dataclass
class RunHealth:
    """Health state for one simulation run within a trace."""

    index: int
    policy: str = ""
    n_nodes: int = 0
    t_last: float = 0.0
    days_closed: int = 0
    #: From the trace_meta header, when the trace carried one.
    telemetry: str = ""
    stepper: str = ""
    batteries: Dict[str, BatteryHealth] = field(default_factory=dict)
    event_counts: Dict[str, int] = field(default_factory=dict)
    alerts: List[TraceEvent] = field(default_factory=list)

    @property
    def label(self) -> str:
        return self.policy or f"run{self.index}"

    def battery(self, node: str) -> BatteryHealth:
        try:
            return self.batteries[node]
        except KeyError:
            b = self.batteries[node] = BatteryHealth(node=node)
            return b

    def fleet_median_speed(self) -> float:
        speeds = sorted(b.aging_speed() for b in self.batteries.values())
        if not speeds:
            return 0.0
        mid = len(speeds) // 2
        if len(speeds) % 2:
            return speeds[mid]
        return 0.5 * (speeds[mid - 1] + speeds[mid])


class FleetHealthModel(EventSink):
    """Folds the event stream into per-run, per-battery health state.

    Use live by attaching to the bus for the duration of a run, or
    offline via :meth:`from_trace`. An optional :class:`~repro.obs.
    alerts.AlertEngine` is driven during folding — per-sample SoC-floor
    checks, per-day DDT and fleet aging-speed evaluation — so replaying
    a trace re-derives alerts even if the original run had none
    attached.
    """

    def __init__(
        self,
        weights: MetricWeights = EQUAL_WEIGHTS,
        alert_engine: Optional[AlertEngine] = None,
    ) -> None:
        self.weights = weights
        self.alerts = alert_engine
        self.runs: List[RunHealth] = []
        self._run: Optional[RunHealth] = None
        self.n_events = 0
        # Streaming decoder for columnar battery_frame events (frame
        # telemetry tier); reset at every run boundary so each run's
        # delta chain decodes independently.
        self._frames = FrameDecoder()
        self._pending_meta: Optional[TraceEvent] = None

    # ------------------------------------------------------------------
    # Stream consumption (EventSink contract)
    # ------------------------------------------------------------------
    def emit(self, event: TraceEvent) -> None:  # noqa: C901 - dispatcher
        self.n_events += 1
        kind = event.kind
        if kind == "trace_meta":
            # Header for the run about to start: reset the frame
            # decoder, but do not open an (anonymous) run scope — the
            # matching run_start follows immediately.
            self._frames.reset()
            self._pending_meta = event
            return
        if kind == "run_start":
            run = RunHealth(
                index=len(self.runs),
                policy=getattr(event, "policy", ""),
                n_nodes=getattr(event, "n_nodes", 0),
            )
            self.runs.append(run)
            self._run = run
            self._frames.reset()
            meta = self._pending_meta
            if meta is not None:
                run.telemetry = getattr(meta, "telemetry", "")
                run.stepper = getattr(meta, "stepper", "")
                self._pending_meta = None
            return
        run = self._current_run()
        run.event_counts[kind] = run.event_counts.get(kind, 0) + 1
        run.t_last = max(run.t_last, event.t)
        if kind == "battery_config":
            run.battery(event.node).config = BatteryConfig(
                lifetime_ah_throughput=event.lifetime_ah_throughput,
                reference_current=event.reference_current,
                capacity_ah=event.capacity_ah,
                cutoff_soc=event.cutoff_soc,
            )
        elif kind == "battery_sample":
            battery = run.battery(event.node)
            battery.acc.observe(
                event.soc,
                event.current_a,
                event.dt,
                battery.config.reference_current,
            )
            battery.n_samples += 1
            battery.last_soc = event.soc
        elif kind == "battery_frame":
            # A frame expands to the identical per-node tracker updates
            # (within the codec quantum — see obs.telemetry), keeping
            # the 1e-6 health-vs-engine contract.
            try:
                samples = self._frames.decode(event)
            except ConfigurationError:
                # Undecodable (e.g. a sliced trace missing the roster
                # frame): already counted above, nothing to fold.
                return
            dt = event.dt
            for node, soc, current_a in samples:
                battery = run.battery(node)
                battery.acc.observe(
                    soc, current_a, dt, battery.config.reference_current
                )
                battery.n_samples += 1
                battery.last_soc = soc
        elif kind == "day_start":
            self._close_day(run, event.t)
        elif kind == "dod_goal":
            run.battery(event.node).dod_goal = event.goal
        elif kind == "alert":
            run.alerts.append(event)

    def _current_run(self) -> RunHealth:
        if self._run is None:
            # Headless stream (no run_start): open an anonymous scope.
            self._run = RunHealth(index=len(self.runs))
            self.runs.append(self._run)
        return self._run

    def _close_day(self, run: RunHealth, t: float) -> None:
        """Close every battery's day window: score it, check rules."""
        if run.days_closed == 0 and all(
            b.n_samples == 0 for b in run.batteries.values()
        ):
            # The day-0 boundary fires before any sample; nothing to score.
            run.days_closed += 1
            return
        for battery in run.batteries.values():
            window = battery.window_metrics()
            score = node_aging_score(window, self.weights)
            battery.day_scores.append(score)
            battery.day_mark = battery.acc.copy()
            if self.alerts is not None and self.alerts.enabled:
                self.alerts.observe(
                    "ddt_window_breach", battery.node, window.ddt, t
                )
                self.alerts.observe(
                    "aging_speed_regression",
                    battery.node,
                    battery.aging_speed(),
                    t,
                )
        if self.alerts is not None and self.alerts.enabled and run.batteries:
            self.alerts.evaluate_fleet("aging_speed_regression", t)
        run.days_closed += 1

    def finalize(self) -> None:
        """Close the trailing partial day of every run (idempotent)."""
        for run in self.runs:
            saved = self._run
            self._run = run
            has_tail = any(
                (b.acc - b.day_mark).total_time_s > 0
                for b in run.batteries.values()
            )
            if has_tail:
                self._close_day(run, run.t_last)
            self._run = saved

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_trace(
        cls,
        path: str,
        weights: MetricWeights = EQUAL_WEIGHTS,
        alert_engine: Optional[AlertEngine] = None,
    ) -> "FleetHealthModel":
        """Replay a JSONL trace file into a finalized model."""
        from repro.obs.events import iter_events

        model = cls(weights=weights, alert_engine=alert_engine)
        for event in iter_events(path, strict=False):
            model.emit(event)
        model.finalize()
        return model

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> "FleetHealthReport":
        return FleetHealthReport(model=self)


METRIC_NAMES = ("nat", "cf", "pc", "ddt", "dr_mean")


@dataclass
class FleetHealthReport:
    """Renderable summary of a :class:`FleetHealthModel`."""

    model: FleetHealthModel

    def rows(self, run: RunHealth) -> List[tuple]:
        """Per-battery table rows for one run."""
        weights = self.model.weights
        median_speed = run.fleet_median_speed()
        rows = []
        for name in sorted(run.batteries):
            b = run.batteries[name]
            m = b.metrics()
            br = b.breakdown(weights)
            speed = b.aging_speed()
            rel = speed / median_speed if median_speed > 0 else 1.0
            eol = b.eol_projection_days()
            drift = b.plan_drift()
            rows.append(
                (
                    name,
                    m.nat * 1000.0,
                    m.cf if not math.isinf(m.cf) else float("inf"),
                    m.pc,
                    m.ddt,
                    m.dr_mean,
                    br.score,
                    br.nat_term,
                    br.cf_term,
                    br.pc_term,
                    speed,
                    rel,
                    eol if not math.isinf(eol) else float("inf"),
                    f"{drift * 100.0:+.1f}%" if drift is not None else "-",
                )
            )
        return rows

    def to_text(self) -> str:
        """The full operator-facing health report."""
        # Imported here: repro.analysis pulls in the campaign layer, which
        # imports repro.obs — a module-level import would be circular.
        from repro.analysis.reporting import format_table

        out: List[str] = []
        if not any(run.batteries for run in self.model.runs):
            stream_alerts = [a for run in self.model.runs for a in run.alerts]
            if not stream_alerts and not (
                self.model.alerts is not None and self.model.alerts.history
            ):
                return "(no battery telemetry in stream — was the run traced?)"
        headers = (
            "battery",
            "NAT x1e-3",
            "CF",
            "PC",
            "DDT",
            "DR",
            "score",
            "=NAT",
            "+CF",
            "+PC",
            "speed/d",
            "x fleet",
            "EOL (d)",
            "plan drift",
        )
        for run in self.model.runs:
            if not run.batteries:
                continue
            n_days = max(1, len(next(iter(run.batteries.values())).day_scores))
            out.append(
                format_table(
                    headers,
                    self.rows(run),
                    title=(
                        f"[{run.label}] fleet health — "
                        f"{len(run.batteries)} batteries, "
                        f"{n_days} scored day(s), t_end {run.t_last:.0f}s"
                    ),
                )
            )
            out.append("")
        out.extend(self._alert_lines())
        if not out:
            return "(no battery telemetry in stream — was the run traced?)"
        return "\n".join(out).rstrip()

    def _alert_lines(self) -> List[str]:
        """Alerts: those carried in the stream plus replay-derived ones."""
        lines: List[str] = []
        stream_alerts = [a for run in self.model.runs for a in run.alerts]
        engine = self.model.alerts
        derived = list(engine.history) if engine is not None else []
        if not stream_alerts and not derived:
            lines.append("alerts: none")
            return lines
        if stream_alerts:
            fired = [a for a in stream_alerts if not a.cleared]
            lines.append(
                f"alerts in stream: {len(fired)} fired, "
                f"{len(stream_alerts) - len(fired)} cleared"
            )
            for a in sorted(
                fired, key=lambda a: (a.severity != "critical", a.t)
            )[:20]:
                lines.append(
                    f"  [{a.severity:8s}] t={a.t:9.0f}s {a.rule} {a.node} "
                    f"(value {a.value:.4g}, threshold {a.threshold:.4g})"
                )
        if derived:
            fired = [a for a in derived if not a.cleared]
            lines.append(f"alerts derived on replay: {len(fired)} fired")
            for a in fired[:20]:
                lines.append(
                    f"  [{a.severity:8s}] t={a.t:9.0f}s {a.rule} {a.node} "
                    f"(value {a.value:.4g}, threshold {a.threshold:.4g})"
                )
        return lines
