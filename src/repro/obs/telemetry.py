"""Scale-ready battery telemetry: tiers, columnar frames, shared emission.

The observability layer's original per-node ``battery_sample`` stream
costs O(nodes x steps) Python work and disk bytes — ~15M events per
simulated day at 10,240 nodes — which forfeits most of the fleet
stepper's vectorization win the moment tracing is on.  This module makes
telemetry cost O(steps):

``TelemetryPolicy`` / :func:`parse_telemetry`
    The tier/cardinality config selected with ``--telemetry``:

    - ``full`` — every node every step, as one columnar
      :class:`~repro.obs.events.BatteryFrameEvent` per step;
    - ``full-events`` / ``events`` — the legacy lossless per-node
      :class:`~repro.obs.events.BatterySampleEvent` stream (the process
      default, so untouched callers see the historical wire format);
    - ``sampled:N[:node1,node2]`` — every N-th step (and optionally a
      node subset) in frame form; ``sampled-events:N[...]`` likewise in
      per-node form.  Emitted samples carry ``dt = N x step_dt`` so the
      time integral is preserved;
    - ``summary[:K]`` — one :class:`~repro.obs.events.FleetSummaryEvent`
      per step: SoC mean/min/max/p10, step charge/discharge Ah, and the
      top-K aging outliers by the Eq.-6 composite score.

:class:`FrameEncoder` / :class:`FrameDecoder`
    The columnar codec: SoC and current quantized to integers (x1e8 /
    x1e6) and delta-encoded frame-over-frame; the node roster rides only
    on a run's first frame.  A frame expands back into the *identical*
    per-node tracker updates (within the quantum), so
    ``FleetHealthModel`` replay keeps its 1e-6 contract vs the engine.

``TELEMETRY`` (:class:`BatteryTelemetry`)
    The singleton both steppers publish through: ``Node.observe_battery``
    calls :meth:`~BatteryTelemetry.record_sample` per node (with a
    :meth:`~BatteryTelemetry.flush_step` from the power path at step
    end), the fleet kernel calls
    :meth:`~BatteryTelemetry.record_fleet_step` once per step with the
    state arrays.  One emission helper means the per-node and frame
    schemas cannot drift between steppers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.metrics.weighted import EQUAL_WEIGHTS, NAT_SCORE_SCALE, node_aging_score
from repro.obs.bus import BUS
from repro.obs.events import BatteryFrameEvent, BatterySampleEvent, FleetSummaryEvent
from repro.obs.metrics import REGISTRY

__all__ = [
    "SCHEMA_VERSION",
    "SOC_SCALE",
    "CUR_SCALE",
    "TelemetryPolicy",
    "parse_telemetry",
    "make_battery_sample",
    "FrameEncoder",
    "FrameDecoder",
    "expand_frame",
    "BatteryTelemetry",
    "TELEMETRY",
]

#: Trace wire-schema version stamped into ``trace_meta`` headers.
#: Version 2 introduces frame/summary events and the header itself;
#: ``validate_trace`` rejects mismatched versions loudly.
SCHEMA_VERSION = 2

#: Quantization scales for frame columns. SoC lives in [0, 1] so 1e8
#: gives a 1e-8 quantum (5e-9 worst-case round error); currents are
#: O(10 A) so 1e6 gives a 1e-6 A quantum. Both are far inside the 1e-6
#: health-replay tolerance.
SOC_SCALE = 1e8
CUR_SCALE = 1e6

#: Refresh the ``obs/frame_compression_x`` gauge every this many frames
#: (re-serializing the per-node equivalent is too costly to do per step).
_COMPRESSION_GAUGE_EVERY = 128


def make_battery_sample(
    t: float, node: str, soc: float, current_a: float, dt: float
) -> BatterySampleEvent:
    """The one place a ``battery_sample`` event is constructed.

    Shared by the reference per-node path, the fleet kernel's events
    mode, and frame expansion, so the sample schema cannot silently
    diverge between steppers or between live and replayed telemetry.
    """
    return BatterySampleEvent(t=t, node=node, soc=soc, current_a=current_a, dt=dt)


@dataclass(frozen=True)
class TelemetryPolicy:
    """Which battery telemetry a traced run publishes, and in what form.

    The default (``full-events``) reproduces the historical wire format
    exactly: one lossless per-node sample event per node per step.
    """

    tier: str = "full"  # "full" | "sampled" | "summary"
    frames: bool = False  # columnar frames vs per-node sample events
    every: int = 1  # sampled: emit every N-th step
    nodes: Optional[Tuple[str, ...]] = None  # sampled: node subset
    top_k: int = 5  # summary: outlier count

    def spec(self) -> str:
        """Canonical spec string (round-trips through
        :func:`parse_telemetry`); recorded in ``trace_meta`` headers."""
        if self.tier == "summary":
            return f"summary:{self.top_k}"
        if self.tier == "sampled":
            base = "sampled" if self.frames else "sampled-events"
            out = f"{base}:{self.every}"
            if self.nodes:
                out += ":" + ",".join(self.nodes)
            return out
        return "full" if self.frames else "full-events"


def parse_telemetry(spec: str) -> TelemetryPolicy:
    """Parse a ``--telemetry`` spec string into a :class:`TelemetryPolicy`.

    Grammar: ``full`` | ``full-events`` | ``events`` |
    ``sampled[-events]:N[:node1,node2,...]`` | ``summary[:K]``.
    """
    text = spec.strip()
    head, _, rest = text.partition(":")
    head = head.strip().lower()
    if head == "full" or head == "full-events" or head == "events":
        if rest:
            raise ConfigurationError(f"telemetry tier {head!r} takes no arguments: {spec!r}")
        return TelemetryPolicy(tier="full", frames=(head == "full"))
    if head == "summary":
        top_k = 5
        if rest:
            try:
                top_k = int(rest)
            except ValueError:
                raise ConfigurationError(f"summary top-K must be an integer: {spec!r}") from None
            if top_k < 1:
                raise ConfigurationError(f"summary top-K must be >= 1: {spec!r}")
        return TelemetryPolicy(tier="summary", top_k=top_k)
    if head == "sampled" or head == "sampled-events":
        if not rest:
            raise ConfigurationError(f"sampled telemetry needs a period: {spec!r} (e.g. sampled:15)")
        period, _, node_part = rest.partition(":")
        try:
            every = int(period)
        except ValueError:
            raise ConfigurationError(f"sampled period must be an integer: {spec!r}") from None
        if every < 1:
            raise ConfigurationError(f"sampled period must be >= 1: {spec!r}")
        nodes: Optional[Tuple[str, ...]] = None
        if node_part:
            nodes = tuple(n.strip() for n in node_part.split(",") if n.strip())
            if not nodes:
                raise ConfigurationError(f"empty node subset in telemetry spec: {spec!r}")
        return TelemetryPolicy(
            tier="sampled", frames=(head == "sampled"), every=every, nodes=nodes
        )
    raise ConfigurationError(
        f"unknown telemetry spec {spec!r}; expected full, full-events, "
        f"sampled:N[:nodes], sampled-events:N[:nodes], or summary[:K]"
    )


class FrameEncoder:
    """Columnar encoder for one run's battery frames.

    Holds the quantized previous-frame columns so each frame stores only
    deltas; the first frame (``seq == 0``) deltas against zero and
    carries the node roster.
    """

    __slots__ = ("names", "n", "seq", "_prev_soc", "_prev_cur")

    def __init__(self, names: Sequence[str]) -> None:
        self.names = list(names)
        self.n = len(self.names)
        self.seq = 0
        self._prev_soc = [0] * self.n
        self._prev_cur = [0] * self.n

    def encode(
        self, t: float, dt: float, soc: Sequence[float], current: Sequence[float]
    ) -> BatteryFrameEvent:
        soc_q = [int(round(s * SOC_SCALE)) for s in soc]
        cur_q = [int(round(c * CUR_SCALE)) for c in current]
        soc_col = ",".join(str(q - p) for q, p in zip(soc_q, self._prev_soc))
        cur_col = ",".join(str(q - p) for q, p in zip(cur_q, self._prev_cur))
        self._prev_soc = soc_q
        self._prev_cur = cur_q
        event = BatteryFrameEvent(
            t=t,
            dt=dt,
            n=self.n,
            seq=self.seq,
            nodes=",".join(self.names) if self.seq == 0 else "",
            soc=soc_col,
            cur=cur_col,
        )
        self.seq += 1
        return event


class FrameDecoder:
    """Streaming decoder: feed frames in trace order, get samples back.

    Stateful by necessity (delta chains); call :meth:`reset` at every
    ``run_start``/``trace_meta`` boundary so runs decode independently.
    """

    __slots__ = ("names", "_prev_soc", "_prev_cur")

    def __init__(self) -> None:
        self.names: Optional[List[str]] = None
        self._prev_soc: List[int] = []
        self._prev_cur: List[int] = []

    def reset(self) -> None:
        self.names = None
        self._prev_soc = []
        self._prev_cur = []

    def decode(self, frame: BatteryFrameEvent) -> List[Tuple[str, float, float]]:
        """Expand one frame into ``(node, soc, current_a)`` triples."""
        if frame.nodes:
            self.names = frame.nodes.split(",")
            self._prev_soc = [0] * len(self.names)
            self._prev_cur = [0] * len(self.names)
        if self.names is None:
            raise ConfigurationError(
                "battery_frame before any roster-carrying frame (sliced trace?)"
            )
        if frame.n != len(self.names):
            raise ConfigurationError(
                f"battery_frame n={frame.n} does not match roster of {len(self.names)} nodes"
            )
        soc_q = self._apply(self._prev_soc, frame.soc, frame.n, "soc")
        cur_q = self._apply(self._prev_cur, frame.cur, frame.n, "cur")
        self._prev_soc = soc_q
        self._prev_cur = cur_q
        return [
            (name, sq / SOC_SCALE, cq / CUR_SCALE)
            for name, sq, cq in zip(self.names, soc_q, cur_q)
        ]

    @staticmethod
    def _apply(prev: List[int], column: str, n: int, label: str) -> List[int]:
        try:
            deltas = [int(x) for x in column.split(",")] if column else []
        except ValueError:
            raise ConfigurationError(f"battery_frame {label} column is not integer deltas") from None
        if len(deltas) != n:
            raise ConfigurationError(
                f"battery_frame {label} column has {len(deltas)} entries, expected {n}"
            )
        return [p + d for p, d in zip(prev, deltas)]


def expand_frame(decoder: FrameDecoder, frame: BatteryFrameEvent) -> List[BatterySampleEvent]:
    """Expand a frame into the per-node sample events it stands for.

    The synthetic samples carry the frame's ``t``/``dt`` and go through
    :func:`make_battery_sample`, so downstream consumers see exactly the
    events the ``full-events`` tier would have written (modulo the
    quantum and provenance ids).
    """
    return [
        make_battery_sample(frame.t, name, soc, cur, frame.dt)
        for name, soc, cur in decoder.decode(frame)
    ]


class BatteryTelemetry:
    """Process-wide battery telemetry publisher (singleton ``TELEMETRY``).

    Both steppers route their per-step battery observations here; the
    active :class:`TelemetryPolicy` decides what actually reaches the
    bus.  Per-run state (frame delta chains, step buffers) is reset by
    :meth:`start_run`.
    """

    def __init__(self) -> None:
        self.policy = TelemetryPolicy()
        self._reset_run()

    # -- lifecycle ----------------------------------------------------

    def _reset_run(self) -> None:
        self._encoder: Optional[FrameEncoder] = None
        self._node_set = frozenset(self.policy.nodes) if self.policy.nodes else None
        self._sel_idx = None  # fleet-path subset indices (lazy)
        self._sel_names: Optional[List[str]] = None
        self._frames_out = 0
        self._clear_buffer()

    def _clear_buffer(self) -> None:
        self._buf_names: List[str] = []
        self._buf_soc: List[float] = []
        self._buf_cur: List[float] = []
        self._buf_trackers: List[object] = []
        self._buf_t = 0.0
        self._buf_dt = 0.0

    def set_policy(self, policy) -> None:
        """Install a policy (a :class:`TelemetryPolicy` or a spec string)."""
        if isinstance(policy, str):
            policy = parse_telemetry(policy)
        self.policy = policy
        self._reset_run()

    def start_run(self) -> None:
        """Engine hook at run begin: drop stale per-run state so each
        run's first frame re-carries the roster and deltas re-anchor."""
        self._reset_run()

    def end_run(self) -> None:
        """Engine hook at run end: flush any buffered partial step."""
        self.flush_step()

    # -- per-node (reference stepper) path ----------------------------

    def record_sample(
        self,
        t: float,
        node: str,
        soc: float,
        current_a: float,
        dt: float,
        tracker=None,
    ) -> None:
        """Publish one node's sensor poll (reference power paths).

        In ``full-events``/``sampled-events`` tiers this emits the
        sample immediately (preserving the historical per-node event
        order); frame and summary tiers buffer until
        :meth:`flush_step`.  ``tracker`` (the node's
        :class:`~repro.metrics.tracker.MetricsTracker`) feeds the
        summary tier's outlier scores.
        """
        policy = self.policy
        if policy.tier == "summary":
            self._buf_t = t
            self._buf_dt = dt
            self._buf_names.append(node)
            self._buf_soc.append(soc)
            self._buf_cur.append(current_a)
            self._buf_trackers.append(tracker)
            return
        if self._node_set is not None and node not in self._node_set:
            return
        if not self._step_selected(t, dt):
            return
        dt_eff = dt * policy.every
        if not policy.frames:
            BUS.emit(make_battery_sample(t, node, soc, current_a, dt_eff))
            return
        self._buf_t = t
        self._buf_dt = dt_eff
        self._buf_names.append(node)
        self._buf_soc.append(soc)
        self._buf_cur.append(current_a)

    def flush_step(self) -> None:
        """End-of-step hook for the per-node paths: emit the buffered
        frame or summary, if the step produced one."""
        if not self._buf_names:
            return
        policy = self.policy
        if policy.tier == "summary":
            BUS.emit(self._summary_scalar())
        elif policy.frames:
            encoder = self._encoder
            if encoder is None or encoder.names != self._buf_names:
                encoder = self._encoder = FrameEncoder(self._buf_names)
            frame = encoder.encode(self._buf_t, self._buf_dt, self._buf_soc, self._buf_cur)
            self._emit_frame(frame, self._buf_names, self._buf_soc, self._buf_cur)
        self._clear_buffer()

    # -- fleet (vectorized stepper) path ------------------------------

    def record_fleet_step(self, t: float, dt: float, fleet) -> None:
        """Publish one step of the whole fleet from the state arrays.

        One call per step; no per-node Python loop unless the tier
        actually asks for per-node events.
        """
        policy = self.policy
        if policy.tier == "summary":
            BUS.emit(self._summary_fleet(t, dt, fleet))
            return
        if not self._step_selected(t, dt):
            return
        dt_eff = dt * policy.every
        names, soc, cur = self._fleet_view(fleet)
        if policy.frames:
            encoder = self._encoder
            if encoder is None or encoder.names != names:
                encoder = self._encoder = FrameEncoder(names)
            frame = encoder.encode(t, dt_eff, soc, cur)
            self._emit_frame(frame, names, soc, cur)
        else:
            for name, s, c in zip(names, soc, cur):
                BUS.emit(make_battery_sample(t, name, s, c, dt_eff))

    def _fleet_view(self, fleet):
        """(names, soc list, current list) for the selected node subset.

        ``.tolist()`` round-trips the float64 arrays bit-exactly, so
        events mode stays byte-identical with the reference stepper.
        """
        if self._node_set is None:
            return fleet.node_names, fleet.soc.tolist(), fleet.last_current.tolist()
        if self._sel_idx is None or self._sel_names is None:
            self._sel_idx = [
                i for i, name in enumerate(fleet.node_names) if name in self._node_set
            ]
            self._sel_names = [fleet.node_names[i] for i in self._sel_idx]
        soc = fleet.soc
        cur = fleet.last_current
        return (
            self._sel_names,
            [float(soc[i]) for i in self._sel_idx],
            [float(cur[i]) for i in self._sel_idx],
        )

    # -- shared internals ---------------------------------------------

    def _step_selected(self, t: float, dt: float) -> bool:
        """Stateless every-N gating, identical across steppers.

        Uses the step ordinal derived from ``t``/``dt`` (both steppers
        present the same clock), keeping every N-th step and dropping a
        trailing partial window.
        """
        every = self.policy.every
        if every <= 1:
            return True
        return (int(round(t / dt)) + 1) % every == 0

    def _emit_frame(self, frame, names, socs, curs) -> None:
        BUS.emit(frame)
        self._frames_out += 1
        if REGISTRY.enabled and (
            self._frames_out == 1 or self._frames_out % _COMPRESSION_GAUGE_EVERY == 0
        ):
            frame_bytes = len(frame.to_json()) + 1
            sample_bytes = sum(
                len(make_battery_sample(frame.t, name, s, c, frame.dt).to_json()) + 1
                for name, s, c in zip(names, socs, curs)
            )
            if frame_bytes:
                REGISTRY.gauge("obs/frame_compression_x").set(sample_bytes / frame_bytes)

    # -- summary tier -------------------------------------------------

    def _top_k_text(self, scored) -> str:
        """``"node:score,..."`` for the K worst (highest-score) nodes."""
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        k = min(self.policy.top_k, len(scored))
        return ",".join(f"{name}:{score:.6g}" for name, score in scored[:k])

    def _summary_scalar(self) -> FleetSummaryEvent:
        socs = self._buf_soc
        curs = self._buf_cur
        dt = self._buf_dt
        n = len(socs)
        discharge_ah = sum(c * dt / 3600.0 for c in curs if c > 0.0)
        charge_ah = sum(-c * dt / 3600.0 for c in curs if c < 0.0)
        scored = [
            (name, node_aging_score(tracker.lifetime(), EQUAL_WEIGHTS))
            for name, tracker in zip(self._buf_names, self._buf_trackers)
            if tracker is not None
        ]
        ordered = sorted(socs)
        return FleetSummaryEvent(
            t=self._buf_t,
            dt=dt,
            n=n,
            soc_mean=sum(socs) / n,
            soc_min=ordered[0],
            soc_max=ordered[-1],
            soc_p10=ordered[int(0.1 * (n - 1))],
            discharge_ah=discharge_ah,
            charge_ah=charge_ah,
            top=self._top_k_text(scored),
        )

    def _summary_fleet(self, t: float, dt: float, fleet) -> FleetSummaryEvent:
        import numpy as np

        soc = fleet.soc
        cur = fleet.last_current
        n = soc.shape[0]
        discharge_ah = float(cur[cur > 0.0].sum()) * dt / 3600.0
        charge_ah = float(-cur[cur < 0.0].sum()) * dt / 3600.0
        scores = self._fleet_scores(fleet, np)
        order = np.argsort(-scores, kind="stable")[: min(self.policy.top_k, n)]
        top = ",".join(
            f"{fleet.node_names[i]}:{scores[i]:.6g}" for i in order.tolist()
        )
        ordered = np.sort(soc)
        return FleetSummaryEvent(
            t=t,
            dt=dt,
            n=n,
            soc_mean=float(soc.mean()),
            soc_min=float(ordered[0]),
            soc_max=float(ordered[-1]),
            soc_p10=float(ordered[int(0.1 * (n - 1))]),
            discharge_ah=discharge_ah,
            charge_ah=charge_ah,
            top=top,
        )

    @staticmethod
    def _fleet_scores(fleet, np):
        """Vectorized lifetime Eq.-6 scores from the tracker arrays.

        Mirrors ``node_aging_score(tracker.lifetime(), EQUAL_WEIGHTS)``
        term by term (NAT saturation, CF deficit with the
        charge-only/idle conventions, Peukert class from region Ah
        shares).  Summary aggregates carry no cross-stepper bitwise
        contract — only the per-node tiers do.
        """
        discharged = fleet.tr_discharged_ah
        charged = fleet.tr_charged_ah
        has_discharge = discharged > 0.0
        safe_discharged = np.where(has_discharge, discharged, 1.0)
        nat_term = np.minimum(1.0, (discharged / fleet.tracker_lifetime_ah) * NAT_SCORE_SCALE)
        cf = charged / safe_discharged
        cf_deficit = np.where(
            has_discharge & (cf < 1.0), 1.0 - np.maximum(cf, 0.0), 0.0
        )
        region_weights = np.array([1.0, 2.0, 3.0, 4.0])
        shares = fleet.tr_region / safe_discharged
        pc = np.where(
            has_discharge, (shares * region_weights[:, None]).sum(axis=0) / 4.0, 0.0
        )
        w = EQUAL_WEIGHTS
        return w.cf * cf_deficit + w.pc * pc + w.nat * nat_term


#: Process-wide singleton both steppers publish through.
TELEMETRY = BatteryTelemetry()
