"""The process-local trace bus.

One module-level :data:`BUS` instance fans emitted events out to its
attached sinks. Instrumented code follows one discipline everywhere::

    from repro.obs import BUS
    ...
    if BUS.enabled:
        BUS.emit(VMMigratedEvent(t=BUS.now, vm=..., source=..., dest=...))

``enabled`` is a plain attribute recomputed whenever the sink set
changes, so the disabled path costs a single attribute load and branch —
no event object is ever allocated. Attaching only :class:`~repro.obs.
sinks.NullSink` instances keeps the bus disabled (that is the null
sink's contract).

``now`` is the simulation clock: the engine stamps it at the start of
every step, so deep call sites (cluster placement, power routing) can
timestamp events without threading ``t`` through every signature.

Worker processes of a parallel campaign start with their own fresh,
disabled bus — engine events are only captured from cells that run in
this process (``--workers 1``, the default).
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, List, Optional

from repro.obs.events import TraceEvent
from repro.obs.metrics import REGISTRY
from repro.obs.sinks import (
    DEFAULT_MEMORY_SINK_MAXLEN,
    EventSink,
    JsonlSink,
    MemorySink,
    NullSink,
)

#: Ambient provenance context (see :mod:`repro.obs.spans` for the public
#: ``caused_by``/``in_span`` managers). Defined here, next to the emit
#: path that reads them, so ``spans`` can import ``bus`` without a cycle.
CURRENT_CAUSE: ContextVar[int] = ContextVar("repro_obs_cause", default=0)
CURRENT_SPAN: ContextVar[int] = ContextVar("repro_obs_span", default=0)


class TraceBus:
    """Dispatches events to sinks; disabled when no real sink listens."""

    __slots__ = ("enabled", "now", "n_emitted", "_sinks", "_next_eid")

    def __init__(self) -> None:
        self.enabled: bool = False
        self.now: float = 0.0
        self.n_emitted: int = 0
        self._sinks: List[EventSink] = []
        self._next_eid: int = 1

    # ------------------------------------------------------------------
    # Sink management
    # ------------------------------------------------------------------
    def add_sink(self, sink: EventSink) -> EventSink:
        """Attach a sink; returns it for chaining."""
        self._sinks.append(sink)
        self._recompute_enabled()
        return sink

    def remove_sink(self, sink: EventSink) -> None:
        """Detach a sink (no error if absent); does not close it."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass
        self._recompute_enabled()

    def clear_sinks(self) -> None:
        """Detach every sink and reset the clock/counters."""
        self._sinks.clear()
        self.now = 0.0
        self.n_emitted = 0
        self._next_eid = 1
        self._recompute_enabled()

    @property
    def sinks(self) -> List[EventSink]:
        return list(self._sinks)

    def _recompute_enabled(self) -> None:
        self.enabled = any(not isinstance(s, NullSink) for s in self._sinks)

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def next_eid(self) -> int:
        """Claim the next event id (used to pre-assign span ids)."""
        eid = self._next_eid
        self._next_eid += 1
        return eid

    def emit(self, event: TraceEvent) -> None:
        """Deliver one event to every attached sink.

        Call sites must guard with ``if bus.enabled`` — that guard is the
        whole overhead story of the disabled path.

        Emission stamps provenance in place before fan-out — a unique
        ``eid``, plus ``cause_id``/``span_id`` from the ambient context
        when the emit site did not set them — so live sinks and the
        JSONL file see byte-identical provenance.
        """
        self.n_emitted += 1
        if not event.eid:
            event.eid = self._next_eid
            self._next_eid += 1
        if not event.cause_id:
            cause = CURRENT_CAUSE.get()
            if cause:
                event.cause_id = cause
        if not event.span_id:
            span = CURRENT_SPAN.get()
            if span:
                event.span_id = span
        if REGISTRY.enabled:
            REGISTRY.counter("obs/events_total").inc()
            REGISTRY.counter("obs/events/" + event.kind).inc()
        for sink in self._sinks:
            sink.emit(event)

    # ------------------------------------------------------------------
    # Scoped helpers
    # ------------------------------------------------------------------
    @contextmanager
    def capture(
        self, maxlen: Optional[int] = DEFAULT_MEMORY_SINK_MAXLEN
    ) -> Iterator[MemorySink]:
        """Attach a memory ring for the duration of a ``with`` block.

        Bounded by default (``maxlen=None`` opts into unbounded)."""
        sink = MemorySink(maxlen=maxlen)
        self.add_sink(sink)
        try:
            yield sink
        finally:
            self.remove_sink(sink)

    @contextmanager
    def trace_to(self, path: str) -> Iterator[JsonlSink]:
        """Write events to a JSONL file for the duration of a block."""
        sink = JsonlSink(path)
        self.add_sink(sink)
        try:
            yield sink
        finally:
            self.remove_sink(sink)
            sink.close()


#: The process-wide bus every instrumented module emits to.
BUS = TraceBus()
