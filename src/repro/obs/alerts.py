"""Declarative alert engine over the telemetry stream.

The paper's controller watches the five aging metrics continuously and
its DDT/DR watchdogs act below 40 % SoC; this module turns those checks
(and fleet-level regressions) into operator-facing, typed
:class:`~repro.obs.events.AlertEvent` objects with severities,
hysteresis, and dedup.

Three rule shapes cover the monitoring the health layer needs:

- **threshold** — fire when a value crosses a line (above or below),
  clear with hysteresis at ``threshold -/+ clear_margin``;
- **rate** — fire on the value's rate of change over a rolling window
  (aging-speed spikes, fade ramps);
- **fleet** — fire when one key's value exceeds ``fleet_factor`` times
  the fleet median (per-battery regression against its peers).

A fired alert stays *active* until its clear condition holds; while
active it is deduplicated (re-emitted only every ``renotify_s``). The
process-wide :data:`ALERTS` engine is disabled by default and enabled by
:func:`repro.obs.enable_observability`, mirroring the bus/registry
contract: live call sites (slowdown monitor, planned aging, campaign
runner) guard on ``ALERTS.enabled`` so the off path costs one branch.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, replace
from statistics import median
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.events import AlertEvent

#: Severity ranking, least to most urgent.
SEVERITIES = ("info", "warning", "critical")
SEVERITY_ORDER: Dict[str, int] = {s: i for i, s in enumerate(SEVERITIES)}


def severity_rank(severity: str) -> int:
    """Numeric urgency of a severity label (higher = more urgent)."""
    try:
        return SEVERITY_ORDER[severity]
    except KeyError:
        raise ConfigurationError(
            f"unknown severity {severity!r}; choose from {SEVERITIES}"
        ) from None


@dataclass(frozen=True)
class AlertRule:
    """One declarative monitoring rule.

    Attributes
    ----------
    kind:
        ``"threshold"`` compares the observed value itself; ``"rate"``
        compares its derivative per second over ``window_s``; ``"fleet"``
        compares each key's value to the fleet median (evaluated by
        :meth:`AlertEngine.evaluate_fleet`).
    direction:
        ``"above"`` fires when the compared quantity exceeds
        ``threshold``; ``"below"`` when it drops under it.
    clear_margin:
        Hysteresis band: an *above* alert clears only once the value
        falls below ``threshold - clear_margin`` (mirrored for *below*).
    renotify_s:
        While active, the alert is re-emitted at most this often
        (``inf`` = fire once per episode, the dedup default; ``0`` =
        every breach fires).
    fleet_factor / min_value:
        Fleet rules fire for keys whose value exceeds
        ``fleet_factor x median`` and is at least ``min_value`` (the
        floor suppresses noise when the whole fleet sits near zero).
    """

    name: str
    description: str = ""
    severity: str = "warning"
    kind: str = "threshold"
    threshold: float = 0.0
    direction: str = "above"
    clear_margin: float = 0.0
    renotify_s: float = math.inf
    window_s: float = 0.0
    fleet_factor: float = 2.0
    min_value: float = 0.0

    def __post_init__(self) -> None:
        severity_rank(self.severity)
        if self.kind not in ("threshold", "rate", "fleet"):
            raise ConfigurationError(f"unknown rule kind {self.kind!r}")
        if self.direction not in ("above", "below"):
            raise ConfigurationError(f"unknown direction {self.direction!r}")
        if self.clear_margin < 0:
            raise ConfigurationError("clear_margin must be >= 0")
        if self.renotify_s < 0:
            raise ConfigurationError("renotify_s must be >= 0")
        if self.kind == "rate" and self.window_s <= 0:
            raise ConfigurationError("rate rules need a positive window_s")
        if self.kind == "fleet" and self.fleet_factor <= 0:
            raise ConfigurationError("fleet_factor must be positive")

    # ------------------------------------------------------------------
    def breached(self, value: float, threshold: Optional[float] = None) -> bool:
        """Does ``value`` violate the rule's line?"""
        line = self.threshold if threshold is None else threshold
        return value > line if self.direction == "above" else value < line

    def released(self, value: float, threshold: Optional[float] = None) -> bool:
        """Has ``value`` crossed back past the hysteresis band?"""
        line = self.threshold if threshold is None else threshold
        if self.direction == "above":
            return value <= line - self.clear_margin
        return value >= line + self.clear_margin


@dataclass
class ActiveAlert:
    """Book-keeping for one (rule, key) currently in breach.

    ``eid`` is the bus event id of the latest emission for this episode
    (0 when the engine has no enabled bus) — the causal anchor control
    actions cite while the alert stays active but deduplicated.
    """

    rule: AlertRule
    key: str
    since_t: float
    last_emit_t: float
    value: float
    threshold: float
    eid: int = 0


class AlertEngine:
    """Evaluates rules against observed values and emits typed alerts.

    Attach a ``bus`` to publish fired alerts as events on the telemetry
    stream (the process engine publishes on :data:`repro.obs.BUS`); with
    ``bus=None`` the engine only records :attr:`history` — the mode the
    trace-replay health tooling uses.
    """

    def __init__(self, rules: Iterable[AlertRule] = (), bus=None) -> None:
        self.enabled: bool = False
        self.bus = bus
        self._rules: Dict[str, AlertRule] = {}
        self._active: Dict[Tuple[str, str], ActiveAlert] = {}
        #: Per (rule, key) sample history for rate rules.
        self._rate_hist: Dict[Tuple[str, str], Deque[Tuple[float, float]]] = {}
        #: Per rule: latest value per key, for fleet evaluation.
        self._fleet_values: Dict[str, Dict[str, Tuple[float, float]]] = {}
        self.history: List[AlertEvent] = []
        for rule in rules:
            self.add_rule(rule)

    # ------------------------------------------------------------------
    # Rule management
    # ------------------------------------------------------------------
    def add_rule(self, rule: AlertRule) -> AlertRule:
        self._rules[rule.name] = rule
        return rule

    def rule(self, name: str) -> AlertRule:
        try:
            return self._rules[name]
        except KeyError:
            raise ConfigurationError(f"no alert rule named {name!r}") from None

    @property
    def rules(self) -> List[AlertRule]:
        return list(self._rules.values())

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def observe(
        self,
        rule_name: str,
        key: str,
        value: float,
        t: float,
        threshold: Optional[float] = None,
    ) -> Optional[AlertEvent]:
        """Feed one observation; returns the emitted alert, if any.

        ``threshold`` overrides the rule's static line for this call —
        per-node planned-aging floors use it. Fleet rules only *record*
        here; call :meth:`evaluate_fleet` to compare the fleet.
        """
        rule = self.rule(rule_name)
        if rule.kind == "fleet":
            self._fleet_values.setdefault(rule_name, {})[key] = (value, t)
            return None
        if rule.kind == "rate":
            rate = self._update_rate(rule, key, value, t)
            if rate is None:
                return None
            value = rate
        return self._evaluate(rule, key, value, t, threshold)

    def _update_rate(
        self, rule: AlertRule, key: str, value: float, t: float
    ) -> Optional[float]:
        """Fold a sample into the rate window; return the current rate."""
        hist = self._rate_hist.setdefault((rule.name, key), deque())
        hist.append((t, value))
        # Trim to the window, keeping one sample at or beyond its edge so
        # the derivative always spans at least window_s once warmed up.
        while len(hist) >= 2 and t - hist[1][0] >= rule.window_s:
            hist.popleft()
        t0, v0 = hist[0]
        if t <= t0:
            return None
        return (value - v0) / (t - t0)

    def _evaluate(
        self,
        rule: AlertRule,
        key: str,
        value: float,
        t: float,
        threshold: Optional[float] = None,
    ) -> Optional[AlertEvent]:
        line = rule.threshold if threshold is None else threshold
        state_key = (rule.name, key)
        active = self._active.get(state_key)
        if rule.breached(value, line):
            if active is None:
                active = self._active[state_key] = ActiveAlert(
                    rule=rule, key=key, since_t=t, last_emit_t=t,
                    value=value, threshold=line,
                )
                event = self._fire(rule, key, value, line, t)
                active.eid = event.eid
                return event
            # Dedup: an already-active alert re-emits only on renotify.
            active.value = value
            active.threshold = line
            if t - active.last_emit_t >= rule.renotify_s:
                active.last_emit_t = t
                event = self._fire(rule, key, value, line, t)
                active.eid = event.eid or active.eid
                return event
            return None
        if active is not None and rule.released(value, active.threshold):
            del self._active[state_key]
            return self._fire(rule, key, value, active.threshold, t, cleared=True)
        return None

    def evaluate_fleet(self, rule_name: str, t: float) -> List[AlertEvent]:
        """Compare every key's recorded value to the fleet median."""
        rule = self.rule(rule_name)
        if rule.kind != "fleet":
            raise ConfigurationError(f"{rule_name!r} is not a fleet rule")
        values = self._fleet_values.get(rule_name, {})
        if len(values) < 2:
            return []
        fleet_median = median(v for v, _ in values.values())
        emitted: List[AlertEvent] = []
        # The min_value floor keeps a near-zero fleet median from turning
        # numerical noise into "regressions".
        line = max(rule.fleet_factor * fleet_median, rule.min_value)
        for key, (value, _) in sorted(values.items()):
            event = self._evaluate(rule, key, value, t, line)
            if event is not None:
                emitted.append(event)
        return emitted

    def _fire(
        self,
        rule: AlertRule,
        key: str,
        value: float,
        threshold: float,
        t: float,
        cleared: bool = False,
    ) -> AlertEvent:
        verb = "cleared" if cleared else "fired"
        event = AlertEvent(
            t=t,
            rule=rule.name,
            node=key,
            severity="info" if cleared else rule.severity,
            value=value,
            threshold=threshold,
            cleared=cleared,
            message=f"{rule.name} {verb} for {key}: "
            f"value {value:.4g} vs threshold {threshold:.4g}",
        )
        self.history.append(event)
        if self.bus is not None and self.bus.enabled:
            self.bus.emit(event)
        return event

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def active(self) -> List[ActiveAlert]:
        """Currently-breached alerts, most severe first."""
        return sorted(
            self._active.values(),
            key=lambda a: (-severity_rank(a.rule.severity), a.rule.name, a.key),
        )

    def is_active(self, rule_name: str, key: str) -> bool:
        """Is a (rule, key) episode currently in breach?

        O(1); hot-path callers use it to skip computing expensive
        watched values when the value is known-healthy and no episode
        needs to observe its hysteresis release.
        """
        return (rule_name, key) in self._active

    def active_cause(self, rule_name: str, key: str) -> int:
        """Event id anchoring an active (rule, key) breach, or 0.

        Lets control code cite the alert that is *still* driving an
        action even when dedup suppressed a fresh emission this pass.
        """
        active = self._active.get((rule_name, key))
        return active.eid if active is not None else 0

    def fired(self, rule_name: Optional[str] = None) -> List[AlertEvent]:
        """Non-cleared alert emissions, optionally for one rule."""
        return [
            e
            for e in self.history
            if not e.cleared and (rule_name is None or e.rule == rule_name)
        ]

    def reset(self) -> None:
        """Drop all alert state and history (rules and ``enabled`` persist)."""
        self._active.clear()
        self._rate_hist.clear()
        self._fleet_values.clear()
        self.history.clear()


# ----------------------------------------------------------------------
# The standard rule set
# ----------------------------------------------------------------------
def default_rules() -> List[AlertRule]:
    """The fleet-health rule set the CLI and live monitors install.

    Thresholds mirror the control defaults they watch
    (:class:`~repro.core.slowdown.SlowdownConfig`): the rules alert on
    the same lines the Fig.-9 procedure acts on, so an alert with no
    matching action is itself a policy regression signal.
    """
    return [
        AlertRule(
            name="ddt_window_breach",
            description="window deep-discharge time exceeded its budget",
            severity="warning",
            threshold=0.25,
            direction="above",
            clear_margin=0.05,
        ),
        AlertRule(
            name="dr_reserve_exhaustion",
            description="present draw leaves less than the emergency reserve",
            severity="critical",
            threshold=120.0,
            direction="below",
            clear_margin=60.0,
        ),
        AlertRule(
            name="soc_floor_violation",
            description="battery fell through its protected SoC floor",
            severity="critical",
            threshold=0.28,
            direction="below",
            clear_margin=0.02,
        ),
        AlertRule(
            name="aging_speed_regression",
            description="battery ages faster than the fleet median",
            severity="warning",
            kind="fleet",
            fleet_factor=2.0,
            min_value=1e-6,
        ),
        AlertRule(
            name="aging_score_ramp",
            description="weighted aging score rising anomalously fast",
            severity="info",
            kind="rate",
            threshold=0.5 / 86_400.0,  # half a score unit per day
            direction="above",
            window_s=6 * 3600.0,
        ),
        AlertRule(
            name="cache_miss_storm",
            description="campaign cache served almost nothing",
            severity="warning",
            threshold=0.75,
            direction="above",
            renotify_s=0.0,
        ),
        AlertRule(
            name="dod_goal_saturated",
            description="Eq.-7 DoD goal pinned at its 90 % ceiling",
            severity="info",
            threshold=0.899,
            direction="above",
        ),
        AlertRule(
            name="perf_regression",
            description="benchmark metric fell outside its rolling baseline",
            severity="warning",
            # Observed value is the robust-sigma deviation computed by
            # repro.perf.regression; threshold mirrors its
            # DEVIATION_THRESHOLD (alerts cannot import perf — the perf
            # CLI feeds this engine, not the other way around).
            threshold=4.0,
            direction="above",
            renotify_s=0.0,
        ),
    ]


def rules_by_name(rules: Iterable[AlertRule]) -> Dict[str, AlertRule]:
    return {r.name: r for r in rules}


def with_thresholds(base: AlertRule, **overrides) -> AlertRule:
    """A copy of ``base`` with fields replaced (rule sets are frozen)."""
    return replace(base, **overrides)


#: The process-wide engine live control code observes into. Disabled by
#: default; ``enable_observability`` turns it on with ``default_rules``.
ALERTS = AlertEngine()
