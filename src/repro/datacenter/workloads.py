"""Synthetic workload profiles for the paper's six applications.

The prototype deploys three HiBench workloads (Nutch Indexing, K-Means
Clustering, Word Count) and three CloudSuite workloads (Software Testing,
Web Serving, Data Analytics). BAAT consumes only coarse power/energy
profiles — Table 3 classifies demand into Large/Small power x More/Less
energy — so each application is modelled as a utilisation process with a
mean level, a diurnal/periodic component, and stochastic burst noise,
parameterised to land in the same Table-3 quadrant as the real
application:

====================  =========  ========  =============================
Workload              Power      Energy    Character
====================  =========  ========  =============================
nutch_indexing        Large      More      sustained crawl/index batches
kmeans_clustering     Large      Less      short, CPU-saturating bursts
word_count            Small      Less      brief MapReduce jobs
software_testing      Large      More      resource-hungry, long-running
web_serving           Small      More      diurnal request-driven load
data_analytics        Small      More      steady scan-heavy analytics
====================  =========  ========  =============================
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.units import SECONDS_PER_HOUR, clamp


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical description of one application's utilisation process.

    Attributes
    ----------
    name:
        Application label.
    mean_util:
        Long-run mean CPU utilisation contribution in [0, 1].
    burst_util:
        Additional utilisation reached at burst peaks.
    period_s:
        Period of the deterministic (diurnal or batch-cycle) component.
    burstiness:
        Std-dev of the stochastic component relative to ``mean_util``.
    duty_cycle:
        Fraction of each period the workload is active (batch jobs < 1).
    phase:
        Phase offset of the periodic component, as a fraction of period.
    """

    name: str
    mean_util: float
    burst_util: float
    period_s: float
    burstiness: float
    duty_cycle: float = 1.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.mean_util <= 1.0:
            raise ConfigurationError("mean_util must be in [0, 1]")
        if self.burst_util < 0 or self.mean_util + self.burst_util > 1.0 + 1e-9:
            raise ConfigurationError("mean_util + burst_util must be <= 1")
        if self.period_s <= 0:
            raise ConfigurationError("period_s must be positive")
        if not 0.0 < self.duty_cycle <= 1.0:
            raise ConfigurationError("duty_cycle must be in (0, 1]")

    def utilization_at(self, t: float, rng: Optional[np.random.Generator] = None) -> float:
        """Instantaneous utilisation demand at simulation time ``t``.

        Deterministic when ``rng`` is omitted (useful for tests); with an
        ``rng`` a Gaussian burst term is added.
        """
        cycle_pos = ((t / self.period_s) + self.phase) % 1.0
        if cycle_pos > self.duty_cycle:
            return 0.0
        # Raised-cosine activity profile across the active part of the cycle.
        wave = 0.5 - 0.5 * math.cos(2.0 * math.pi * cycle_pos / self.duty_cycle)
        util = self.mean_util + self.burst_util * wave
        if rng is not None and self.burstiness > 0:
            util += rng.normal(0.0, self.burstiness * self.mean_util)
        return clamp(util, 0.0, 1.0)

    def mean_power_w(self, idle_w: float, peak_w: float) -> float:
        """Expected power contribution on a server with the given envelope."""
        effective = self.mean_util + 0.5 * self.burst_util
        return effective * self.duty_cycle * (peak_w - idle_w)

    def energy_per_day_wh(self, idle_w: float, peak_w: float) -> float:
        """Expected daily dynamic energy on the given server envelope."""
        return self.mean_power_w(idle_w, peak_w) * 24.0


#: The six applications of section V-B, as (profile, Table-3 quadrant hint).
PAPER_WORKLOADS: Dict[str, WorkloadProfile] = {
    "nutch_indexing": WorkloadProfile(
        name="nutch_indexing",
        mean_util=0.62,
        burst_util=0.25,
        period_s=2.0 * SECONDS_PER_HOUR,
        burstiness=0.10,
        duty_cycle=0.9,
    ),
    "kmeans_clustering": WorkloadProfile(
        name="kmeans_clustering",
        mean_util=0.68,
        burst_util=0.30,
        period_s=0.5 * SECONDS_PER_HOUR,
        burstiness=0.08,
        duty_cycle=0.45,
    ),
    "word_count": WorkloadProfile(
        name="word_count",
        mean_util=0.38,
        burst_util=0.20,
        period_s=0.25 * SECONDS_PER_HOUR,
        burstiness=0.15,
        duty_cycle=0.5,
    ),
    "software_testing": WorkloadProfile(
        name="software_testing",
        mean_util=0.72,
        burst_util=0.25,
        period_s=4.0 * SECONDS_PER_HOUR,
        burstiness=0.05,
        duty_cycle=1.0,
    ),
    "web_serving": WorkloadProfile(
        name="web_serving",
        mean_util=0.45,
        burst_util=0.25,
        period_s=24.0 * SECONDS_PER_HOUR,
        burstiness=0.12,
        duty_cycle=1.0,
        phase=0.25,
    ),
    "data_analytics": WorkloadProfile(
        name="data_analytics",
        mean_util=0.50,
        burst_util=0.15,
        period_s=6.0 * SECONDS_PER_HOUR,
        burstiness=0.08,
        duty_cycle=1.0,
    ),
}


def workload_by_name(name: str) -> WorkloadProfile:
    """Look up one of the six paper workloads by name."""
    try:
        return PAPER_WORKLOADS[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown workload {name!r}; choose from {sorted(PAPER_WORKLOADS)}"
        ) from exc


def standard_mix() -> Tuple[WorkloadProfile, ...]:
    """The full six-application mix, one VM each, in a stable order."""
    return tuple(PAPER_WORKLOADS[name] for name in sorted(PAPER_WORKLOADS))
