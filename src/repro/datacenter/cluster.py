"""Cluster: the set of nodes plus VM placement bookkeeping.

Provides the operations BAAT's schemes need: enumerate nodes with their
aging metrics, place a VM on a chosen node, migrate a VM between nodes
(with the stop-and-copy overhead modelled in :mod:`repro.datacenter.vm`),
and aggregate cluster-level statistics.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.datacenter.node import Node
from repro.datacenter.vm import VM
from repro.errors import ConfigurationError, MigrationError, SchedulingError
from repro.obs import BUS, REGISTRY
from repro.obs.events import VMMigratedEvent, VMPlacedEvent
from repro.obs.spans import SPANS

#: A server saturates when hosted VMs' mean utilisation exceeds this; used
#: as the CPU resource constraint for *placement* feasibility.
CPU_HEADROOM_LIMIT = 1.0

#: Migration may overcommit up to this limit: consolidated VMs time-share
#: the CPU (the engine models the contention slowdown), which is how BAAT
#: packs work onto fewer servers during supply shortfalls.
MIGRATION_HEADROOM_LIMIT = 1.6


class Cluster:
    """Nodes plus the VM registry."""

    def __init__(self, nodes: Sequence[Node]):
        if not nodes:
            raise ConfigurationError("a cluster needs at least one node")
        names = [n.name for n in nodes]
        if len(set(names)) != len(names):
            raise ConfigurationError("node names must be unique")
        self.nodes: List[Node] = list(nodes)
        self._by_name: Dict[str, Node] = {n.name: n for n in nodes}
        self.vms: Dict[str, VM] = {}

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def node(self, name: str) -> Node:
        """Fetch a node by name."""
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise ConfigurationError(f"unknown node {name!r}") from exc

    def vm(self, name: str) -> VM:
        """Fetch a VM by name."""
        try:
            return self.vms[name]
        except KeyError as exc:
            raise ConfigurationError(f"unknown VM {name!r}") from exc

    def vms_on(self, node_name: str) -> List[VM]:
        """All VMs currently hosted on a node."""
        return list(self.node(node_name).server.vms)

    # ------------------------------------------------------------------
    # Placement / migration
    # ------------------------------------------------------------------
    def place(self, vm: VM, node_name: str) -> None:
        """Place an unhosted VM on a node."""
        if vm.name in self.vms and vm.host is not None:
            raise SchedulingError(f"VM {vm.name} is already placed on {vm.host}")
        node = self.node(node_name)
        if not self._fits(node, vm):
            raise SchedulingError(
                f"node {node_name} lacks CPU headroom for VM {vm.name}"
            )
        node.server.attach(vm)
        self.vms[vm.name] = vm
        if BUS.enabled:
            BUS.emit(VMPlacedEvent(t=BUS.now, vm=vm.name, node=node_name))
        if REGISTRY.enabled:
            REGISTRY.counter("cluster/placements").inc()

    def migrate(self, vm_name: str, destination: str) -> None:
        """Live-migrate a VM; raises :class:`MigrationError` on infeasible
        moves (pinned VM, unknown destination, no headroom)."""
        vm = self.vm(vm_name)
        if vm.host is None:
            raise MigrationError(f"VM {vm_name} is not placed")
        dst = self.node(destination)
        if not dst.is_up:
            raise MigrationError(f"destination {destination} is down")
        if not self._fits(dst, vm, limit=MIGRATION_HEADROOM_LIMIT):
            raise MigrationError(f"destination {destination} lacks headroom")
        src = self.node(vm.host)
        vm.begin_migration(destination)  # validates pinning / same-host
        src.server.detach(vm)
        dst.server.attach(vm)
        # Receiving work wakes a consolidation-parked server — which
        # ends its parked interval (silent un-park, no WakeEvent).
        if dst.server.policy_off:
            SPANS.end("parked", node=destination)
        dst.server.policy_off = False
        if BUS.enabled:
            BUS.emit(
                VMMigratedEvent(
                    t=BUS.now, vm=vm_name, source=src.name, dest=destination
                )
            )
        if REGISTRY.enabled:
            REGISTRY.counter("cluster/migrations").inc()

    def can_migrate(self, vm_name: str, destination: str) -> bool:
        """Feasibility check mirroring :meth:`migrate` without side effects."""
        vm = self.vms.get(vm_name)
        if vm is None or vm.pinned or vm.host is None or vm.host == destination:
            return False
        dst = self._by_name.get(destination)
        if dst is None or not dst.is_up:
            return False
        return self._fits(dst, vm, limit=MIGRATION_HEADROOM_LIMIT)

    def _fits(self, node: Node, vm: VM, limit: float = CPU_HEADROOM_LIMIT) -> bool:
        """CPU headroom check: mean utilisations must stay under ``limit``."""
        load = sum(v.workload.mean_util for v in node.server.vms)
        return load + vm.workload.mean_util <= limit + 1e-9

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def total_power(self, t: float, rng: Optional[np.random.Generator] = None) -> float:
        """Instantaneous cluster power draw (W)."""
        return sum(n.server.power(n.server.utilization(t, rng)) for n in self.nodes)

    def total_progress(self) -> float:
        """Sum of all VM progress counters (the Fig. 20 throughput proxy)."""
        return sum(vm.progress for vm in self.vms.values())

    def worst_battery_node(self) -> Node:
        """The node whose battery has aged the most (the paper reports the
        worst battery node in every comparison)."""
        return max(self.nodes, key=lambda n: n.battery.capacity_fade)

    def up_nodes(self) -> List[Node]:
        """Nodes currently serving load."""
        return [n for n in self.nodes if n.is_up]

    def __iter__(self) -> Iterable[Node]:
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)
