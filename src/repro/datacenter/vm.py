"""Virtual machines: the schedulable unit of work.

The prototype hosts every workload in a Xen VM so the controller can
spawn, pause, and migrate them. Here a :class:`VM` binds a workload
profile to mutable placement/progress state:

- **progress** — an instruction-proxy counter: a VM accrues
  ``utilisation x frequency-speed x dt`` while its host is up and it is
  not migrating or checkpointed; this is the paper's "compute throughput"
  (Fig. 20);
- **migration** — stop-and-copy: the VM stalls for
  :data:`MIGRATION_SECONDS` during which it makes no progress but its
  memory copy loads *both* hosts (a small power adder), reproducing the
  "frequent VM stop and restart" overhead that hurts BAAT-h;
- **checkpoint** — when a node browns out the VM state is saved; resuming
  costs :data:`RESUME_SECONDS` of stall.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.datacenter.workloads import WorkloadProfile
from repro.errors import MigrationError

#: Stop-and-copy migration stall (seconds). Xen-era migration of a loaded,
#: memory-heavy VM over the prototype's Ethernet parks the guest for
#: minutes; the paper's BAAT-h suffers "frequent VM stop and restart"
#: overhead.
MIGRATION_SECONDS = 300.0

#: Power adder (W) on source and destination while a migration is in flight.
MIGRATION_POWER_W = 15.0

#: Stall to resume a checkpointed VM after a brownout.
RESUME_SECONDS = 300.0


@dataclass
class VM:
    """One virtual machine hosting one workload.

    Attributes
    ----------
    name:
        Unique VM label.
    workload:
        The utilisation process this VM runs.
    host:
        Name of the node currently hosting the VM (None = unplaced).
    pinned:
        Pinned VMs cannot be migrated (resource constraints elsewhere in
        the datacenter — the condition that forces BAAT to fall back from
        migration to DVFS in Fig. 9).
    """

    name: str
    workload: WorkloadProfile
    host: Optional[str] = None
    pinned: bool = False
    progress: float = 0.0
    migrations: int = 0
    _stall_remaining_s: float = field(default=0.0, repr=False)
    _cache_t: float = field(default=float("nan"), repr=False)
    _cache_util: float = field(default=0.0, repr=False)

    @property
    def is_stalled(self) -> bool:
        """True while the VM is migrating or resuming from checkpoint."""
        return self._stall_remaining_s > 0.0

    def utilization(self, t: float, rng: Optional[np.random.Generator] = None) -> float:
        """CPU utilisation demanded at time ``t`` (zero while stalled).

        Stochastic draws are cached per timestamp so the power-routing and
        progress-accounting passes of one simulation step see the same
        utilisation sample.
        """
        if self.is_stalled:
            return 0.0
        if rng is not None and t == self._cache_t:
            return self._cache_util
        util = self.workload.utilization_at(t, rng)
        if rng is not None:
            self._cache_t = t
            self._cache_util = util
        return util

    def begin_migration(self, destination: str) -> None:
        """Start a stop-and-copy migration to ``destination``.

        Raises :class:`MigrationError` for pinned or unplaced VMs and for
        migrations to the current host.
        """
        if self.pinned:
            raise MigrationError(f"VM {self.name} is pinned and cannot migrate")
        if self.host is None:
            raise MigrationError(f"VM {self.name} is not placed anywhere")
        if destination == self.host:
            raise MigrationError(f"VM {self.name} is already on {destination}")
        self.host = destination
        self.migrations += 1
        self._stall_remaining_s = MIGRATION_SECONDS

    def checkpoint(self) -> None:
        """Save VM state during a brownout; resuming will cost a stall."""
        self._stall_remaining_s = max(self._stall_remaining_s, RESUME_SECONDS)

    def advance(self, dt: float, speed_factor: float, t: float,
                rng: Optional[np.random.Generator] = None,
                util: Optional[float] = None) -> float:
        """Advance the VM by ``dt`` seconds at the host's speed factor.

        Returns the progress accrued (utilisation x speed x active time).
        Stall time is consumed first and accrues nothing. When the caller
        already sampled this step's utilisation (the engine's contention
        pass), it passes the value via ``util`` so the VM does not burn a
        second RNG draw for the same step.
        """
        if dt <= 0:
            return 0.0
        active_dt = dt
        if self._stall_remaining_s > 0.0:
            consumed = min(self._stall_remaining_s, dt)
            self._stall_remaining_s -= consumed
            active_dt = dt - consumed
        if active_dt <= 0.0:
            return 0.0
        if util is None:
            util = self.utilization(t, rng)
        gained = util * speed_factor * active_dt
        self.progress += gained
        return gained
