"""Rack-shared battery power path (Facebook Open-Rack style, Fig. 7 left).

The paper's BAAT "supports two types of distributed energy storage
architectures": per-server batteries (:class:`~repro.datacenter.
power_path.PowerPath`) and *several racks sharing a pool of batteries* —
this module. The differences that matter to aging management:

- the pool bridges the **aggregate** deficit, so one server's spike is
  carried by every battery (shallower per-unit cycling, smaller aging
  variation — Table 1's architecture trade-off);
- when the pool cannot carry the whole rack, servers brown out in
  *worst-deficit-first* order (the rack PDU sheds its hungriest loads);
- surplus solar charges the shared pool (emptiest members first), not a
  particular server's battery.

Policies still see per-node ``discharge_cap_w``; the rack applies their
sum as the pool ceiling, so slowdown rationing remains meaningful.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from repro.battery.pool import BatteryPool
from repro.datacenter.cluster import Cluster
from repro.datacenter.power_path import RESTART_SOC, PowerFlows
from repro.obs import BUS
from repro.obs.events import BrownoutEvent
from repro.obs.telemetry import TELEMETRY
from repro.units import SECONDS_PER_HOUR


class RackPowerPath:
    """Routes power for a cluster whose nodes share one battery pool."""

    def __init__(
        self,
        cluster: Cluster,
        utility_budget_w: float = 0.0,
        strategy: str = "proportional",
    ):
        self.cluster = cluster
        self.utility_budget_w = utility_budget_w
        self.pool = BatteryPool([n.battery for n in cluster.nodes], strategy=strategy)

    def step(
        self,
        t: float,
        dt: float,
        solar_w: float,
        rng: Optional[np.random.Generator] = None,
        charging_enabled: bool = True,
    ) -> PowerFlows:
        """Route one step of power and advance all batteries/servers."""
        nodes = self.cluster.nodes
        n = max(1, len(nodes))

        # --- restart logic: pooled prospect -------------------------------
        per_node_solar = solar_w / n
        pool_power_share = self.pool.max_discharge_power() / n
        for node in nodes:
            if node.server.state.value == "down" and not node.server.admin_off:
                idle = node.server.params.idle_w
                solar_ok = per_node_solar >= idle
                pool_ok = (
                    self.pool.soc >= RESTART_SOC
                    and per_node_solar + pool_power_share >= idle
                )
                if solar_ok or pool_ok:
                    node.server.power_on()

        # --- demand --------------------------------------------------------
        demands: Dict[str, float] = {}
        for node in nodes:
            util = node.server.utilization(t, rng)
            demands[node.name] = node.server.power(util)
        total_demand = sum(demands.values())

        # --- solar then utility to load -------------------------------------
        solar_to_load = min(solar_w, total_demand)
        utility_used = min(self.utility_budget_w, max(0.0, total_demand - solar_to_load))
        residual = max(0.0, total_demand - solar_to_load - utility_used)

        # --- the shared pool bridges the aggregate deficit -------------------
        cap_total = sum(
            node.discharge_cap_w for node in nodes if node.discharge_cap_w != math.inf
        )
        if any(node.discharge_cap_w == math.inf for node in nodes):
            cap_total = math.inf
        request = min(residual, cap_total)
        battery_to_load = 0.0
        pool_touched = False
        if request > 0.0:
            result = self.pool.discharge(request, dt)
            battery_to_load = result.delivered_power_w
            pool_touched = True

        # --- shed the hungriest loads on shortfall ---------------------------
        unserved = max(0.0, residual - battery_to_load)
        browned_out = 0
        if unserved > max(2.0, 0.02 * residual):
            by_deficit = sorted(
                nodes,
                key=lambda nd: demands[nd.name],
                reverse=True,
            )
            remaining = unserved
            for node in by_deficit:
                if remaining <= 0.0 or demands[node.name] <= 0.0:
                    break
                node.server.brownout()
                node.unserved_wh += (
                    min(remaining, demands[node.name]) * dt / SECONDS_PER_HOUR
                )
                if BUS.enabled:
                    BUS.emit(
                        BrownoutEvent(
                            t=t,
                            node=node.name,
                            shortfall_w=min(remaining, demands[node.name]),
                        )
                    )
                remaining -= demands[node.name]
                browned_out += 1

        # --- surplus charges the pool ----------------------------------------
        surplus = max(0.0, solar_w - solar_to_load)
        solar_to_battery = 0.0
        if charging_enabled and surplus > 0.0 and not pool_touched:
            result = self.pool.charge(surplus, dt)
            solar_to_battery = result.delivered_power_w
            surplus -= solar_to_battery
            pool_touched = True

        if not pool_touched:
            self.pool.rest(dt)

        feedback = max(0.0, surplus)
        if feedback > 0.0:
            per_node = feedback / n
            for node in nodes:
                node.feedback_wh += per_node * dt / SECONDS_PER_HOUR

        # --- advance servers and sensors --------------------------------------
        for node in nodes:
            node.server.advance_state(dt)
            node.observe_battery(dt)
        if BUS.enabled:
            # Flush any buffered frame/summary telemetry for this step.
            TELEMETRY.flush_step()

        return PowerFlows(
            demand_w=total_demand,
            solar_available_w=solar_w,
            solar_to_load_w=solar_to_load,
            solar_to_battery_w=solar_to_battery,
            battery_to_load_w=battery_to_load,
            utility_to_load_w=utility_used,
            grid_feedback_w=feedback,
            unserved_w=unserved,
            browned_out_nodes=browned_out,
        )
