"""Datacenter substrate: servers, VMs, workloads, and power routing.

Models the compute side of the paper's prototype — six virtualised servers
(three IBM x330, three HP ProLiant class) running HiBench and CloudSuite
workloads under Xen — at the fidelity BAAT actually consumes: per-server
power draw (with DVFS), per-VM progress accounting, VM migration with
overhead, and the per-node power path that routes solar, battery, and
(optional) utility power.
"""

from repro.datacenter.server import Server, ServerParams, ServerPowerState
from repro.datacenter.vm import VM, MIGRATION_SECONDS
from repro.datacenter.workloads import (
    WorkloadProfile,
    PAPER_WORKLOADS,
    workload_by_name,
)
from repro.datacenter.node import Node
from repro.datacenter.cluster import Cluster
from repro.datacenter.power_path import PowerPath, PowerFlows

__all__ = [
    "Server",
    "ServerParams",
    "ServerPowerState",
    "VM",
    "MIGRATION_SECONDS",
    "WorkloadProfile",
    "PAPER_WORKLOADS",
    "workload_by_name",
    "Node",
    "Cluster",
    "PowerPath",
    "PowerFlows",
]
