"""Per-step power routing: solar -> loads -> batteries -> grid feedback.

Reproduces the prototype's power switcher (IPDU + PLC + relays + charger +
inverter): at every step the available solar power first feeds server
loads directly, surplus charges batteries (emptiest first, matching the
controller-driven charger), and anything batteries cannot absorb is fed
back to the grid — the paper notes such feedback is sold at an
unprofitable ~40 % of wholesale, so it is pure loss to minimise.

Load deficits are bridged per node by that node's own battery (per-server
architecture), subject to the policy's ``discharge_cap_w``. A node whose
demand cannot be met browns out: its VMs checkpoint and the server goes
down until power returns (Fig. 20's e-Buff downtime).

An optional utility budget (W) models deployments that retain a capped
grid connection; the paper's prototype runs the compute load on
solar + battery during the day, so the default is 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.datacenter.cluster import Cluster
from repro.datacenter.node import Node
from repro.obs import BUS, REGISTRY
from repro.obs.events import BrownoutEvent
from repro.obs.telemetry import TELEMETRY
from repro.units import SECONDS_PER_HOUR

#: SoC a cut-off battery must recover to before its inverter re-enables
#: output (UPS restart hysteresis).
RESTART_SOC = 0.25


@dataclass(frozen=True)
class PowerFlows:
    """Accounting of one routing step (all powers in watts, averaged over
    the step)."""

    demand_w: float
    solar_available_w: float
    solar_to_load_w: float
    solar_to_battery_w: float
    battery_to_load_w: float
    utility_to_load_w: float
    grid_feedback_w: float
    unserved_w: float
    browned_out_nodes: int


class PowerPath:
    """Routes power for a cluster each simulation step."""

    def __init__(self, cluster: Cluster, utility_budget_w: float = 0.0):
        self.cluster = cluster
        self.utility_budget_w = utility_budget_w

    def step(
        self,
        t: float,
        dt: float,
        solar_w: float,
        rng: Optional[np.random.Generator] = None,
        charging_enabled: bool = True,
    ) -> PowerFlows:
        """Route one step of power and advance all batteries/servers.

        Parameters
        ----------
        t, dt:
            Step start time and duration (seconds).
        solar_w:
            Solar farm output during the step.
        charging_enabled:
            Policies may temporarily disable charging (not used by the
            paper's schemes, but part of the power-switch capability).
        """
        nodes = self.cluster.nodes

        # --- restart any down node that now has a power prospect --------
        # Hysteresis mirrors real UPS behaviour: after a battery cut-off
        # the inverter output stays disabled until the battery recharges
        # to a safe level, unless the primary source alone can carry the
        # server. This is why unplanned cut-offs are so expensive for the
        # aging-blind scheme (section VI-F's e-Buff downtime).
        # Share the solar estimate across the nodes that would actually be
        # drawing if this one restarted: the currently-drawing set plus the
        # candidate itself. Splitting across every node (including admin-off
        # and down ones) made restarts during mostly-off periods wrongly
        # pessimistic.
        drawing = sum(
            1
            for n in nodes
            if not n.server.admin_off and n.server.state.value != "down"
        )
        per_node_solar_guess = solar_w / float(drawing + 1)
        for node in nodes:
            if node.server.state.value == "down" and not node.server.admin_off:
                idle = node.server.params.idle_w
                solar_ok = per_node_solar_guess >= idle
                battery_ok = (
                    node.battery.soc >= RESTART_SOC
                    and min(node.battery.max_discharge_power(), node.discharge_cap_w)
                    + per_node_solar_guess
                    >= idle
                )
                if solar_ok or battery_ok:
                    node.server.power_on()

        # --- demand ------------------------------------------------------
        demands: Dict[str, float] = {}
        for node in nodes:
            util = node.server.utilization(t, rng)
            demands[node.name] = node.server.power(util)
        total_demand = sum(demands.values())

        # --- solar to load, proportional to demand -----------------------
        solar_to_load = min(solar_w, total_demand)
        solar_share: Dict[str, float] = {}
        for node in nodes:
            share = (
                solar_to_load * demands[node.name] / total_demand
                if total_demand > 0
                else 0.0
            )
            solar_share[node.name] = share

        # --- utility to load (optional capped budget) ---------------------
        utility_left = self.utility_budget_w
        utility_used = 0.0

        # --- battery bridges the per-node deficit -------------------------
        battery_to_load = 0.0
        unserved = 0.0
        browned_out = 0
        touched: set = set()
        for node in nodes:
            deficit = demands[node.name] - solar_share[node.name]
            if deficit <= 1e-9:
                continue
            from_utility = min(deficit, utility_left)
            utility_left -= from_utility
            utility_used += from_utility
            deficit -= from_utility
            if deficit <= 1e-9:
                continue
            allowed = min(deficit, node.discharge_cap_w)
            delivered = 0.0
            if allowed > 0.0:
                result = node.battery.discharge(allowed, dt)
                touched.add(node.name)
                delivered = result.delivered_power_w
                battery_to_load += delivered
            # Tolerate solver rounding and small sags: a server browns out
            # only on a materially unmet deficit (>2 % or >2 W).
            shortfall = deficit - delivered
            if shortfall > max(2.0, 0.02 * deficit):
                unserved += shortfall
                node.unserved_wh += shortfall * dt / SECONDS_PER_HOUR
                node.server.brownout()
                browned_out += 1
                if BUS.enabled:
                    BUS.emit(
                        BrownoutEvent(t=t, node=node.name, shortfall_w=shortfall)
                    )
                if REGISTRY.enabled:
                    REGISTRY.counter("power/brownouts").inc()

        # --- surplus solar charges batteries, emptiest first --------------
        surplus = max(0.0, solar_w - solar_to_load)
        solar_to_battery = 0.0
        if charging_enabled and surplus > 0.0:
            # Nodes whose battery discharged this step cannot also charge.
            candidates = sorted(
                (n for n in nodes if n.battery.soc < 1.0 and n.name not in touched),
                key=lambda n: n.battery.soc,
            )
            for node in candidates:
                if surplus <= 1e-9:
                    break
                result = node.battery.charge(surplus, dt)
                touched.add(node.name)
                solar_to_battery += result.delivered_power_w
                surplus -= result.delivered_power_w

        # --- rest every battery that neither charged nor discharged -------
        for node in nodes:
            if node.name not in touched:
                node.battery.rest(dt)

        feedback = max(0.0, surplus)
        if feedback > 0.0:
            per_node = feedback / len(nodes)
            for node in nodes:
                node.feedback_wh += per_node * dt / SECONDS_PER_HOUR

        # --- advance servers and sensors ----------------------------------
        for node in nodes:
            node.server.advance_state(dt)
            node.observe_battery(dt)
        if BUS.enabled:
            # Frame/summary telemetry tiers buffer the per-node samples
            # above; emit the step's columnar event now that the whole
            # fleet has been observed.
            TELEMETRY.flush_step()

        return PowerFlows(
            demand_w=total_demand,
            solar_available_w=solar_w,
            solar_to_load_w=solar_to_load,
            solar_to_battery_w=solar_to_battery,
            battery_to_load_w=battery_to_load,
            utility_to_load_w=utility_used,
            grid_feedback_w=feedback,
            unserved_w=unserved,
            browned_out_nodes=browned_out,
        )
