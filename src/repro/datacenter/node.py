"""A node: one server paired with one battery unit and its sensors.

The per-server integration (Google style, Fig. 2/7 left) is the paper's
default experimental architecture: "each server is equipped with
individual battery unit". A :class:`Node` bundles the server, its battery,
and the battery's :class:`~repro.metrics.tracker.MetricsTracker` (the
sensor + power-table slice for this battery), plus the policy-writable
discharge cap used by the slowdown scheme.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.battery.unit import BatteryUnit
from repro.datacenter.server import Server
from repro.metrics.tracker import MetricsTracker
from repro.obs import BUS
from repro.obs.telemetry import TELEMETRY


@dataclass
class Node:
    """One server + battery + sensor bundle.

    Attributes
    ----------
    discharge_cap_w:
        Policy-set ceiling on battery discharge power for this node
        (``inf`` = uncapped). The slowdown scheme lowers it to stop deep
        high-rate discharge; ``0`` forbids battery use entirely.
    """

    name: str
    server: Server
    battery: BatteryUnit
    tracker: MetricsTracker
    discharge_cap_w: float = math.inf
    #: Cumulative solar energy this node fed back to the grid (Wh) because
    #: its battery could not absorb it — the "unprofitable feedback" loss.
    feedback_wh: float = 0.0
    #: Cumulative energy demand that went unserved (Wh), causing brownouts.
    unserved_wh: float = 0.0

    @classmethod
    def build(
        cls,
        name: str,
        server: Optional[Server] = None,
        battery: Optional[BatteryUnit] = None,
    ) -> "Node":
        """Construct a node with default server/battery models."""
        server = server or Server(name=name)
        server.name = name
        battery = battery or BatteryUnit(name=f"{name}/battery")
        tracker = MetricsTracker(battery.params, name=battery.name)
        return cls(name=name, server=server, battery=battery, tracker=tracker)

    def observe_battery(self, dt: float) -> None:
        """Sample the battery into the metrics tracker (sensor poll)."""
        state = self.battery.sample()
        self.tracker.observe(state.soc, state.current_a, dt)
        # Publish the identical sample through the shared telemetry
        # helper (also used by the fleet kernel, so the per-node and
        # frame schemas cannot drift between steppers). In the default
        # full-events tier a trace replay reconstructs the tracker's
        # aging metrics exactly (JSON floats round-trip).
        if BUS.enabled:
            TELEMETRY.record_sample(
                BUS.now,
                self.name,
                state.soc,
                state.current_a,
                dt,
                tracker=self.tracker,
            )

    @property
    def is_up(self) -> bool:
        """True when the server is serving load."""
        from repro.datacenter.server import ServerPowerState

        return self.server.state is ServerPowerState.UP
