"""Server power model with DVFS.

Each compute node (the prototype mixes IBM x330 and HP ProLiant boxes) is
modelled with the standard linear-in-utilisation power envelope plus a
DVFS frequency ladder:

    P(util, f) = P_idle(f) + (P_peak - P_idle) * util * (f / f_max) ** alpha

with ``alpha ~ 2.2`` capturing the superlinear dynamic-power saving of
voltage/frequency scaling, and idle power shrinking mildly with frequency.
Compute speed scales linearly with frequency, so DVFS trades throughput
for power — exactly the penalty BAAT-s pays (section VI-F).

A server can be **up**, **down** (browned out / checkpointed), or
**booting** (restarting after power returns; draws power, does no work).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.datacenter.vm import MIGRATION_POWER_W, VM
from repro.errors import ConfigurationError
from repro.units import clamp

#: Exponent of the frequency term in dynamic power.
DVFS_POWER_EXPONENT = 2.2

#: Fraction of idle power that scales with frequency (the rest is static).
IDLE_DYNAMIC_FRACTION = 0.3

#: Boot/restore time after a brownout, seconds.
BOOT_SECONDS = 300.0


class ServerPowerState(enum.Enum):
    """Operational state of a server."""

    UP = "up"
    DOWN = "down"
    BOOTING = "booting"


@dataclass(frozen=True)
class ServerParams:
    """Power/performance envelope for one server.

    Defaults approximate the prototype's mid-2000s 1U boxes: ~60 W idle,
    ~150 W peak, four DVFS steps from 100 % down to 40 % of nominal
    frequency. The wide idle-to-peak band is what makes per-node power
    demand — and therefore battery usage — vary significantly across nodes
    (the paper's Fig. 12a observation).
    """

    idle_w: float = 60.0
    peak_w: float = 150.0
    freq_levels: Tuple[float, ...] = (1.0, 0.8, 0.6, 0.4)

    def __post_init__(self) -> None:
        if self.idle_w < 0 or self.peak_w <= self.idle_w:
            raise ConfigurationError("need 0 <= idle_w < peak_w")
        if not self.freq_levels:
            raise ConfigurationError("freq_levels must be non-empty")
        levels = tuple(self.freq_levels)
        if any(not 0.0 < f <= 1.0 for f in levels):
            raise ConfigurationError("frequency levels must be in (0, 1]")
        if list(levels) != sorted(levels, reverse=True):
            raise ConfigurationError("freq_levels must be sorted descending")

    def scaled(self, factor: float) -> "ServerParams":
        """A copy with the power envelope scaled by ``factor`` (used by the
        Fig. 15 server-to-battery-ratio sweep)."""
        return ServerParams(
            idle_w=self.idle_w * factor,
            peak_w=self.peak_w * factor,
            freq_levels=self.freq_levels,
        )


class Server:
    """One compute server hosting VMs, with a DVFS control knob."""

    def __init__(self, params: Optional[ServerParams] = None, name: str = "server"):
        self.params = params or ServerParams()
        self.name = name
        self.vms: List[VM] = []
        self.state = ServerPowerState.UP
        #: Administrative shutdown (outside the prototype's 8:30-18:30
        #: operating window); draws no power and is not availability loss.
        self.admin_off = False
        #: Policy-commanded sleep (BAAT consolidation parks a vacated
        #: server so its battery can recharge); also planned, not downtime.
        self.policy_off = False
        self._freq_index = 0
        self._boot_remaining_s = 0.0
        self.downtime_s = 0.0
        self.dvfs_transitions = 0

    # ------------------------------------------------------------------
    # DVFS
    # ------------------------------------------------------------------
    @property
    def frequency(self) -> float:
        """Current frequency as a fraction of nominal."""
        return self.params.freq_levels[self._freq_index]

    @property
    def freq_index(self) -> int:
        """Index into the frequency ladder (0 = fastest)."""
        return self._freq_index

    def set_freq_index(self, index: int) -> None:
        """Jump to a specific ladder step."""
        if not 0 <= index < len(self.params.freq_levels):
            raise ConfigurationError(
                f"freq index {index} out of range for {len(self.params.freq_levels)} levels"
            )
        if index != self._freq_index:
            self.dvfs_transitions += 1
        self._freq_index = index

    def throttle_down(self) -> bool:
        """Step one level down the ladder; False if already at the floor."""
        if self._freq_index + 1 >= len(self.params.freq_levels):
            return False
        self.set_freq_index(self._freq_index + 1)
        return True

    def throttle_up(self) -> bool:
        """Step one level up the ladder; False if already at full speed."""
        if self._freq_index == 0:
            return False
        self.set_freq_index(self._freq_index - 1)
        return True

    # ------------------------------------------------------------------
    # VM hosting
    # ------------------------------------------------------------------
    def attach(self, vm: VM) -> None:
        """Host a VM (placement or migration arrival)."""
        if vm not in self.vms:
            self.vms.append(vm)
        vm.host = self.name

    def detach(self, vm: VM) -> None:
        """Stop hosting a VM (migration departure)."""
        if vm in self.vms:
            self.vms.remove(vm)

    def utilization(self, t: float, rng: Optional[np.random.Generator] = None) -> float:
        """Aggregate CPU utilisation demanded by hosted VMs, capped at 1."""
        if self.admin_off or self.policy_off or self.state is not ServerPowerState.UP:
            return 0.0
        total = sum(vm.utilization(t, rng) for vm in self.vms)
        return clamp(total, 0.0, 1.0)

    # ------------------------------------------------------------------
    # Power
    # ------------------------------------------------------------------
    def power(self, utilization: float) -> float:
        """Instantaneous power draw (W) at a given utilisation."""
        if self.admin_off or self.policy_off or self.state is ServerPowerState.DOWN:
            return 0.0
        p = self.params
        f = self.frequency
        idle = p.idle_w * (1.0 - IDLE_DYNAMIC_FRACTION * (1.0 - f))
        if self.state is ServerPowerState.BOOTING:
            return idle
        dynamic = (p.peak_w - p.idle_w) * clamp(utilization, 0.0, 1.0) * f**DVFS_POWER_EXPONENT
        migrating = sum(1 for vm in self.vms if vm.is_stalled)
        return idle + dynamic + migrating * MIGRATION_POWER_W

    def speed_factor(self) -> float:
        """Compute-speed multiplier delivered to hosted VMs."""
        if self.admin_off or self.policy_off or self.state is not ServerPowerState.UP:
            return 0.0
        return self.frequency

    # ------------------------------------------------------------------
    # Availability transitions
    # ------------------------------------------------------------------
    def brownout(self) -> None:
        """Power loss: checkpoint all VMs and go down."""
        if self.state is ServerPowerState.DOWN:
            return
        for vm in self.vms:
            vm.checkpoint()
        self.state = ServerPowerState.DOWN

    def power_on(self) -> None:
        """Begin booting after power returns."""
        if self.state is ServerPowerState.DOWN:
            self.state = ServerPowerState.BOOTING
            self._boot_remaining_s = BOOT_SECONDS

    def advance_state(self, dt: float) -> None:
        """Progress boot timers and downtime accounting by ``dt`` seconds.

        Administrative shutdown is planned, so it never counts as downtime.
        """
        if self.admin_off or self.policy_off:
            return
        if self.state is ServerPowerState.DOWN:
            self.downtime_s += dt
        elif self.state is ServerPowerState.BOOTING:
            self.downtime_s += min(dt, self._boot_remaining_s)
            self._boot_remaining_s -= dt
            if self._boot_remaining_s <= 0.0:
                self._boot_remaining_s = 0.0
                self.state = ServerPowerState.UP

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Server({self.name!r}, state={self.state.value}, "
            f"f={self.frequency:.1f}, vms={len(self.vms)})"
        )
