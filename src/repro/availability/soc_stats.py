"""Low-SoC exposure and SoC-distribution statistics (Figs. 18-19).

"The key aging factor that directly correlates with server availability
is deep discharge time (DDT) ... datacenter[s] must leave 2 minutes of
reserve capacity in UPS battery for high availability. A low SoC means
less reserved energy." The availability comparison therefore reduces to
the statistics of low-SoC residence: how long, per scheme, the worst
battery sits below the 40 % line (single-point-of-failure exposure), and
how each scheme's overall SoC mass is distributed across the paper's
seven 15-%-wide bins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.reporting import format_table, reduction_percent
from repro.errors import ConfigurationError
from repro.sim.recorder import SOC_BIN_LABELS
from repro.sim.results import SimResult


@dataclass(frozen=True)
class AvailabilityStats:
    """Low-SoC exposure summary for one run."""

    policy_name: str
    worst_low_soc_fraction: float
    mean_low_soc_fraction: float
    unserved_wh: float
    downtime_s: float

    @property
    def availability_proxy(self) -> float:
        """1 - worst low-SoC fraction: the share of time the worst battery
        retained its emergency reserve."""
        return 1.0 - self.worst_low_soc_fraction


def low_soc_stats(result: SimResult) -> AvailabilityStats:
    """Extract Fig.-18 statistics from one run."""
    if result.duration_s <= 0:
        raise ConfigurationError("result covers no time")
    fractions = [n.low_soc_time_s / result.duration_s for n in result.nodes]
    return AvailabilityStats(
        policy_name=result.policy_name,
        worst_low_soc_fraction=max(fractions),
        mean_low_soc_fraction=sum(fractions) / len(fractions),
        unserved_wh=result.unserved_wh,
        downtime_s=result.total_downtime_s,
    )


def availability_improvement(baseline: SimResult, improved: SimResult) -> float:
    """Percent reduction in the worst node's low-SoC residence.

    This is the paper's "+47 % battery availability, based on the
    statistics of low-SoC duration of the worst-case battery node".
    """
    b = low_soc_stats(baseline).worst_low_soc_fraction
    i = low_soc_stats(improved).worst_low_soc_fraction
    return reduction_percent(i, b)


def soc_distribution_table(results: Sequence[SimResult], node: str = "") -> str:
    """Render the Fig.-19 distribution (time share per SoC bin, per
    scheme) as a text table.

    With ``node`` empty, bins are averaged across all nodes.
    """
    headers = ["scheme"] + list(SOC_BIN_LABELS)
    rows: List[List[object]] = []
    for result in results:
        if node:
            dists = [n.soc_distribution for n in result.nodes if n.name == node]
            if not dists:
                raise ConfigurationError(f"no node named {node!r} in result")
        else:
            dists = [n.soc_distribution for n in result.nodes]
        merged: Dict[str, float] = {
            label: sum(d[label] for d in dists) / len(dists) for label in SOC_BIN_LABELS
        }
        rows.append([result.policy_name] + [merged[label] for label in SOC_BIN_LABELS])
    return format_table(headers, rows, title="SoC distribution (fraction of time)")
