"""Availability analysis: low-SoC exposure and SoC distributions
(paper Figs. 18-19)."""

from repro.availability.soc_stats import (
    AvailabilityStats,
    availability_improvement,
    low_soc_stats,
    soc_distribution_table,
)

__all__ = [
    "AvailabilityStats",
    "availability_improvement",
    "low_soc_stats",
    "soc_distribution_table",
]
