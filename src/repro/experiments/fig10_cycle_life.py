"""Fig. 10 — battery cycle life under varying depth of discharge.

Paper result: across Hoppecke, Trojan, and UPG product data, "the battery
cycle life decreases by 50 % if it is frequently discharged at a DoD above
50 %" — the curvature that makes planned-aging's DoD regulation (Eq. 7) an
effective aging-rate knob.
"""

from __future__ import annotations

from repro.battery.cycle_life import MANUFACTURER_CURVES, mean_curve
from repro.experiments.base import ExperimentResult
from repro.rng import DEFAULT_SEED

DODS = (0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def run(quick: bool = True, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Regenerate Fig. 10 from the embedded manufacturer curves."""
    names = sorted(MANUFACTURER_CURVES)
    rows = []
    for dod in DODS:
        rows.append(
            (f"{dod:.0%}",)
            + tuple(MANUFACTURER_CURVES[name].cycles(dod) for name in names)
        )
    mean = mean_curve()
    shallow = mean.cycles(0.25)
    deep = mean.cycles(0.55)
    return ExperimentResult(
        exp_id="fig10",
        title="Battery cycle life vs depth of discharge (three manufacturers)",
        headers=("DoD",) + tuple(names),
        rows=rows,
        headline={
            "cycle-life reduction, 25% -> 55% DoD %": (1.0 - deep / shallow) * 100.0,
        },
        notes=(
            "paper: cycle life drops by ~50 % when cycling above 50 % DoD; "
            "inverse-power fits of representative datasheet points"
        ),
    )
