"""Fig. 4 — measured battery capacity drop due to aging over 6 months.

Paper result: the effectively stored energy per charging cycle drops by
~14 % under aggressive usage; end of life is declared at 80 % of initial
capacity.
"""

from __future__ import annotations

from repro.experiments.aging_campaign import run_campaign
from repro.experiments.base import ExperimentResult
from repro.rng import DEFAULT_SEED


def run(quick: bool = True, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Regenerate Fig. 4 from the shared six-month campaign."""
    campaign = run_campaign(seed)
    rows = [
        (f"month {s.month}", s.stored_energy_wh, s.capacity_fade, s.min_soc)
        for s in campaign.snapshots
    ]
    return ExperimentResult(
        exp_id="fig04",
        title="Stored energy per cycle over 6 months of cyclic use",
        headers=("month", "stored energy (Wh)", "capacity fade", "cycle min SoC"),
        rows=rows,
        headline={
            "stored-energy drop over 6 months %": campaign.capacity_drop_percent(),
        },
        notes="paper: ~14 % drop over six months of aggressive usage",
    )
