"""Ablation: which of BAAT's mechanisms buys what.

Full BAAT coordinates four design choices on top of the Fig.-9 monitor:
energy-aware consolidation, migration-preferred stress response, shallow
(rather than full-ladder) DVFS, and discharge rationing to a protected
SoC floor. This ablation disables each in turn and measures throughput
and worst-node aging on stressed days, quantifying the paper's argument
that the *coordination* — not any single lever — delivers the result.
"""

from __future__ import annotations

import functools
from typing import Dict, List, Optional, Sequence

from repro.analysis.reporting import percent_change
from repro.campaign import RunSpec, run_campaign
from repro.core.policies.baat import BAATPolicy
from repro.core.policies.factory import make_policy
from repro.core.slowdown import SlowdownConfig
from repro.experiments.base import ExperimentResult
from repro.experiments.common import OLD_BATTERY_FADE, sweep_scenario
from repro.rng import DEFAULT_SEED
from repro.solar.weather import DayClass


class NoConsolidationBAAT(BAATPolicy):
    """BAAT without the cluster-wide consolidation pass."""

    name = "baat/no-consolidation"

    def _consolidate(self, t: float, solar_w: float) -> None:
        return


def _variants() -> Dict[str, object]:
    """Label -> picklable policy factory (campaign workers rebuild them)."""
    deep_dvfs = SlowdownConfig(prefer_migration=True, max_throttle_index=10**6)
    no_migration = SlowdownConfig(
        prefer_migration=False, allow_parking=True, max_throttle_index=1
    )
    thin_floor = SlowdownConfig(
        prefer_migration=True, max_throttle_index=1, protected_soc=0.14
    )
    return {
        "baat (full)": functools.partial(make_policy, "baat"),
        "- consolidation": NoConsolidationBAAT,
        "- migration (DVFS+park only)": functools.partial(
            BAATPolicy, config=no_migration
        ),
        "- shallow DVFS (full ladder)": functools.partial(
            BAATPolicy, config=deep_dvfs
        ),
        "- protected floor (thin)": functools.partial(
            BAATPolicy, config=thin_floor
        ),
        "e-buff (no BAAT at all)": functools.partial(make_policy, "e-buff"),
    }


def run(
    quick: bool = True,
    seed: int = DEFAULT_SEED,
    n_workers: Optional[int] = None,
) -> ExperimentResult:
    """Run every ablation variant on a stressed two-day trace."""
    n_days = 2 if quick else 4
    scenario = sweep_scenario(seed=seed, initial_fade=OLD_BATTERY_FADE)
    mix = ([DayClass.RAINY, DayClass.CLOUDY] * ((n_days + 1) // 2))[:n_days]
    trace = scenario.trace_generator().days(mix)

    specs = [
        RunSpec(scenario=scenario, trace=trace, policy_factory=build, label=label)
        for label, build in _variants().items()
    ]
    results = run_campaign(specs, n_workers=n_workers).results()

    rows: List[Sequence[object]] = []
    for label, result in results.items():
        rows.append(
            (
                label,
                result.throughput_per_day(),
                result.worst_damage_per_day() * 1000.0,
                result.total_downtime_s / 3600.0 / n_days,
                result.migrations,
                result.dvfs_transitions,
            )
        )

    full = results["baat (full)"]
    ebuff = results["e-buff (no BAAT at all)"]
    worst_single_loss = min(
        percent_change(
            full.worst_damage_per_day(), results[label].worst_damage_per_day()
        )
        for label in results
        if label not in ("baat (full)", "e-buff (no BAAT at all)")
    )
    return ExperimentResult(
        exp_id="ablation-baat",
        title="BAAT feature ablation on stressed days (rainy/cloudy, old)",
        headers=(
            "variant",
            "throughput/day",
            "worst fade/day x1e-3",
            "downtime h/day",
            "migr",
            "dvfs",
        ),
        rows=rows,
        headline={
            "full BAAT aging cut vs e-Buff %": (
                1.0 - full.worst_damage_per_day() / ebuff.worst_damage_per_day()
            )
            * 100.0,
            "largest single-feature aging delta %": worst_single_loss,
        },
        notes=(
            "each row removes one mechanism from full BAAT; the paper's "
            "claim is that coordination (hiding + slowing down) beats any "
            "single lever (its BAAT-s / BAAT-h simplifications)"
        ),
    )
