"""Fig. 5 — measured energy-efficiency degradation due to aging.

Paper result: a battery used as a green-energy buffer loses ~8 % of its
round-trip efficiency over six months, as internal resistance grows
(more ohmic loss) and aged plates gas more during charge (more coulombic
loss).
"""

from __future__ import annotations

from repro.experiments.aging_campaign import run_campaign
from repro.experiments.base import ExperimentResult
from repro.rng import DEFAULT_SEED


def run(quick: bool = True, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Regenerate Fig. 5 from the shared six-month campaign."""
    campaign = run_campaign(seed)
    rows = [
        (f"month {s.month}", s.month_round_trip_efficiency, s.capacity_fade)
        for s in campaign.snapshots[1:]  # month 0 has no flow history
    ]
    return ExperimentResult(
        exp_id="fig05",
        title="Monthly round-trip efficiency over 6 months of cyclic use",
        headers=("month", "round-trip efficiency", "capacity fade"),
        rows=rows,
        headline={
            "efficiency drop over 6 months %": campaign.efficiency_drop_percent(),
        },
        notes="paper: ~8 % round-trip efficiency loss over six months",
    )
