"""Common result container for experiment modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.analysis.reporting import format_table
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ExperimentResult:
    """One regenerated paper figure/table.

    Attributes
    ----------
    exp_id:
        Paper artifact id, e.g. ``"fig14"``.
    title:
        What the artifact shows.
    headers / rows:
        The tabular data (series are rows with a label column).
    headline:
        Key scalar comparisons ("BAAT lifetime vs e-Buff: +64 %"),
        mirroring the numbers the paper quotes in prose.
    notes:
        Caveats / interpretation guidance.
    """

    exp_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]]
    headline: Dict[str, float] = field(default_factory=dict)
    notes: str = ""

    def __post_init__(self) -> None:
        if not self.exp_id or not self.title:
            raise ConfigurationError("exp_id and title are required")

    def to_text(self) -> str:
        """Render the figure as a text block (table + headlines + notes)."""
        parts = [format_table(self.headers, self.rows, title=f"[{self.exp_id}] {self.title}")]
        if self.headline:
            parts.append("")
            for key, value in self.headline.items():
                parts.append(f"  {key}: {value:+.1f}%" if "%" in key else f"  {key}: {value:.3f}")
        if self.notes:
            parts.append("")
            parts.append(f"  note: {self.notes}")
        return "\n".join(parts)
