"""Fig. 21 — performance improvement vs planned DoD goal.

Paper result: raising the allowed DoD buys performance, but not linearly —
the 40 % -> 60 % move is "more visible" than 70 % -> 90 %, because very
deep discharge keeps the battery at low SoC (reduced effective lifetime
and more cut-off risk eat the gains).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.analysis.reporting import percent_change
from repro.core.policies.planned import PlannedAgingPolicy
from repro.experiments.base import ExperimentResult
from repro.experiments.common import (
    OLD_BATTERY_FADE,
    day_trace,
    sweep_scenario,
)
from repro.rng import DEFAULT_SEED
from repro.sim.engine import run_policy_on_trace
from repro.solar.weather import DayClass

QUICK_DODS = (0.4, 0.6, 0.8, 0.9)
FULL_DODS = (0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


def run(
    quick: bool = True,
    seed: int = DEFAULT_SEED,
    dods: Sequence[float] = (),
) -> ExperimentResult:
    """Sweep a pinned DoD goal on stressed days."""
    if not dods:
        dods = QUICK_DODS if quick else FULL_DODS
    # A cloudy/rainy mix makes battery depth the binding resource without
    # saturating into all-day downtime (pure rainy) or slack (sunny).
    scenario = sweep_scenario(seed=seed, initial_fade=OLD_BATTERY_FADE)
    mix = [DayClass.CLOUDY, DayClass.RAINY, DayClass.CLOUDY]
    if not quick:
        mix = mix * 2
    n_days = len(mix)
    trace = scenario.trace_generator().days(mix)

    rows: List[Sequence[object]] = []
    throughputs = {}
    fades = {}
    for dod in dods:
        policy = PlannedAgingPolicy(
            service_life_days=365.0, fixed_dod_goal=dod
        )
        result = run_policy_on_trace(scenario, policy, trace)
        throughputs[dod] = result.throughput
        fades[dod] = result.worst_damage_per_day()
        rows.append(
            (
                f"{dod:.0%}",
                result.throughput_per_day(),
                result.worst_damage_per_day() * 1000.0,
                result.total_downtime_s / 3600.0 / n_days,
            )
        )

    lo, hi = min(dods), max(dods)
    mid = min(dods, key=lambda d: abs(d - 0.6))
    early_gain = percent_change(throughputs[mid], throughputs[lo])
    late_gain = percent_change(throughputs[hi], throughputs[mid])
    return ExperimentResult(
        exp_id="fig21",
        title="Throughput and aging vs planned DoD goal",
        headers=("DoD goal", "throughput/day", "fade/day x1e-3", "downtime h/day"),
        rows=rows,
        headline={
            f"gain {lo:.0%} -> {mid:.0%} %": early_gain,
            f"gain {mid:.0%} -> {hi:.0%} %": late_gain,
        },
        notes=(
            "paper: performance rises with allowed DoD but sublinearly — "
            "the 40->60 % step helps more than 70->90 %"
        ),
    )
