"""Fig. 22 — performance benefits of planned aging vs expected service
life.

Paper result: planning the aging rate toward a known discard date can
improve datacenter productivity by up to ~33 % over e-Buff, but the
benefit shrinks at both extremes — a battery installed just before the
datacenter's end-of-life is bounded by the 90 % DoD ceiling, and one
installed far in advance has little unused life to shift.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.analysis.lifetime import season_day_classes
from repro.analysis.reporting import percent_change
from repro.core.policies.factory import make_policy
from repro.core.policies.planned import PlannedAgingPolicy
from repro.experiments.base import ExperimentResult
from repro.experiments.common import sweep_scenario
from repro.rng import DEFAULT_SEED
from repro.sim.engine import run_policy_on_trace

QUICK_LIVES = (180.0, 730.0, 2190.0)
FULL_LIVES = (180.0, 365.0, 730.0, 1095.0, 1825.0, 2920.0)
SUNSHINE = 0.4  # stressed enough that battery policy matters


def run(
    quick: bool = True,
    seed: int = DEFAULT_SEED,
    service_lives_days: Sequence[float] = (),
) -> ExperimentResult:
    """Sweep the expected service life; compare productivity vs e-Buff."""
    if not service_lives_days:
        service_lives_days = QUICK_LIVES if quick else FULL_LIVES
    n_days = 4 if quick else 8

    scenario = sweep_scenario(seed=seed)
    day_classes = season_day_classes(SUNSHINE, n_days, scenario.seed)
    trace = scenario.trace_generator().days(day_classes)

    baseline = run_policy_on_trace(scenario, make_policy("e-buff"), trace)

    rows: List[Sequence[object]] = []
    gains = {}
    for life in service_lives_days:
        policy = PlannedAgingPolicy(service_life_days=life)
        result = run_policy_on_trace(scenario, policy, trace)
        goals = policy.current_goals()
        mean_goal = sum(goals.values()) / len(goals)
        gain = percent_change(result.throughput, baseline.throughput)
        gains[life] = gain
        rows.append(
            (
                f"{life:.0f} d",
                mean_goal,
                result.throughput_per_day(),
                gain,
                result.worst_damage_per_day() * 1000.0,
            )
        )

    return ExperimentResult(
        exp_id="fig22",
        title="Planned-aging productivity vs expected battery service life",
        headers=(
            "service life",
            "mean DoD goal",
            "throughput/day",
            "vs e-buff %",
            "fade/day x1e-3",
        ),
        rows=rows,
        headline={"max productivity gain %": max(gains.values())},
        notes=(
            "paper: up to ~33 % productivity gain; benefit falls at both "
            "very short (DoD ceiling) and very long (little life to shift) "
            "service horizons"
        ),
    )
