"""Fig. 16 — BAAT reduces annual battery depreciation cost.

Paper results: varying the aging-slowdown threshold changes the cost
benefit; BAAT achieves ~26 % lower annual depreciation than e-Buff.
"Aggressively applying the aging slowdown algorithm is not wise since it
may cause unnecessary performance degradation" — so the sweep also
reports the throughput cost of each threshold.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.analysis.lifetime import season_day_classes
from repro.analysis.reporting import reduction_percent
from repro.battery.aging.mechanisms import EOL_FADE
from repro.core.policies.factory import make_policy
from repro.core.slowdown import SlowdownConfig
from repro.cost.depreciation import DepreciationModel
from repro.experiments.base import ExperimentResult
from repro.experiments.common import sweep_scenario
from repro.rng import DEFAULT_SEED
from repro.sim.engine import run_policy_on_trace

QUICK_THRESHOLDS = (0.30, 0.40, 0.50)
FULL_THRESHOLDS = (0.25, 0.30, 0.35, 0.40, 0.45, 0.50)
SUNSHINE = 0.5


def run(
    quick: bool = True,
    seed: int = DEFAULT_SEED,
    thresholds: Sequence[float] = (),
) -> ExperimentResult:
    """Sweep the slowdown low-SoC threshold and compare annual cost."""
    if not thresholds:
        thresholds = QUICK_THRESHOLDS if quick else FULL_THRESHOLDS
    n_days = 4 if quick else 8

    scenario = sweep_scenario(seed=seed)
    day_classes = season_day_classes(SUNSHINE, n_days, scenario.seed)
    trace = scenario.trace_generator().days(day_classes)
    depreciation = DepreciationModel(scenario.battery, n_batteries=scenario.n_nodes)

    def lifetime_days(result) -> float:
        rate = result.worst_damage_per_day()
        return EOL_FADE / rate if rate > 0 else float("inf")

    baseline = run_policy_on_trace(scenario, make_policy("e-buff"), trace)
    base_life = lifetime_days(baseline)
    base_cost = depreciation.annual_cost_usd(base_life)
    base_thr = baseline.throughput

    rows: List[Sequence[object]] = [
        ("e-buff", base_life, base_cost, 0.0, 0.0)
    ]
    best_cut = 0.0
    for threshold in thresholds:
        config = SlowdownConfig(
            low_soc_threshold=threshold,
            recovery_soc=min(0.95, threshold + 0.2),
            protected_soc=max(0.05, threshold - 0.08),
        )
        policy = make_policy("baat", slowdown_config=config, seed=scenario.seed)
        result = run_policy_on_trace(scenario, policy, trace)
        life = lifetime_days(result)
        cost = depreciation.annual_cost_usd(life)
        cut = reduction_percent(cost, base_cost)
        best_cut = max(best_cut, cut)
        rows.append(
            (
                f"baat @ {threshold:.0%}",
                life,
                cost,
                cut,
                (result.throughput / base_thr - 1.0) * 100.0,
            )
        )

    return ExperimentResult(
        exp_id="fig16",
        title="Annual battery depreciation vs slowdown threshold",
        headers=(
            "scheme",
            "lifetime (days)",
            "annual cost ($)",
            "cost cut %",
            "throughput vs e-buff %",
        ),
        rows=rows,
        headline={"best BAAT cost reduction %": best_cut},
        notes=(
            "paper: ~26 % depreciation reduction for BAAT vs e-Buff; "
            "higher thresholds save more batteries but cost performance"
        ),
    )
