"""Table 1 — battery usage scenarios vs aging speed and variation.

The paper's Table 1 is qualitative:

==================  ===============  ===========  ===============
Usage objective     Usage frequency  Aging speed  Aging variation
==================  ===============  ===========  ===============
Power backup        Rarely           Light        Small
Demand response     Occasionally     Medium       Medium
Power smoothing     Cyclically       Severe       Large
==================  ===============  ===========  ===============

This experiment makes it quantitative: four batteries (with manufacturing
variation) run each duty pattern for a simulated month —

- **backup**: float service with one brief outage discharge;
- **demand response**: a 2-hour peak-shave discharge every weekday;
- **power smoothing**: full daily green-energy cycling with
  weather-dependent depth (the green-datacenter pattern);

and the table reports measured aging speed (fade per day) and aging
variation (relative spread across the four units).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.battery.unit import BatteryUnit
from repro.experiments.base import ExperimentResult
from repro.rng import DEFAULT_SEED, spawn
from repro.units import SECONDS_PER_HOUR, hours

N_UNITS = 4
DAYS = 30
DT_S = 600.0


def _steps(hours_span: float) -> int:
    return max(1, int(hours_span * SECONDS_PER_HOUR / DT_S))


def _backup_day(battery: BatteryUnit, day: int, rng: np.random.Generator) -> None:
    """Float service; one ~20-minute outage discharge mid-month."""
    if day == 14:
        for _ in range(_steps(0.33)):
            battery.discharge(200.0, DT_S)
        for _ in range(_steps(4.0)):
            battery.charge(40.0, DT_S)
        battery.rest(hours(24.0 - 0.33 - 4.0))
    else:
        # Held at full charge on the float bus all day.
        for _ in range(_steps(24.0)):
            battery.charge(2.0, DT_S)


def _demand_response_day(
    battery: BatteryUnit, day: int, rng: np.random.Generator
) -> None:
    """Weekday 2-hour peak shave at a moderate rate; weekend rest."""
    if day % 7 >= 5:
        battery.rest(hours(24.0))
        return
    shave_w = 60.0 * (1.0 + 0.15 * rng.standard_normal())
    for _ in range(_steps(2.0)):
        battery.discharge(max(20.0, shave_w), DT_S)
    for _ in range(_steps(5.0)):
        battery.charge(45.0, DT_S)
    battery.rest(hours(17.0))


def _smoothing_day(battery: BatteryUnit, day: int, rng: np.random.Generator) -> None:
    """Daily green-energy cycling with weather-dependent depth."""
    weather = rng.random()
    depth_w = 30.0 + 45.0 * weather  # deeper cycling on darker days
    for _ in range(_steps(5.0)):
        battery.discharge(depth_w, DT_S)
    for _ in range(_steps(8.0)):
        battery.charge(50.0 * (0.6 + 0.8 * (1.0 - weather)), DT_S)
    battery.rest(hours(11.0))


SCENARIOS: Dict[str, Callable] = {
    "power backup": _backup_day,
    "demand response": _demand_response_day,
    "power smoothing": _smoothing_day,
}


def run(quick: bool = True, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Run the three usage patterns and measure aging speed/variation."""
    days = DAYS if quick else 3 * DAYS
    rows: List[Sequence[object]] = []
    speeds: Dict[str, float] = {}
    for label, day_fn in SCENARIOS.items():
        fades = []
        for unit in range(N_UNITS):
            rng = spawn(seed, f"table01/{label}/{unit}")
            factor = float(max(0.9, 1.0 + rng.normal(0.0, 0.02)))
            battery = BatteryUnit(name=f"{label}/{unit}", capacity_factor=factor)
            for day in range(days):
                day_fn(battery, day, rng)
            fades.append(battery.capacity_fade)
        mean_fade = float(np.mean(fades))
        spread = (
            (max(fades) - min(fades)) / mean_fade if mean_fade > 0 else 0.0
        )
        speeds[label] = mean_fade / days
        rows.append(
            (
                label,
                mean_fade / days * 1000.0,
                0.20 / (mean_fade / days) / 365.0,  # implied lifetime, years
                spread,
            )
        )
    return ExperimentResult(
        exp_id="table01",
        title="Usage scenarios vs measured aging speed and variation",
        headers=(
            "usage objective",
            "fade/day x1e-3",
            "implied lifetime (years)",
            "aging variation (rel spread)",
        ),
        rows=rows,
        headline={
            "smoothing vs backup aging-speed ratio": (
                speeds["power smoothing"] / max(speeds["power backup"], 1e-12)
            ),
        },
        notes=(
            "paper Table 1: backup = light aging / small variation; demand "
            "response = medium/medium; power smoothing = severe/large"
        ),
    )
