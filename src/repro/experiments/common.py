"""Shared helpers for the figure experiments."""

from __future__ import annotations

import functools
from typing import Dict, Optional, Sequence

from repro.campaign import DEFAULT_CACHE, RunSpec, run_campaign
from repro.rng import DEFAULT_SEED
from repro.sim.results import SimResult
from repro.sim.scenario import Scenario
from repro.solar.trace import SolarTrace
from repro.solar.weather import DayClass

#: Coarser step used by multi-run sweeps (validated against dt=60).
SWEEP_DT_S = 120.0

#: The Table-4 schemes in presentation order.
POLICIES = ("e-buff", "baat-s", "baat-h", "baat")

#: Capacity fade that makes a battery "old" in the Fig. 13 sense
#: (roughly halfway to end of life).
OLD_BATTERY_FADE = 0.10


def sweep_scenario(
    seed: int = DEFAULT_SEED,
    initial_fade: float = 0.0,
    **overrides,
) -> Scenario:
    """A scenario tuned for sweeps: coarse step, otherwise the prototype."""
    return Scenario(dt_s=SWEEP_DT_S, seed=seed, initial_fade=initial_fade, **overrides)


def run_policies(
    scenario: Scenario,
    trace: SolarTrace,
    policies: Sequence[str] = POLICIES,
    record_series: bool = False,
    policy_builder=None,
    n_workers: Optional[int] = None,
    cache=DEFAULT_CACHE,
) -> Dict[str, SimResult]:
    """Run several schemes over identical weather; keyed by policy name.

    ``policy_builder(name) -> Policy`` overrides the default factory (used
    by threshold sweeps). Runs go through the campaign runner: fanned out
    over ``n_workers`` processes (default: the campaign process default)
    and memoized in the on-disk result cache unless ``cache=None``.
    """
    specs = [
        RunSpec(
            scenario=scenario,
            trace=trace,
            policy=None if policy_builder else name,
            policy_factory=(
                functools.partial(policy_builder, name) if policy_builder else None
            ),
            record_series=record_series,
            label=name,
        )
        for name in policies
    ]
    report = run_campaign(specs, n_workers=n_workers, cache=cache)
    return report.results()


def day_trace(
    scenario: Scenario, day_class: DayClass, n_days: int = 1
) -> SolarTrace:
    """A repeated-day trace for one weather class."""
    return scenario.trace_generator().days([day_class] * n_days)
