"""Sensitivity analysis: are the headline results calibration-artifacts?

The reproduction's aging model carries calibration constants the paper
does not pin down (mechanism rates, the aging feedback gain, SoC stress
weights). This experiment perturbs the most influential ones and re-runs
the core comparison (e-Buff vs BAAT, stressed days, worst-node fade) to
check that *who wins and roughly by how much* is robust — the property
that makes the reproduction trustworthy.

Perturbations:

- ``feedback x0 / x2`` — the aged-batteries-age-faster gain;
- ``sulphation x0.5 / x2`` — the dominant low-SoC mechanism's rate;
- ``soc-weights flat`` — remove the low-SoC damage weighting entirely
  (every Ah equally harmful), the strongest possible challenge to the
  premise behind PC/DDT-driven management.
"""

from __future__ import annotations

import functools
from typing import Dict, List, Optional, Sequence

from repro.battery.aging.mechanisms import (
    ActiveMassDegradation,
    GridCorrosion,
    Stratification,
    Sulphation,
    WaterLoss,
)
from repro.battery.aging.model import AgingModel
from repro.campaign import RunSpec, run_campaign
from repro.experiments.base import ExperimentResult
from repro.experiments.common import OLD_BATTERY_FADE, sweep_scenario
from repro.rng import DEFAULT_SEED
from repro.sim.engine import Simulation
from repro.solar.weather import DayClass


class _ScaledSulphation(Sulphation):
    def __init__(self, scale: float):
        self._scale = scale

    def damage(self, cond, dt):
        return self._scale * super().damage(cond, dt)


class _FlatSocActiveMass(ActiveMassDegradation):
    def damage(self, cond, dt):
        if not cond.is_discharging or cond.capacity_ah <= 0:
            return 0.0
        ah = cond.current * dt / 3600.0
        per_cycle_fade = 0.20 / self.lifetime_full_cycles
        return per_cycle_fade * (ah / cond.capacity_ah)


def _mechanisms(variant: str):
    if variant == "sulphation x0.5":
        return [
            GridCorrosion(),
            ActiveMassDegradation(),
            _ScaledSulphation(0.5),
            WaterLoss(),
            Stratification(),
        ]
    if variant == "sulphation x2":
        return [
            GridCorrosion(),
            ActiveMassDegradation(),
            _ScaledSulphation(2.0),
            WaterLoss(),
            Stratification(),
        ]
    if variant == "soc-weights flat":
        return [
            GridCorrosion(),
            _FlatSocActiveMass(),
            Sulphation(),
            WaterLoss(),
            Stratification(),
        ]
    return None  # default mechanisms


def _feedback(variant: str) -> float:
    if variant == "feedback x0":
        return 0.0
    if variant == "feedback x2":
        return 3.0
    return 1.5


VARIANTS = (
    "baseline",
    "feedback x0",
    "feedback x2",
    "sulphation x0.5",
    "sulphation x2",
    "soc-weights flat",
)


def _apply_variant(variant: str, sim: Simulation) -> None:
    """Swap the perturbed aging model into every battery before stepping.

    Module-level (and bound with :func:`functools.partial`) so the hook
    pickles into campaign worker processes and hashes into cache keys.
    """
    mechanisms = _mechanisms(variant)
    gain = _feedback(variant)
    for node in sim.cluster:
        fade0 = node.battery.capacity_fade
        model = AgingModel(mechanisms=mechanisms, feedback_gain=gain)
        # Preserve the pre-aged state.
        model.state = node.battery.aging.state
        node.battery.aging = model
        assert abs(node.battery.capacity_fade - fade0) < 1e-9


def run(
    quick: bool = True,
    seed: int = DEFAULT_SEED,
    n_workers: Optional[int] = None,
) -> ExperimentResult:
    """Perturb the aging calibration and re-measure the BAAT advantage."""
    n_days = 2 if quick else 4
    scenario = sweep_scenario(seed=seed, initial_fade=OLD_BATTERY_FADE)
    mix = ([DayClass.CLOUDY, DayClass.RAINY] * ((n_days + 1) // 2))[:n_days]
    trace = scenario.trace_generator().days(mix)
    specs = [
        RunSpec(
            scenario=scenario,
            trace=trace,
            policy=policy,
            setup=functools.partial(_apply_variant, variant),
            label=f"{variant}|{policy}",
        )
        for variant in VARIANTS
        for policy in ("e-buff", "baat")
    ]
    results = run_campaign(specs, n_workers=n_workers).results()

    rows: List[Sequence[object]] = []
    advantages: Dict[str, float] = {}
    for variant in VARIANTS:
        ebuff = results[f"{variant}|e-buff"].worst_damage_per_day()
        baat = results[f"{variant}|baat"].worst_damage_per_day()
        advantage = (1.0 - baat / ebuff) * 100.0 if ebuff > 0 else 0.0
        advantages[variant] = advantage
        rows.append((variant, ebuff * 1000.0, baat * 1000.0, advantage))
    spread = max(advantages.values()) - min(advantages.values())
    return ExperimentResult(
        exp_id="sensitivity",
        title="BAAT's aging advantage under perturbed calibration",
        headers=(
            "calibration variant",
            "e-buff fade/day x1e-3",
            "baat fade/day x1e-3",
            "BAAT aging cut %",
        ),
        rows=rows,
        headline={
            "baseline BAAT aging cut %": advantages["baseline"],
            "advantage spread across variants (pp)": spread,
        },
        notes=(
            "the reproduction's conclusion holds if BAAT's aging cut stays "
            "clearly positive under every perturbation; 'soc-weights flat' "
            "removes the premise of low-SoC-aware management and should "
            "shrink (not erase) the advantage"
        ),
    )
