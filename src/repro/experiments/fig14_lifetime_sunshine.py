"""Fig. 14 — battery lifetime under different solar-energy availability.

Paper results: battery lifetime increases with the sunshine fraction
(more direct solar = fewer discharge cycles). Averaged over locations,
BAAT extends battery life by ~69 % over e-Buff; BAAT-s achieves ~37 % and
BAAT-h ~29 % — slowdown matters more than balancing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.lifetime import lifetime_for_policies
from repro.analysis.reporting import improvement_percent
from repro.experiments.base import ExperimentResult
from repro.experiments.common import POLICIES, sweep_scenario
from repro.rng import DEFAULT_SEED

QUICK_FRACTIONS = (0.3, 0.55, 0.8)
FULL_FRACTIONS = (0.2, 0.35, 0.5, 0.65, 0.8, 0.95)


def run(
    quick: bool = True,
    seed: int = DEFAULT_SEED,
    fractions: Sequence[float] = (),
    n_days: int = 0,
    n_workers: Optional[int] = None,
) -> ExperimentResult:
    """Sweep the sunshine fraction and extrapolate lifetime per scheme."""
    if not fractions:
        fractions = QUICK_FRACTIONS if quick else FULL_FRACTIONS
    if n_days <= 0:
        n_days = 4 if quick else 8

    rows: List[Sequence[object]] = []
    gains: Dict[str, List[float]] = {name: [] for name in POLICIES if name != "e-buff"}
    for fraction in fractions:
        scenario = sweep_scenario(seed=seed)
        estimates = lifetime_for_policies(
            scenario, sunshine_fraction=fraction, n_days=n_days, n_workers=n_workers
        )
        base = estimates["e-buff"].lifetime_days
        rows.append(
            (f"{fraction:.0%}",)
            + tuple(estimates[name].lifetime_days for name in POLICIES)
        )
        for name in gains:
            gains[name].append(improvement_percent(estimates[name].lifetime_days, base))

    headline = {
        f"{name} lifetime vs e-Buff (avg) %": sum(values) / len(values)
        for name, values in gains.items()
    }
    return ExperimentResult(
        exp_id="fig14",
        title="Battery lifetime (days) vs sunshine fraction, per scheme",
        headers=("sunshine",) + tuple(POLICIES),
        rows=rows,
        headline=headline,
        notes=(
            "paper: lifetime grows with sunshine; BAAT +69 % avg over "
            "e-Buff, BAAT-s +37 %, BAAT-h +29 %"
        ),
    )
