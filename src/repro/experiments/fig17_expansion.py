"""Fig. 17 — trading battery-life savings for server capacity.

Paper results: the depreciation saved by BAAT's longer battery life buys
extra servers at constant TCO — up to ~15 % more in sun-rich locations —
but the expansion ratio grows sublinearly because added servers raise the
server-to-battery ratio and shorten battery life again.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.lifetime import lifetime_for_policies
from repro.cost.depreciation import DepreciationModel
from repro.cost.expansion import ExpansionModel, expansion_at_constant_tco
from repro.cost.tco import TCOModel
from repro.experiments.base import ExperimentResult
from repro.experiments.common import sweep_scenario
from repro.rng import DEFAULT_SEED

QUICK_FRACTIONS = (0.3, 0.55, 0.8)
FULL_FRACTIONS = (0.2, 0.35, 0.5, 0.65, 0.8, 0.95)

#: Ratios used to fit the lifetime-vs-load response for the fixed point.
FIT_RATIOS = (4.3, 8.0)


def _fit_lifetime_of_ratio(
    scenario_seed: int,
    sunshine: float,
    n_days: int,
    n_workers: Optional[int] = None,
):
    """Fit ``lifetime = a * ratio ** b`` through two sweep points."""
    points = []
    for ratio in FIT_RATIOS:
        scenario = sweep_scenario(seed=scenario_seed).with_server_to_battery_ratio(ratio)
        est = lifetime_for_policies(
            scenario,
            sunshine_fraction=sunshine,
            n_days=n_days,
            policies=("baat",),
            n_workers=n_workers,
        )["baat"]
        points.append((ratio, max(est.lifetime_days, 1.0)))
    (r0, l0), (r1, l1) = points
    b = float(np.log(l1 / l0) / np.log(r1 / r0))
    a = l0 / r0**b
    return lambda ratio: a * ratio**b


def run(
    quick: bool = True,
    seed: int = DEFAULT_SEED,
    fractions: Sequence[float] = (),
    n_workers: Optional[int] = None,
) -> ExperimentResult:
    """Constant-TCO expansion per sunshine fraction."""
    if not fractions:
        fractions = QUICK_FRACTIONS if quick else FULL_FRACTIONS
    n_days = 4 if quick else 8

    rows: List[Sequence[object]] = []
    expansions: Dict[float, float] = {}
    for sunshine in fractions:
        scenario = sweep_scenario(seed=seed)
        estimates = lifetime_for_policies(
            scenario,
            sunshine_fraction=sunshine,
            n_days=n_days,
            policies=("e-buff", "baat"),
            n_workers=n_workers,
        )
        lifetime_fn = _fit_lifetime_of_ratio(seed, sunshine, n_days, n_workers)
        depreciation = DepreciationModel(scenario.battery, n_batteries=scenario.n_nodes)
        tco = TCOModel(depreciation=depreciation)
        model = ExpansionModel(
            tco=tco,
            baseline_servers=scenario.n_nodes,
            lifetime_of_ratio=lifetime_fn,
            baseline_lifetime_days=estimates["e-buff"].lifetime_days,
            baseline_ratio_w_per_ah=scenario.server_to_battery_ratio,
            # Surplus solar grows with sunshine; rich locations can power
            # up to ~20 % extra servers from otherwise-fed-back energy.
            solar_headroom_fraction=min(0.20, max(0.0, sunshine - 0.2) * 0.3),
        )
        expansion = expansion_at_constant_tco(model)
        expansions[sunshine] = expansion
        rows.append(
            (
                f"{sunshine:.0%}",
                estimates["e-buff"].lifetime_days,
                estimates["baat"].lifetime_days,
                expansion * 100.0,
            )
        )

    return ExperimentResult(
        exp_id="fig17",
        title="Servers addable at constant TCO vs sunshine fraction",
        headers=("sunshine", "e-buff life (d)", "baat life (d)", "expansion %"),
        rows=rows,
        headline={"max expansion %": max(expansions.values()) * 100.0},
        notes=(
            "paper: up to ~15 % more servers in sun-rich locations, "
            "sublinear because added load shortens battery life"
        ),
    )
