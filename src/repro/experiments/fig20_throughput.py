"""Fig. 20 — impact of the four schemes on workload throughput.

Paper results for one day of operation: e-Buff looks best until battery
cut-offs take servers down (zero throughput during downtime); BAAT-s pays
a DVFS speed penalty; BAAT-h pays migration stop-and-copy overhead; BAAT
coordinates and delivers up to +28 % over e-Buff in the worst case
(cloudy day, old batteries).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.reporting import percent_change
from repro.experiments.base import ExperimentResult
from repro.experiments.common import (
    OLD_BATTERY_FADE,
    POLICIES,
    day_trace,
    run_policies,
    sweep_scenario,
)
from repro.rng import DEFAULT_SEED
from repro.sim.results import SimResult
from repro.solar.weather import DayClass

CELLS = (
    ("cloudy/old", DayClass.CLOUDY, OLD_BATTERY_FADE),
    ("rainy/old", DayClass.RAINY, OLD_BATTERY_FADE),
)


def run(quick: bool = True, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Per-scheme daily throughput on stressed days."""
    n_days = 2 if quick else 4
    rows: List[Sequence[object]] = []
    worst_gain = 0.0
    for label, day_class, fade in CELLS:
        scenario = sweep_scenario(seed=seed, initial_fade=fade)
        trace = day_trace(scenario, day_class, n_days=n_days)
        results: Dict[str, SimResult] = run_policies(scenario, trace)
        base = results["e-buff"].throughput
        for name in POLICIES:
            r = results[name]
            gain = percent_change(r.throughput, base)
            if name == "baat":
                worst_gain = max(worst_gain, gain)
            rows.append(
                (
                    label,
                    name,
                    r.throughput_per_day(),
                    gain,
                    r.total_downtime_s / 3600.0 / n_days,
                    r.migrations,
                    r.dvfs_transitions,
                )
            )
    return ExperimentResult(
        exp_id="fig20",
        title="Daily compute throughput per scheme (stressed conditions)",
        headers=(
            "cell",
            "scheme",
            "throughput/day",
            "vs e-buff %",
            "downtime h/day",
            "migrations",
            "dvfs",
        ),
        rows=rows,
        headline={"BAAT best gain over e-Buff %": worst_gain},
        notes=(
            "paper: BAAT +28 % over e-Buff in the worst case; e-Buff loses "
            "to cut-off downtime, BAAT-s to DVFS, BAAT-h to migration churn"
        ),
    )
