"""Ablation: per-server batteries vs a rack-shared pool (paper Fig. 7).

BAAT supports both distributed-storage architectures the paper names —
per-server integration (Google style) and a rack-shared pool (Facebook
Open-Rack style). Table 1 implies the trade-off: shared pools spread
cycling across members (smaller aging variation) while per-server
integration gives the controller finer-grained leverage. This ablation
runs e-Buff and BAAT under both architectures on identical weather and
reports aging spread, worst-node aging, and throughput.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence

from repro.campaign import RunSpec, run_campaign
from repro.experiments.base import ExperimentResult
from repro.experiments.common import OLD_BATTERY_FADE, sweep_scenario
from repro.rng import DEFAULT_SEED
from repro.solar.weather import DayClass

_MATRIX = tuple(
    (architecture, policy)
    for architecture in ("per-server", "rack-pool")
    for policy in ("e-buff", "baat")
)


def run(
    quick: bool = True,
    seed: int = DEFAULT_SEED,
    n_workers: Optional[int] = None,
) -> ExperimentResult:
    """Run the architecture x policy matrix on a stressed trace."""
    n_days = 2 if quick else 4
    base = sweep_scenario(seed=seed, initial_fade=OLD_BATTERY_FADE)
    mix = ([DayClass.CLOUDY, DayClass.RAINY] * ((n_days + 1) // 2))[:n_days]
    trace = base.trace_generator().days(mix)

    specs = [
        RunSpec(
            scenario=replace(base, architecture=architecture),
            trace=trace,
            policy=policy_name,
            label=f"{architecture}|{policy_name}",
        )
        for architecture, policy_name in _MATRIX
    ]
    results = run_campaign(specs, n_workers=n_workers).results()

    rows: List[Sequence[object]] = []
    spreads = {}
    for architecture, policy_name in _MATRIX:
        result = results[f"{architecture}|{policy_name}"]
        fades = [n.fade_added for n in result.nodes]
        spread = (max(fades) - min(fades)) / max(max(fades), 1e-12)
        spreads[(architecture, policy_name)] = spread
        rows.append(
            (
                architecture,
                policy_name,
                result.throughput_per_day(),
                result.worst_damage_per_day() * 1000.0,
                spread,
                result.total_downtime_s / 3600.0 / n_days,
            )
        )

    return ExperimentResult(
        exp_id="ablation-architecture",
        title="Per-server vs rack-pool energy storage, e-Buff and BAAT",
        headers=(
            "architecture",
            "scheme",
            "throughput/day",
            "worst fade/day x1e-3",
            "aging spread",
            "downtime h/day",
        ),
        rows=rows,
        headline={
            "e-Buff aging-spread cut by pooling %": (
                1.0
                - spreads[("rack-pool", "e-buff")]
                / max(spreads[("per-server", "e-buff")], 1e-12)
            )
            * 100.0,
        },
        notes=(
            "pooling naturally evens battery wear (hardware does part of "
            "BAAT-h's job); BAAT's software balancing closes most of the "
            "same gap on the per-server architecture"
        ),
    )
