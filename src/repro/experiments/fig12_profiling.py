"""Fig. 12 — system runtime profiling across weather conditions.

Paper observations for the e-Buff-style baseline on the prototype:

- battery usage frequency varies significantly across the six packs
  (Fig. 12a);
- the total energy budget is ~8 / 6 / 3 kWh for sunny / cloudy / rainy;
- sunny days show *low* Ah throughput, *high* CF, and output drawn at
  high SoC (the battery barely works); cloudy and rainy days show high
  throughput, low CF, and low-SoC output — i.e. more aging decay.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.experiments.base import ExperimentResult
from repro.experiments.common import day_trace, run_policies, sweep_scenario
from repro.rng import DEFAULT_SEED
from repro.solar.weather import DayClass


def run(quick: bool = True, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """One day per weather class; report metrics and the slowdown onset.

    Metrics come from an unmanaged (e-Buff) run; the slowdown-trigger
    time comes from a matched BAAT run ("the slowdown time varies in
    different weathers", section VI-A).
    """
    from repro.core.policies.factory import make_policy
    from repro.sim.engine import run_policy_on_trace

    scenario = sweep_scenario(seed=seed)
    rows = []
    usage_spread: Dict[str, float] = {}
    for day_class in (DayClass.SUNNY, DayClass.CLOUDY, DayClass.RAINY):
        trace = day_trace(scenario, day_class, n_days=1)
        result = run_policies(scenario, trace, policies=("e-buff",))["e-buff"]
        node = result.worst_node_by_throughput_ah()
        m = node.metrics
        ah_per_node = [n.discharged_ah for n in result.nodes]
        mean_ah = sum(ah_per_node) / len(ah_per_node)
        spread = (max(ah_per_node) - min(ah_per_node)) / mean_ah if mean_ah > 0 else 0.0
        usage_spread[day_class.value] = spread
        cf = m.cf if not math.isinf(m.cf) else float("nan")

        baat = make_policy("baat", seed=scenario.seed)
        run_policy_on_trace(scenario, baat, trace)
        trigger = baat.monitor.first_action_t
        trigger_h = trigger / 3600.0 if trigger is not None else float("nan")

        rows.append(
            (
                day_class.value,
                trace.energy_wh() / 1000.0,
                m.discharged_ah,
                m.nat * 1000.0,
                cf,
                m.pc,
                m.ddt,
                spread,
                trigger_h,
            )
        )
    return ExperimentResult(
        exp_id="fig12",
        title="Runtime aging-metric profile under different weather (e-Buff)",
        headers=(
            "day",
            "solar kWh",
            "worst-node Ah",
            "NAT (x1e-3)",
            "CF",
            "PC",
            "DDT",
            "node usage spread",
            "BAAT slowdown onset (h)",
        ),
        rows=rows,
        headline={
            "sunny-vs-rainy Ah-throughput ratio": rows[0][2] / max(rows[2][2], 1e-9),
        },
        notes=(
            "paper: sunny days -> low Ah throughput, high CF, high-SoC "
            "output; cloudy/rainy -> the reverse (more aging decay); usage "
            "varies significantly across the six packs"
        ),
    )
