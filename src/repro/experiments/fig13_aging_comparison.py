"""Fig. 13 — aging-metric comparison of the four schemes.

Paper setup: each scheme runs a full day on matched solar conditions, in
four cells — {sunny, cloudy} x {young, old} — always reporting the worst
battery node (most Ah throughput). Headline paper numbers:

- e-Buff's Ah throughput is ~35 % higher cloudy-vs-sunny;
- e-Buff cycles ~1.3x more Ah than BAAT on average, 2.1x cloudy+old;
- weighting the three metrics equally, BAAT cuts worst-case aging speed
  (cloudy + old) by ~38 %.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.experiments.base import ExperimentResult
from repro.experiments.common import (
    OLD_BATTERY_FADE,
    POLICIES,
    day_trace,
    run_policies,
    sweep_scenario,
)
from repro.rng import DEFAULT_SEED
from repro.sim.results import SimResult
from repro.solar.weather import DayClass

CELLS: Tuple[Tuple[str, DayClass, float], ...] = (
    ("sunny/young", DayClass.SUNNY, 0.0),
    ("cloudy/young", DayClass.CLOUDY, 0.0),
    ("sunny/old", DayClass.SUNNY, OLD_BATTERY_FADE),
    ("cloudy/old", DayClass.CLOUDY, OLD_BATTERY_FADE),
)

#: Days per cell; >1 so overnight carry-over (the deep-discharge driver)
#: is represented.
N_DAYS = 2


def run(quick: bool = True, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Run the 4-scheme x 4-cell matrix and tabulate worst-node metrics."""
    rows = []
    cell_results: Dict[str, Dict[str, SimResult]] = {}
    n_days = N_DAYS if quick else 2 * N_DAYS
    for label, day_class, fade in CELLS:
        scenario = sweep_scenario(seed=seed, initial_fade=fade)
        trace = day_trace(scenario, day_class, n_days=n_days)
        results = run_policies(scenario, trace)
        cell_results[label] = results
        for name in POLICIES:
            result = results[name]
            worst = result.worst_node_by_throughput_ah()
            m = worst.metrics
            rows.append(
                (
                    label,
                    name,
                    m.discharged_ah / n_days,
                    min(m.cf, 99.0),
                    m.pc,
                    m.ddt,
                    result.worst_damage_per_day() * 1000.0,
                )
            )

    def worst_ah(cell: str, policy: str) -> float:
        r = cell_results[cell][policy]
        return r.worst_node_by_throughput_ah().metrics.discharged_ah

    ebuff_cloudy_vs_sunny = (
        worst_ah("cloudy/young", "e-buff") / max(worst_ah("sunny/young", "e-buff"), 1e-9)
        - 1.0
    ) * 100.0
    ebuff_vs_baat_worstcase = worst_ah("cloudy/old", "e-buff") / max(
        worst_ah("cloudy/old", "baat"), 1e-9
    )
    aging_speed_cut = (
        1.0
        - cell_results["cloudy/old"]["baat"].worst_damage_per_day()
        / max(cell_results["cloudy/old"]["e-buff"].worst_damage_per_day(), 1e-12)
    ) * 100.0

    return ExperimentResult(
        exp_id="fig13",
        title="Aging metrics of four schemes x weather x battery age (worst node)",
        headers=("cell", "scheme", "Ah/day", "CF", "PC", "DDT", "fade/day x1e-3"),
        rows=rows,
        headline={
            "e-Buff Ah, cloudy vs sunny %": ebuff_cloudy_vs_sunny,
            "e-Buff/BAAT Ah ratio (cloudy+old)": ebuff_vs_baat_worstcase,
            "BAAT worst-case aging-speed cut %": aging_speed_cut,
        },
        notes=(
            "paper: e-Buff Ah +35 % cloudy-vs-sunny; e-Buff cycles 1.3x "
            "(avg) to 2.1x (cloudy+old) the Ah of BAAT; BAAT cuts "
            "worst-case aging speed ~38 %"
        ),
    )
