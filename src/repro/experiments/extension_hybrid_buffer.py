"""Extension — hybrid energy buffers (the paper's reference [52], HEB).

The paper's related work points to hybrid buffers as the next step:
"HEB: Deploying and Managing Hybrid Energy Buffers for Improving
Datacenter Efficiency and Economy" (ISCA'15, same authors). This
experiment implements the idea at the per-node level and quantifies the
claim that underlies it: shaving the *rate* spikes off the battery's
duty (with a tiny supercap) slows battery aging even when the *energy*
the battery delivers is unchanged.

Setup: one month of a spiky daily duty — a steady base draw with
short high-power bursts, then a solar-style recharge — served by
(a) a bare battery and (b) the same battery behind a supercap. We report
battery fade, peak battery rate, and delivered energy.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.battery.hybrid import HybridBuffer
from repro.battery.supercap import Supercapacitor, SupercapParams
from repro.battery.unit import BatteryUnit
from repro.experiments.base import ExperimentResult
from repro.rng import DEFAULT_SEED, spawn
from repro.units import SECONDS_PER_HOUR

#: Second-scale timestep: spikes live at the timescale a supercap serves.
DT_S = 10.0
BASE_W = 35.0
BURST_W = 400.0
#: Bursts per active hour and burst length (seconds).
BURSTS_PER_HOUR = 10
BURST_S = 20.0
ACTIVE_HOURS = 6.0
CHARGE_W = 55.0
CHARGE_HOURS = 8.0


def _run_duty(buffer, days: int, seed: int) -> dict:
    """Run the spiky duty; returns battery stats."""
    rng = spawn(seed, "hybrid/bursts")
    battery: BatteryUnit = buffer.battery if isinstance(buffer, HybridBuffer) else buffer
    peak_battery_current = 0.0
    delivered_wh = 0.0
    unserved_wh = 0.0
    burst_steps = 0
    battery_spike_steps = 0
    gentle_a = 3.0 * battery.params.reference_current
    steps_active = int(ACTIVE_HOURS * SECONDS_PER_HOUR / DT_S)
    burst_prob = BURSTS_PER_HOUR * (BURST_S / SECONDS_PER_HOUR)
    for _day in range(days):
        for _ in range(steps_active):
            bursting = rng.random() < burst_prob
            want = BASE_W + (BURST_W if bursting else 0.0)
            result = buffer.discharge(want, DT_S)
            delivered_wh += result.delivered_power_w * DT_S / SECONDS_PER_HOUR
            unserved_wh += max(0.0, want - result.delivered_power_w) * DT_S / 3600.0
            current = abs(battery.last_current_a)
            peak_battery_current = max(peak_battery_current, current)
            if bursting:
                burst_steps += 1
                if current > 1.1 * gentle_a:
                    battery_spike_steps += 1
        for _ in range(int(CHARGE_HOURS * SECONDS_PER_HOUR / DT_S)):
            buffer.charge(CHARGE_W, DT_S)
        buffer.rest((24.0 - ACTIVE_HOURS - CHARGE_HOURS) * SECONDS_PER_HOUR)
    return {
        "fade": battery.capacity_fade,
        "peak_rate": peak_battery_current / battery.params.reference_current,
        "delivered_wh": delivered_wh,
        "unserved_wh": unserved_wh,
        "spike_exposure": battery_spike_steps / burst_steps if burst_steps else 0.0,
    }


def run(quick: bool = True, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Bare battery vs hybrid buffer under a spiky month of duty."""
    days = 14 if quick else 60
    bare = _run_duty(BatteryUnit(name="bare"), days, seed)
    # A 3-module bank (~6 Wh usable) sized to ride consecutive bursts.
    cap = Supercapacitor(SupercapParams(capacitance_f=165.0, max_power_w=2000.0))
    hybrid = _run_duty(HybridBuffer(supercap=cap, name="hybrid"), days, seed)

    rows: List[Sequence[object]] = [
        (
            label,
            stats["fade"] / days * 1000.0,
            stats["peak_rate"],
            stats["delivered_wh"] / days,
            stats["unserved_wh"] / days,
            stats["spike_exposure"],
        )
        for label, stats in (("battery only", bare), ("hybrid (cap + battery)", hybrid))
    ]
    aging_cut = (1.0 - hybrid["fade"] / bare["fade"]) * 100.0 if bare["fade"] else 0.0
    return ExperimentResult(
        exp_id="ext-hybrid",
        title="Hybrid energy buffer vs bare battery under spiky duty",
        headers=(
            "buffer",
            "battery fade/day x1e-3",
            "peak battery rate (xC/20)",
            "served Wh/day",
            "unserved Wh/day",
            "battery burst exposure",
        ),
        rows=rows,
        headline={
            "hybrid battery-aging cut %": aging_cut,
            "battery burst-exposure cut %": (
                (1.0 - hybrid["spike_exposure"] / bare["spike_exposure"]) * 100.0
                if bare["spike_exposure"]
                else 0.0
            ),
        },
        notes=(
            "the HEB premise: a ~6 Wh supercap bank absorbs second-scale spikes, "
            "so the battery never sees the high-rate stress of section "
            "III-E while serving the same energy"
        ),
    )
