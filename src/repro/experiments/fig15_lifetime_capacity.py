"""Fig. 15 — battery lifetime under different server-to-battery ratios.

Paper results, sweeping the loading placed on batteries from 2 to
10 W/Ah:

1. heavier loading accelerates aging (~35 % lifetime loss 2 -> 10 W/Ah);
2. BAAT's advantage over e-Buff *grows* with loading (37 % -> 1.4x);
3. doubling battery capacity buys < 30 % lifetime — sizing has
   diminishing returns because aging is not linear in load.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.lifetime import lifetime_for_policies
from repro.analysis.reporting import improvement_percent, reduction_percent
from repro.experiments.base import ExperimentResult
from repro.experiments.common import sweep_scenario
from repro.rng import DEFAULT_SEED

QUICK_RATIOS = (2.0, 4.3, 7.0, 10.0)
FULL_RATIOS = (2.0, 3.0, 4.3, 6.0, 8.0, 10.0)

#: Mixed-weather evaluation point (temperate location).
SUNSHINE = 0.5


def run(
    quick: bool = True,
    seed: int = DEFAULT_SEED,
    ratios: Sequence[float] = (),
    n_workers: Optional[int] = None,
) -> ExperimentResult:
    """Sweep the server-to-battery capacity ratio (W/Ah)."""
    if not ratios:
        ratios = QUICK_RATIOS if quick else FULL_RATIOS
    n_days = 4 if quick else 8

    rows: List[Sequence[object]] = []
    lifetimes: Dict[float, Dict[str, float]] = {}
    for ratio in ratios:
        scenario = sweep_scenario(seed=seed).with_server_to_battery_ratio(ratio)
        estimates = lifetime_for_policies(
            scenario,
            sunshine_fraction=SUNSHINE,
            n_days=n_days,
            policies=("e-buff", "baat"),
            n_workers=n_workers,
        )
        lifetimes[ratio] = {k: v.lifetime_days for k, v in estimates.items()}
        gain = improvement_percent(
            lifetimes[ratio]["baat"], lifetimes[ratio]["e-buff"]
        )
        rows.append(
            (
                f"{ratio:.1f} W/Ah",
                lifetimes[ratio]["e-buff"],
                lifetimes[ratio]["baat"],
                gain,
            )
        )

    light, heavy = min(ratios), max(ratios)
    lifetime_drop = reduction_percent(
        lifetimes[heavy]["baat"], lifetimes[light]["baat"]
    )
    gain_light = improvement_percent(
        lifetimes[light]["baat"], lifetimes[light]["e-buff"]
    )
    gain_heavy = improvement_percent(
        lifetimes[heavy]["baat"], lifetimes[heavy]["e-buff"]
    )
    # Claim 3: halving the ratio (doubling battery) from the heavy end.
    mid = min(ratios, key=lambda r: abs(r - heavy / 2.0))
    doubling_gain = improvement_percent(
        lifetimes[mid]["baat"], lifetimes[heavy]["baat"]
    )

    return ExperimentResult(
        exp_id="fig15",
        title="Battery lifetime (days) vs server-to-battery ratio",
        headers=("ratio", "e-buff", "baat", "BAAT gain %"),
        rows=rows,
        headline={
            "lifetime drop light->heavy %": lifetime_drop,
            "BAAT gain at light load %": gain_light,
            "BAAT gain at heavy load %": gain_heavy,
            "doubling battery from heavy end %": doubling_gain,
        },
        notes=(
            "paper: -35 % lifetime from 2 to 10 W/Ah; BAAT's gain grows "
            "37 % -> 1.4x with load; doubling battery buys < 30 %"
        ),
    )
