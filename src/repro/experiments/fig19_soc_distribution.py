"""Fig. 19 — distribution of battery SoC under the four schemes.

Paper result over six months of operation: e-Buff concentrates battery
time in the low-SoC bins, while BAAT "shift[s] the most likely SoC region
towards 90 %-100 %", increasing resiliency and emergency-handling
capability. The paper bins SoC into seven 15-%-wide ranges.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.analysis.lifetime import season_day_classes
from repro.experiments.base import ExperimentResult
from repro.experiments.common import POLICIES, run_policies, sweep_scenario
from repro.rng import DEFAULT_SEED
from repro.sim.recorder import SOC_BIN_LABELS

SUNSHINE = 0.5


def run(quick: bool = True, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Mixed-weather season; tabulate time share per SoC bin per scheme."""
    n_days = 5 if quick else 12
    scenario = sweep_scenario(seed=seed)
    day_classes = season_day_classes(SUNSHINE, n_days, scenario.seed)
    trace = scenario.trace_generator().days(day_classes)
    results = run_policies(scenario, trace)

    rows: List[Sequence[object]] = []
    modes = {}
    for name in POLICIES:
        result = results[name]
        merged = {label: 0.0 for label in SOC_BIN_LABELS}
        for node in result.nodes:
            for label in SOC_BIN_LABELS:
                merged[label] += node.soc_distribution[label] / len(result.nodes)
        rows.append((name,) + tuple(merged[label] for label in SOC_BIN_LABELS))
        modes[name] = max(merged, key=merged.get)

    top_bin = SOC_BIN_LABELS[-1]  # SoC7: 90-100 %
    ebuff_top = rows[0][1 + SOC_BIN_LABELS.index(top_bin)]
    baat_top = rows[POLICIES.index("baat")][1 + SOC_BIN_LABELS.index(top_bin)]
    return ExperimentResult(
        exp_id="fig19",
        title="SoC distribution per scheme (fraction of time per 15 % bin)",
        headers=("scheme",) + tuple(SOC_BIN_LABELS),
        rows=rows,
        headline={
            "time at 90-100 % SoC, BAAT vs e-Buff (pp)": (baat_top - ebuff_top)
            * 100.0,
        },
        notes=(
            f"modes: { {k: v for k, v in modes.items()} }; paper: e-Buff mass "
            "sits low, BAAT shifts the mode toward the 90-100 % bin"
        ),
    )
