"""Fig. 3 — measured battery voltage drop due to aging over 6 months.

Paper result: the fully-charged terminal voltage of a cyclically used
battery drops ~9 % over six months, and the droop rate *accelerates*
(~0.1 V/month early, ~0.3 V/month late).
"""

from __future__ import annotations

from repro.experiments.aging_campaign import run_campaign
from repro.experiments.base import ExperimentResult
from repro.rng import DEFAULT_SEED


def run(quick: bool = True, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Regenerate Fig. 3 from the shared six-month campaign."""
    campaign = run_campaign(seed)
    rows = [
        (f"month {s.month}", s.full_charge_voltage_v, s.capacity_fade)
        for s in campaign.snapshots
    ]
    early, late = campaign.voltage_droop_rate_v_per_month()
    return ExperimentResult(
        exp_id="fig03",
        title="Full-charge battery voltage over 6 months of cyclic use",
        headers=("month", "full-charge voltage (V)", "capacity fade"),
        rows=rows,
        headline={
            "voltage drop over 6 months %": campaign.voltage_drop_percent(),
            "early droop (V/month)": early,
            "late droop (V/month)": late,
        },
        notes=(
            "paper: ~9 % drop, droop accelerating 0.1 -> 0.3 V/month; "
            "the model reproduces the magnitude and the acceleration sign"
        ),
    )
