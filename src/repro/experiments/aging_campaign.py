"""Six-month accelerated aging campaign (shared by Figs. 3, 4, 5).

Reproduces the measurement setting of section II-B: a battery in cyclic
green-energy-buffer service, observed monthly for six months. Each
simulated day follows the prototype's duty cycle — a sustained daytime
discharge into server load, a solar recharge, and an overnight rest —
at an aggressiveness (~45-55 % DoD per day) matching the paper's
"aggressive usage" deployment.

Monthly snapshots record the Fig. 3/4/5 observables:

- fully-charged terminal voltage (rested OCV at 100 % SoC);
- effectively stored energy per cycle (usable capacity x voltage);
- month-local round-trip efficiency (terminal Wh out / Wh in).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import List, Tuple

from repro.battery.unit import BatteryUnit
from repro.campaign import default_cache, object_key
from repro.rng import DEFAULT_SEED
from repro.units import SECONDS_PER_HOUR

#: Campaign shape: 6 observation months of ~30 days.
CAMPAIGN_MONTHS = 6
DAYS_PER_MONTH = 30

#: Daily duty cycle (hours, watts) calibrated to ~50 % DoD on a fresh
#: 12 V / 35 Ah block: 5 h discharge at 38 W, 8 h recharge at 45 W.
DISCHARGE_HOURS = 5.0
DISCHARGE_W = 38.0
CHARGE_HOURS = 8.0
CHARGE_W = 45.0
REST_HOURS = 11.0

#: Campaign integration step (seconds).
DT_S = 300.0


@dataclass(frozen=True)
class MonthlySnapshot:
    """One monthly observation of the campaign battery."""

    month: int
    full_charge_voltage_v: float
    stored_energy_wh: float
    capacity_fade: float
    month_round_trip_efficiency: float
    min_soc: float


@dataclass(frozen=True)
class CampaignResult:
    """The whole six-month record."""

    snapshots: Tuple[MonthlySnapshot, ...]

    @property
    def initial(self) -> MonthlySnapshot:
        return self.snapshots[0]

    @property
    def final(self) -> MonthlySnapshot:
        return self.snapshots[-1]

    def voltage_drop_percent(self) -> float:
        """Total full-charge voltage drop over the campaign (%)."""
        v0 = self.initial.full_charge_voltage_v
        return (1.0 - self.final.full_charge_voltage_v / v0) * 100.0

    def capacity_drop_percent(self) -> float:
        """Total stored-energy drop over the campaign (%)."""
        e0 = self.initial.stored_energy_wh
        return (1.0 - self.final.stored_energy_wh / e0) * 100.0

    def efficiency_drop_percent(self) -> float:
        """Round-trip-efficiency drop, first month vs last month (%)."""
        # Month 0 is the pre-campaign snapshot; month 1 is the first
        # month of operation.
        eta0 = self.snapshots[1].month_round_trip_efficiency
        eta1 = self.final.month_round_trip_efficiency
        return (1.0 - eta1 / eta0) * 100.0

    def voltage_droop_rate_v_per_month(self) -> Tuple[float, float]:
        """(early, late) droop rates, to exhibit the acceleration the
        paper measures (0.1 -> 0.3 V/month)."""
        v = [s.full_charge_voltage_v for s in self.snapshots]
        early = (v[1] - v[3]) / 2.0
        late = (v[3] - v[6]) / 3.0
        return early, late


def _run_day(battery: BatteryUnit) -> float:
    """One duty-cycle day; returns the day's minimum SoC."""
    min_soc = battery.soc
    steps = int(DISCHARGE_HOURS * SECONDS_PER_HOUR / DT_S)
    for _ in range(steps):
        battery.discharge(DISCHARGE_W, DT_S)
        min_soc = min(min_soc, battery.soc)
    steps = int(CHARGE_HOURS * SECONDS_PER_HOUR / DT_S)
    for _ in range(steps):
        battery.charge(CHARGE_W, DT_S)
    battery.rest(REST_HOURS * SECONDS_PER_HOUR)
    return min_soc


def _snapshot(
    battery: BatteryUnit,
    month: int,
    month_eta: float,
    min_soc: float,
) -> MonthlySnapshot:
    return MonthlySnapshot(
        month=month,
        full_charge_voltage_v=battery.voltage_model.ocv(1.0, battery.capacity_fade),
        # Energy stored per full cycle, at nameplate voltage: the paper's
        # Fig. 4 quantity tracks deliverable charge, so the voltage droop
        # is reported separately (Fig. 3) and not double-counted here.
        stored_energy_wh=battery.effective_capacity_ah * battery.params.nominal_voltage,
        capacity_fade=battery.capacity_fade,
        month_round_trip_efficiency=month_eta,
        min_soc=min_soc,
    )


@functools.lru_cache(maxsize=4)
def run_campaign(seed: int = DEFAULT_SEED, months: int = CAMPAIGN_MONTHS) -> CampaignResult:
    """Run the six-month campaign (memoized in memory and on disk).

    The campaign is deterministic in (seed, months), so the result is
    stored in the shared campaign result cache; figures 3/4/5 and their
    benches replay it from disk across processes.
    """
    # `is not None`, not truthiness — an *empty* ResultCache is falsy.
    cache = default_cache()
    key = object_key("aging-campaign", seed, months) if cache is not None else None
    if cache is not None:
        hit = cache.get(key)
        if isinstance(hit, CampaignResult):
            return hit
    battery = BatteryUnit(name="campaign")
    snapshots: List[MonthlySnapshot] = [_snapshot(battery, 0, 1.0, battery.soc)]
    for month in range(1, months + 1):
        e_in_0, e_out_0 = battery.energy_in_wh, battery.energy_out_wh
        min_soc = 1.0
        for _ in range(DAYS_PER_MONTH):
            min_soc = min(min_soc, _run_day(battery))
        d_in = battery.energy_in_wh - e_in_0
        d_out = battery.energy_out_wh - e_out_0
        eta = d_out / d_in if d_in > 0 else 1.0
        snapshots.append(_snapshot(battery, month, eta, min_soc))
    result = CampaignResult(snapshots=tuple(snapshots))
    if cache is not None:
        try:
            cache.put(key, result)
        except OSError:
            pass
    return result
