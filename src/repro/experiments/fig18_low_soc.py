"""Fig. 18 — low-SoC duration comparison (availability).

Paper results: e-Buff leaves batteries in the dangerous low-SoC state for
long stretches, risking power-budget violations and single points of
failure; BAAT balances and slows discharge, improving worst-node battery
availability by ~47 % (measured on low-SoC duration statistics).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.availability.soc_stats import availability_improvement, low_soc_stats
from repro.experiments.base import ExperimentResult
from repro.experiments.common import (
    OLD_BATTERY_FADE,
    POLICIES,
    day_trace,
    run_policies,
    sweep_scenario,
)
from repro.rng import DEFAULT_SEED
from repro.solar.weather import DayClass


def run(quick: bool = True, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Compare low-SoC residence per scheme on stressed days."""
    n_days = 2 if quick else 4
    scenario = sweep_scenario(seed=seed, initial_fade=OLD_BATTERY_FADE)
    trace = day_trace(scenario, DayClass.CLOUDY, n_days=n_days)
    results = run_policies(scenario, trace)

    rows: List[Sequence[object]] = []
    for name in POLICIES:
        stats = low_soc_stats(results[name])
        rows.append(
            (
                name,
                stats.worst_low_soc_fraction * 24.0,  # hours/day
                stats.mean_low_soc_fraction * 24.0,
                stats.downtime_s / 3600.0 / n_days,
                stats.unserved_wh / n_days,
            )
        )

    return ExperimentResult(
        exp_id="fig18",
        title="Low-SoC duration per scheme (cloudy days, old batteries)",
        headers=(
            "scheme",
            "worst node low-SoC h/day",
            "mean low-SoC h/day",
            "downtime h/day",
            "unserved Wh/day",
        ),
        rows=rows,
        headline={
            "BAAT availability improvement %": availability_improvement(
                results["e-buff"], results["baat"]
            ),
        },
        notes=(
            "paper: BAAT improves worst-node battery availability ~47 % "
            "by the statistics of low-SoC duration"
        ),
    )
