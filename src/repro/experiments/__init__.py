"""One module per paper table/figure (see DESIGN.md section 4).

Every module exposes ``run(quick=True, seed=...) -> ExperimentResult``;
``quick`` trades sweep density for speed so the whole benchmark suite
finishes in minutes. The corresponding bench in ``benchmarks/`` simply
calls ``run`` and prints the resulting table.
"""

from repro.experiments.base import ExperimentResult

__all__ = ["ExperimentResult"]
