"""Blocking client for the campaign service daemon.

Used by ``repro submit`` / ``repro serve-status``, the service bench,
and the integration tests. One :class:`ServiceClient` holds one
connection (unix socket or localhost TCP in the newline-JSON protocol)
and can issue any number of sequential requests; concurrency comes
from multiple clients, mirroring real multi-user traffic.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, Iterator, Optional

from repro.errors import ConfigurationError
from repro.service.protocol import decode_line, encode_line


def wait_for_socket(path: str, timeout_s: float = 10.0) -> None:
    """Block until a daemon accepts connections at ``path``.

    Polls by connecting — a leftover socket *file* from a dead daemon
    does not count as ready. Raises ``ConfigurationError`` on timeout.
    """
    deadline = time.monotonic() + timeout_s
    while True:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.connect(path)
            return
        except OSError:
            if time.monotonic() >= deadline:
                raise ConfigurationError(
                    f"no campaign service listening at {path} "
                    f"after {timeout_s:.0f}s"
                ) from None
            time.sleep(0.05)
        finally:
            sock.close()


class ServiceClient:
    """One blocking connection to a ``repro serve`` daemon."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout_s: Optional[float] = None,
    ):
        if (socket_path is None) == (host is None):
            raise ConfigurationError(
                "exactly one of socket_path or host/port is required"
            )
        if socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            target: Any = socket_path
        else:
            self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            target = (host, port)
        if timeout_s is not None:
            self._sock.settimeout(timeout_s)
        try:
            self._sock.connect(target)
        except OSError as exc:
            self._sock.close()
            raise ConfigurationError(
                f"cannot reach campaign service at {target}: {exc}"
            ) from None
        self._fh = self._sock.makefile("rwb")

    # -- low level ------------------------------------------------------
    def _send(self, request: Dict[str, Any]) -> None:
        self._fh.write(encode_line(request))
        self._fh.flush()

    def _read(self) -> Dict[str, Any]:
        line = self._fh.readline()
        if not line:
            raise ConfigurationError(
                "campaign service closed the connection mid-stream"
            )
        return decode_line(line)

    # -- requests -------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        self._send({"op": "ping"})
        return self._read()

    def status(self) -> Dict[str, Any]:
        self._send({"op": "status"})
        return self._read()

    def shutdown(self) -> Dict[str, Any]:
        self._send({"op": "shutdown"})
        return self._read()

    def submit(self, campaign: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
        """Submit one campaign; yield every response line as a dict.

        The stream ends with (and includes) the ``service_done``
        summary; a ``service_error`` line also terminates it. Consume
        the iterator fully before issuing another request on this
        client.
        """
        self._send({"op": "submit", "campaign": campaign})
        while True:
            data = self._read()
            yield data
            if data.get("kind") in ("service_done", "service_error"):
                return

    def submit_wait(self, campaign: Dict[str, Any]) -> Dict[str, Any]:
        """Submit and swallow the stream; return the final summary line."""
        last: Dict[str, Any] = {}
        for line in self.submit(campaign):
            last = line
        if last.get("kind") != "service_done":
            raise ConfigurationError(
                f"campaign submission failed: {last.get('error', last)}"
            )
        return last

    def close(self) -> None:
        try:
            self._fh.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
