"""Wire protocol for the campaign service.

Requests and responses are newline-delimited JSON objects. Requests are
plain ``{"op": ...}`` dicts; responses interleave two line shapes:

- **service envelopes** — ``{"kind": "service_*", ...}`` framing lines
  (ack, status, errors, the final ``service_done`` summary) plus one
  ``{"kind": "cell_result", ...}`` per cell carrying the result
  summary;
- **trace events** — the existing :mod:`repro.obs.events` wire format
  (``campaign_start``, ``cell_start``, ``cell_cache_hit``,
  ``cell_dedupe``, ``cell_finish``, ``campaign_finish``), so a client
  that appends every line to a file gets something ``repro trace`` /
  ``repro top`` already understand (unknown service kinds are skipped
  by ``iter_events(strict=False)``).

``build_specs`` turns the submitted campaign dict into
:class:`~repro.campaign.RunSpec` cells with exactly the semantics of
``repro campaign``'s flags, so a submission and a local run of the same
parameters produce identical cache keys — which is what lets the daemon
serve one client's results to another.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.campaign import RunSpec
from repro.errors import ConfigurationError
from repro.rng import DEFAULT_SEED
from repro.sim.results import SimResult
from repro.sim.scenario import Scenario
from repro.solar.weather import DayClass

#: Every request is one of these ops.
REQUEST_OPS = ("ping", "status", "submit", "shutdown")

#: Campaign-dict keys build_specs accepts; anything else is rejected
#: loudly so a typo ("polices") cannot silently run the default sweep.
CAMPAIGN_KEYS = (
    "policies",
    "days",
    "day_mix",
    "nodes",
    "dt",
    "fade",
    "seed",
    "stepper",
)


def encode_line(obj: Union[Dict[str, Any], Any]) -> bytes:
    """One wire line: compact JSON + newline (accepts dicts or events)."""
    if hasattr(obj, "to_dict"):
        obj = obj.to_dict()
    return (json.dumps(obj, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: Union[str, bytes]) -> Dict[str, Any]:
    """Parse one wire line into a dict (raises ConfigurationError)."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        data = json.loads(line)
    except ValueError as exc:
        raise ConfigurationError(f"malformed service line: {exc}") from None
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"service lines must be JSON objects, got {type(data).__name__}"
        )
    return data


def parse_request(line: Union[str, bytes]) -> Dict[str, Any]:
    """Validate one client request line."""
    data = decode_line(line)
    op = data.get("op")
    if op not in REQUEST_OPS:
        raise ConfigurationError(
            f"unknown service op {op!r}; expected one of {REQUEST_OPS}"
        )
    if op == "submit" and not isinstance(data.get("campaign"), dict):
        raise ConfigurationError("submit requests need a 'campaign' object")
    return data


def _as_list(value: Union[str, Sequence[str]], what: str) -> List[str]:
    if isinstance(value, str):
        items = [v.strip() for v in value.split(",") if v.strip()]
    elif isinstance(value, (list, tuple)):
        items = [str(v).strip() for v in value if str(v).strip()]
    else:
        raise ConfigurationError(
            f"{what} must be a comma-separated string or a list"
        )
    if not items:
        raise ConfigurationError(f"{what} must name at least one entry")
    return items


def build_specs(campaign: Optional[Dict[str, Any]]) -> List[RunSpec]:
    """Campaign dict → one RunSpec per policy (``repro campaign`` semantics).

    Keys (all optional): ``policies`` (default: the four Table-4
    schemes), ``days`` (default 1), ``day_mix`` (cycled over the
    horizon, default ``cloudy``), ``nodes`` (default 6), ``dt``
    (default 120.0 s), ``fade`` (default 0.0), ``seed``, ``stepper``
    (``reference``/``fleet``).
    """
    campaign = dict(campaign or {})
    unknown = sorted(set(campaign) - set(CAMPAIGN_KEYS))
    if unknown:
        raise ConfigurationError(
            f"unknown campaign key(s) {unknown}; expected {CAMPAIGN_KEYS}"
        )
    from repro.core.policies.factory import POLICY_NAMES

    policies = _as_list(
        campaign.get("policies", list(POLICY_NAMES)), "campaign policies"
    )
    try:
        n_days = int(campaign.get("days", 1))
        nodes = int(campaign.get("nodes", 6))
        dt_s = float(campaign.get("dt", 120.0))
        fade = float(campaign.get("fade", 0.0))
        seed = int(campaign.get("seed", DEFAULT_SEED))
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"bad campaign parameter: {exc}") from None
    if n_days < 1:
        raise ConfigurationError("campaign days must be >= 1")
    stepper = str(campaign.get("stepper", "reference"))
    if stepper not in ("reference", "fleet"):
        raise ConfigurationError(
            f"unknown stepper {stepper!r}; expected 'reference' or 'fleet'"
        )
    day_names = _as_list(campaign.get("day_mix", "cloudy"), "campaign day_mix")
    try:
        day_mix = [DayClass(d) for d in day_names]
    except ValueError as exc:
        raise ConfigurationError(
            f"unknown day class in day_mix: {exc}"
        ) from None
    days = (day_mix * ((n_days + len(day_mix) - 1) // len(day_mix)))[:n_days]

    scenario = Scenario(
        n_nodes=nodes, dt_s=dt_s, initial_fade=fade, seed=seed, stepper=stepper
    )
    trace = scenario.trace_generator().days(days)
    return [
        RunSpec(scenario=scenario, trace=trace, policy=name)
        for name in policies
    ]


def result_summary(result: SimResult) -> Dict[str, Any]:
    """The compact per-cell summary shipped in ``cell_result`` lines."""
    return {
        "policy": result.policy_name,
        "duration_s": result.duration_s,
        "throughput": result.throughput,
        "n_nodes": len(result.nodes),
        "total_downtime_s": result.total_downtime_s,
        "migrations": result.migrations,
        "dvfs_transitions": result.dvfs_transitions,
        "unserved_wh": result.unserved_wh,
        "feedback_wh": result.feedback_wh,
    }
