"""The ``repro serve`` daemon: shared cache, shared pool, live dedupe.

One :class:`CampaignService` owns the process pool and the result
cache; every client connection is an asyncio task feeding cells through
:meth:`CampaignService.run_cell`. Three layers keep concurrent clients
from wasting work:

1. **in-flight dedupe** — cells are keyed by their content hash; a
   submission whose key is already executing *joins* that execution
   (an awaited future) instead of starting its own, and the stream
   marks it with a ``cell_dedupe`` event;
2. **cache probe** — finished cells are served straight from the
   shared :class:`~repro.campaign.cache.ResultCache`;
3. **single memoize** — only the executing holder writes the cache, so
   N concurrent identical submissions cost one simulation and one
   cache write.

The pool survives hard worker deaths the same way the batch runner
does: a :class:`BrokenProcessPool` discards the poisoned pool, the
cell takes a "strike" against its retry budget, and a fresh pool is
built lazily for the next submission — the daemon never dies with a
client's campaign half-finished.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple

from repro.campaign.cache import ResultCache
from repro.campaign.runner import _error_string, _execute_spec, _is_picklable
from repro.campaign.spec import RunSpec
from repro.errors import ConfigurationError
from repro.obs.capture import sanitize_forked_worker
from repro.obs.events import (
    CampaignFinishEvent,
    CampaignStartEvent,
    CellCacheHitEvent,
    CellDedupeEvent,
    CellFinishEvent,
    CellStartEvent,
    TraceEvent,
)
from repro.service.protocol import (
    build_specs,
    encode_line,
    parse_request,
    result_summary,
)
from repro.sim.results import SimResult

#: An ``emit`` callback delivers one wire line (dict or TraceEvent).
Emit = Callable[[Any], Awaitable[None]]

#: (result, attempts, errors) — what one cell execution resolves to.
CellOutcome = Tuple[Optional[SimResult], int, Tuple[str, ...]]


class CampaignService:
    """Shared state of one daemon: cache, pool, in-flight table, stats."""

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        n_workers: int = 2,
        retries: int = 1,
    ):
        if n_workers < 1:
            raise ConfigurationError("service n_workers must be >= 1")
        if retries < 0:
            raise ConfigurationError("service retries must be >= 0")
        self.cache = cache
        self.workers = n_workers
        self.retries = retries
        self._pool: Optional[ProcessPoolExecutor] = None
        #: cache key -> future resolving to that cell's CellOutcome.
        self._inflight: Dict[str, asyncio.Future] = {}
        self._eid = itertools.count(1)
        self._campaign_seq = itertools.count(1)
        self._t0 = time.perf_counter()
        self.shutdown_requested = asyncio.Event()
        self.stats: Dict[str, int] = {
            "campaigns": 0,
            "cells": 0,
            "executed": 0,
            "cache_hits": 0,
            "dedupe_hits": 0,
            "failed": 0,
            "pool_rebuilds": 0,
        }

    # -- wire events ----------------------------------------------------
    def _now(self) -> float:
        return time.perf_counter() - self._t0

    def _event(self, cls, **kwargs) -> TraceEvent:
        """A wire trace event stamped with daemon uptime + a fresh eid."""
        return cls(t=self._now(), eid=next(self._eid), **kwargs)

    # -- pool management ------------------------------------------------
    def _get_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            # spawn, not fork: forked workers would inherit every
            # accepted connection fd, holding client sockets open after
            # the daemon closes them — HTTP clients (whose NDJSON body
            # is framed by connection close) would hang forever — and
            # would drag the live event loop state into the children.
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("spawn"),
                initializer=sanitize_forked_worker,
            )
        return self._pool

    def _discard_pool(self, pool: ProcessPoolExecutor) -> None:
        """Retire a poisoned pool (idempotent across racing cells)."""
        if self._pool is pool:
            self._pool = None
            self.stats["pool_rebuilds"] += 1
        pool.shutdown(wait=False, cancel_futures=True)

    async def _execute(self, spec: RunSpec) -> CellOutcome:
        """Run one cell with retries and broken-pool recovery."""
        loop = asyncio.get_running_loop()
        pooled = _is_picklable(spec)
        genuine = 0
        strikes = 0
        errors: List[str] = []
        while True:
            try:
                if pooled:
                    pool = self._get_pool()
                    result = await loop.run_in_executor(
                        pool, _execute_spec, spec
                    )
                else:
                    # Closure-built specs cannot cross a process
                    # boundary; a thread keeps the event loop live.
                    result = await loop.run_in_executor(
                        None, spec.execute
                    )
                return result, genuine + strikes + 1, tuple(errors)
            except BrokenProcessPool as exc:
                # A worker died hard: every cell sharing this pool sees
                # the same exception; the first to arrive retires it.
                errors.append(_error_string(exc))
                self._discard_pool(pool)
                strikes += 1
                if strikes > self.retries:
                    return None, genuine + strikes, tuple(errors)
            except Exception as exc:  # noqa: BLE001 - recorded per cell
                errors.append(_error_string(exc))
                genuine += 1
                if genuine > self.retries:
                    return None, genuine + strikes, tuple(errors)

    # -- one cell -------------------------------------------------------
    async def run_cell(self, spec: RunSpec, emit: Emit) -> Dict[str, Any]:
        """Resolve one cell (dedupe → cache → execute) and stream it.

        Returns the ``cell_result`` envelope (also emitted), whose
        ``source`` is one of ``dedupe``/``cache``/``executed``/
        ``failed``.
        """
        label = spec.effective_label
        key = spec.cache_key() if self.cache is not None else None
        started = time.perf_counter()
        self.stats["cells"] += 1

        # 1. Join an identical in-flight execution, if any. The holder
        # future resolves (never raises) unless the holder's client
        # vanished mid-run — then the future is cancelled and the loop
        # re-checks, possibly becoming the new holder.
        joined = False
        while key is not None:
            holder = self._inflight.get(key)
            if holder is None:
                break
            if not joined:
                joined = True
                self.stats["dedupe_hits"] += 1
                await emit(self._event(CellDedupeEvent, label=label))
            try:
                outcome = await asyncio.shield(holder)
            except asyncio.CancelledError:
                if holder.cancelled():
                    continue
                raise
            return await self._emit_result(
                spec, outcome, "dedupe", started, emit
            )

        # 2. Shared cache probe (wrong-type entries evict as misses).
        if key is not None:
            hit = self.cache.get(key, expect=SimResult)
            if hit is not None:
                self.stats["cache_hits"] += 1
                await emit(self._event(CellCacheHitEvent, label=label))
                return await self._emit_result(
                    spec, (hit, 0, ()), "cache", started, emit
                )

        # 3. Execute as the holder. Registration, memoize, and future
        # resolution happen without awaits in between, so followers can
        # never observe "finished but not yet cached".
        future: Optional[asyncio.Future] = None
        if key is not None:
            future = asyncio.get_running_loop().create_future()
            self._inflight[key] = future
        await emit(self._event(CellStartEvent, label=label))
        try:
            outcome = await self._execute(spec)
        except asyncio.CancelledError:
            if future is not None:
                self._inflight.pop(key, None)
                future.cancel()
            raise
        result = outcome[0]
        if result is not None and key is not None:
            try:
                self.cache.put(key, result)
            except OSError:
                # An unwritable cache degrades to uncached serving; it
                # must never fail a finished cell.
                pass
        if future is not None:
            self._inflight.pop(key, None)
            future.set_result(outcome)
        source = "executed" if result is not None else "failed"
        self.stats["executed" if result is not None else "failed"] += 1
        await emit(
            self._event(
                CellFinishEvent,
                label=label,
                ok=result is not None,
                attempts=outcome[1],
                wall_s=time.perf_counter() - started,
            )
        )
        return await self._emit_result(spec, outcome, source, started, emit)

    async def _emit_result(
        self,
        spec: RunSpec,
        outcome: CellOutcome,
        source: str,
        started: float,
        emit: Emit,
    ) -> Dict[str, Any]:
        result, attempts, errors = outcome
        envelope: Dict[str, Any] = {
            "kind": "cell_result",
            "label": spec.effective_label,
            "ok": result is not None,
            "source": source,
            "attempts": attempts,
            "wall_s": round(time.perf_counter() - started, 6),
            "errors": list(errors),
        }
        if result is not None:
            envelope["summary"] = result_summary(result)
        await emit(envelope)
        return envelope

    # -- one campaign ---------------------------------------------------
    async def run_campaign_request(
        self, campaign: Dict[str, Any], emit: Emit
    ) -> Dict[str, Any]:
        """Serve one submit request, streaming progress via ``emit``."""
        specs = build_specs(campaign)
        campaign_id = next(self._campaign_seq)
        self.stats["campaigns"] += 1
        t_start = time.perf_counter()
        await emit(
            {
                "kind": "service_ack",
                "op": "submit",
                "campaign_id": campaign_id,
                "n_cells": len(specs),
            }
        )
        await emit(
            self._event(
                CampaignStartEvent, n_cells=len(specs), n_workers=self.workers
            )
        )
        cells = await asyncio.gather(
            *(self.run_cell(spec, emit) for spec in specs)
        )
        sources = {"executed": 0, "cache": 0, "dedupe": 0, "failed": 0}
        for cell in cells:
            sources[cell["source"]] += 1
        n_ok = sum(1 for c in cells if c["ok"])
        n_failed = len(cells) - n_ok
        wall_s = time.perf_counter() - t_start
        await emit(
            self._event(
                CampaignFinishEvent,
                n_cells=len(cells),
                ok=sources["executed"],
                failed=n_failed,
                cached=sources["cache"] + sources["dedupe"],
                executed=sources["executed"] + sources["failed"],
                wall_s=wall_s,
            )
        )
        done = {
            "kind": "service_done",
            "campaign_id": campaign_id,
            "n_cells": len(cells),
            "ok": n_ok,
            "failed": n_failed,
            "cached": sources["cache"],
            "deduped": sources["dedupe"],
            "executed": sources["executed"] + sources["failed"],
            "wall_s": round(wall_s, 6),
        }
        await emit(done)
        return done

    # -- status ---------------------------------------------------------
    def status_payload(self) -> Dict[str, Any]:
        cache_info: Optional[Dict[str, Any]] = None
        if self.cache is not None:
            cache_info = {
                "path": str(self.cache.path),
                "backend": self.cache.backend,
                "hits": self.cache.hits,
                "misses": self.cache.misses,
            }
        return {
            "kind": "service_status",
            "pid": os.getpid(),
            "uptime_s": round(self._now(), 3),
            "n_workers": self.workers,
            "retries": self.retries,
            "inflight": len(self._inflight),
            "stats": dict(self.stats),
            "cache": cache_info,
        }

    # -- connection handling --------------------------------------------
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One newline-JSON client session (unix socket or TCP)."""
        # Concurrent cells of one submission share the socket; the lock
        # keeps each JSON line atomic on the wire.
        write_lock = asyncio.Lock()

        async def emit(obj: Any) -> None:
            line = encode_line(obj)
            async with write_lock:
                writer.write(line)
                await writer.drain()

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = parse_request(line)
                except ConfigurationError as exc:
                    await emit({"kind": "service_error", "error": str(exc)})
                    continue
                op = request["op"]
                if op == "ping":
                    await emit(
                        {
                            "kind": "service_pong",
                            "pid": os.getpid(),
                            "uptime_s": round(self._now(), 3),
                        }
                    )
                elif op == "status":
                    await emit(self.status_payload())
                elif op == "shutdown":
                    await emit({"kind": "service_ack", "op": "shutdown"})
                    self.shutdown_requested.set()
                    break
                elif op == "submit":
                    try:
                        await self.run_campaign_request(
                            request["campaign"], emit
                        )
                    except ConfigurationError as exc:
                        await emit(
                            {"kind": "service_error", "error": str(exc)}
                        )
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    # -- minimal HTTP (localhost) ---------------------------------------
    async def handle_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One HTTP/1.1 exchange: GET /ping|/status, POST /submit.

        Responses stream ``application/x-ndjson`` and end at connection
        close — the simplest framing that still lets ``curl -N`` watch
        a campaign live.
        """

        def respond_head(status: str) -> None:
            writer.write(
                (
                    f"HTTP/1.1 {status}\r\n"
                    "Content-Type: application/x-ndjson\r\n"
                    "Cache-Control: no-store\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("ascii")
            )

        write_lock = asyncio.Lock()

        async def emit(obj: Any) -> None:
            line = encode_line(obj)
            async with write_lock:
                writer.write(line)
                await writer.drain()

        try:
            request_line = (await reader.readline()).decode(
                "ascii", errors="replace"
            )
            parts = request_line.split()
            if len(parts) < 2:
                writer.close()
                return
            method, target = parts[0].upper(), parts[1]
            content_length = 0
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
                name, _, value = header.decode(
                    "ascii", errors="replace"
                ).partition(":")
                if name.strip().lower() == "content-length":
                    try:
                        content_length = int(value.strip())
                    except ValueError:
                        content_length = 0
            if method == "GET" and target in ("/ping", "/"):
                respond_head("200 OK")
                await emit({"kind": "service_pong", "pid": os.getpid()})
            elif method == "GET" and target == "/status":
                respond_head("200 OK")
                await emit(self.status_payload())
            elif method == "POST" and target == "/submit":
                body = (
                    await reader.readexactly(content_length)
                    if content_length
                    else b"{}"
                )
                try:
                    campaign = parse_request(
                        b'{"op":"submit","campaign":' + body + b"}"
                    )["campaign"]
                except ConfigurationError as exc:
                    respond_head("400 Bad Request")
                    await emit({"kind": "service_error", "error": str(exc)})
                else:
                    respond_head("200 OK")
                    try:
                        await self.run_campaign_request(campaign, emit)
                    except ConfigurationError as exc:
                        await emit(
                            {"kind": "service_error", "error": str(exc)}
                        )
            else:
                respond_head("404 Not Found")
                await emit(
                    {
                        "kind": "service_error",
                        "error": f"no route {method} {target}",
                    }
                )
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    def close(self) -> None:
        """Release the pool (after the event loop is done with it)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None


async def serve(
    service: CampaignService,
    socket_path: str,
    host: Optional[str] = None,
    port: Optional[int] = None,
    ready: Optional[Callable[[], None]] = None,
) -> None:
    """Run the daemon until a client requests shutdown.

    Binds a unix socket at ``socket_path`` (stale sockets from a dead
    daemon are replaced) and, when ``host``/``port`` are given, a
    localhost HTTP listener. ``ready`` fires once both are accepting —
    used by the CLI to print the endpoints and by tests/benches to
    synchronize startup.
    """
    try:
        os.unlink(socket_path)
    except FileNotFoundError:
        pass
    servers = [
        await asyncio.start_unix_server(
            service.handle_connection, path=socket_path
        )
    ]
    if host is not None:
        servers.append(
            await asyncio.start_server(service.handle_http, host, port)
        )
    try:
        if ready is not None:
            ready()
        await service.shutdown_requested.wait()
    finally:
        for server in servers:
            server.close()
            await server.wait_closed()
        try:
            os.unlink(socket_path)
        except FileNotFoundError:
            pass
        service.close()
