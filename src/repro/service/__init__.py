"""The campaign service: a persistent daemon serving cached sweeps.

BAAT's results are sweep-shaped — every figure is a campaign of
deterministic cells — and seeded RNG makes each cell a pure function of
its spec. ``repro serve`` exploits that at the fleet level: one
long-running asyncio daemon owns the result cache and a process pool,
accepts campaign specs from many concurrent clients over a unix socket
(and optionally HTTP on localhost), dedupes identical *in-flight* cells
across clients by cache key, and streams per-cell progress back as
JSONL — the same wire format the trace sinks write, so a captured
stream replays through ``repro trace`` / ``repro top`` unchanged.

Layout:

- :mod:`repro.service.protocol` — request/response line schema and
  ``build_specs`` (campaign dict → :class:`~repro.campaign.RunSpec`
  list, mirroring ``repro campaign``'s flags);
- :mod:`repro.service.daemon` — :class:`CampaignService` (dedupe,
  cache, pool management, broken-pool recovery) and :func:`serve`;
- :mod:`repro.service.client` — blocking :class:`ServiceClient` used
  by ``repro submit`` / ``repro serve-status``, benches, and tests.
"""

from repro.service.client import ServiceClient, wait_for_socket
from repro.service.daemon import CampaignService, serve
from repro.service.protocol import (
    build_specs,
    decode_line,
    encode_line,
    parse_request,
    result_summary,
)

__all__ = [
    "CampaignService",
    "ServiceClient",
    "build_specs",
    "decode_line",
    "encode_line",
    "parse_request",
    "result_summary",
    "serve",
    "wait_for_socket",
]
