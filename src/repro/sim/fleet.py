"""Vectorised fleet stepping: struct-of-arrays battery state + power path.

The reference engine advances each node's :class:`~repro.battery.unit.
BatteryUnit` object through a deep per-node call chain every step. At
fleet sizes (48-192 nodes) that chain dominates wall-clock. This module
provides a fast path that holds the whole fleet's battery/tracker state
in flat numpy arrays (:class:`FleetState`) and replays the *exact* same
arithmetic as array passes (:class:`FleetPowerPath`).

Bit-compatibility contract
--------------------------
The fast path must produce bit-identical results to the per-node path —
same ``SimResult``, same recorder series, same RNG draw order. Two rules
make that possible:

- every add/sub/mul/div/min/max is IEEE-754-exact elementwise, so those
  move to numpy with the *same association order* as the scalar code;
- ``**`` and ``exp`` are *not* guaranteed to match between numpy array
  kernels and Python's libm-backed scalar operators, so every
  transcendental (Arrhenius, OCV fade, Peukert, rate/mass stress,
  thermal decay, self-discharge) is computed per element with Python
  floats, exactly as the scalar models do.

Sequential semantics (the charge walk's surplus accounting, the utility
budget, flow accumulators) stay as Python-float folds in the reference
iteration order.

The fast path intentionally supports only the configuration the scalar
models ship with: per-server architecture, plain :class:`BatteryUnit`
instances, and the five default aging mechanisms. Anything else raises
:class:`~repro.errors.ConfigurationError` at build time so experiments
silently fall back to nothing.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.battery.aging.mechanisms import (
    EOL_FADE,
    ActiveMassDegradation,
    GridCorrosion,
    Stratification,
    Sulphation,
    WaterLoss,
)
from repro.battery.aging.model import (
    COULOMBIC_DEGRADATION,
    RESISTANCE_GROWTH_GAIN,
    AgingModel,
)
from repro.battery.charger import Charger
from repro.battery.peukert import peukert_factor_array
from repro.battery.unit import BatteryUnit
from repro.battery.voltage import (
    LOW_SOC_KNEE,
    LOW_SOC_SAG_V,
    OCV_FADE_COEFF,
    OCV_FADE_EXPONENT,
)
from repro.datacenter.cluster import Cluster
from repro.datacenter.power_path import RESTART_SOC, PowerFlows, PowerPath
from repro.datacenter.server import IDLE_DYNAMIC_FRACTION, ServerPowerState
from repro.errors import ConfigurationError
from repro.obs import BUS, REGISTRY
from repro.obs.events import BrownoutEvent
from repro.obs.telemetry import TELEMETRY
from repro.units import SECONDS_PER_HOUR

#: Canonical mechanism order; row indices of ``FleetState.damage``.
MECHANISM_ORDER = (
    GridCorrosion,
    ActiveMassDegradation,
    Sulphation,
    WaterLoss,
    Stratification,
)
_STRAT_ROW = 4

#: Node-op codes for one step (every battery is touched exactly once).
_OP_REST = 0  # rest(): age at 0 A, reset last_current
_OP_REST_KEEP = 1  # discharge cut-off/dead branch: age at 0 A, keep last_current
_OP_DISCHARGE = 2
_OP_CHARGE = 3

#: Tracker region rows (paper Eq. 3): A (>=0.8), B, C, D.
_REGION_LABELS = ("A", "B", "C", "D")

#: Active-mass SoC stress weights indexed by region (A..D).
_SOC_WEIGHTS = np.array([1.0, 1.5, 2.1, 3.0])


def _clamp01(values: np.ndarray) -> np.ndarray:
    """Vector twin of ``clamp(v, 0.0, 1.0)`` (= max(0, min(1, v)))."""
    return np.maximum(0.0, np.minimum(1.0, values))


class FleetState:
    """Struct-of-arrays mirror of every node's battery + tracker state.

    Arrays are authoritative between :meth:`capture` and
    :meth:`materialize`; the per-node objects are only synchronised at
    policy/inspection boundaries. All arrays are ordered like
    ``cluster.nodes``.
    """

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.nodes = list(cluster.nodes)
        self.n = len(self.nodes)
        self.validate(cluster)
        self._alloc_constants()
        # Cached per-dt exponential factors (thermal decay, self-discharge).
        self._decay_dt: float | None = None
        self._decay: np.ndarray | None = None
        self._sd_factor: np.ndarray | None = None
        #: Monotone battery-state generation: bumped whenever the arrays
        #: take new values (capture, end of a power step) so per-step
        #: derived() results can be memoized safely.
        self._state_version = 0
        self._derived_cache: Dict[float, Tuple[int, Dict[str, np.ndarray]]] = {}
        # Per-label (epoch, arrays) snapshots of tracker marks.
        self._mark_cache: Dict[str, Tuple[int, Dict[str, np.ndarray]]] = {}
        self.capture()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    @staticmethod
    def validate(cluster: Cluster) -> None:
        """Reject configurations the vectorised kernels do not replicate.

        The kernels transcribe the concrete default models; subclasses or
        custom mechanism sets would silently diverge, so they are refused
        loudly instead.
        """
        for node in cluster.nodes:
            b = node.battery
            if type(b) is not BatteryUnit:
                raise ConfigurationError(
                    f"fleet stepper requires plain BatteryUnit nodes; "
                    f"{node.name} has {type(b).__name__}"
                )
            if type(b.aging) is not AgingModel:
                raise ConfigurationError(
                    f"fleet stepper requires the default AgingModel; "
                    f"{node.name} has {type(b.aging).__name__}"
                )
            if type(b.charger) is not Charger:
                raise ConfigurationError(
                    f"fleet stepper requires the default Charger; "
                    f"{node.name} has {type(b.charger).__name__}"
                )
            mechs = b.aging.mechanisms
            if len(mechs) != len(MECHANISM_ORDER) or any(
                type(m) is not cls for m, cls in zip(mechs, MECHANISM_ORDER)
            ):
                raise ConfigurationError(
                    f"fleet stepper requires the five default aging "
                    f"mechanisms in canonical order; {node.name} differs"
                )

    # ------------------------------------------------------------------
    # Allocation and synchronisation
    # ------------------------------------------------------------------
    def _alloc_constants(self) -> None:
        n = self.n

        def arr(get) -> np.ndarray:
            return np.array([float(get(node)) for node in self.nodes])

        p = lambda node: node.battery.params  # noqa: E731
        #: The aging model's capacity base (manufacturing-adjusted, unfaded).
        self.cap_scaled = np.array(
            [
                float(nd.battery.params.capacity_ah * nd.battery.capacity_factor)
                for nd in self.nodes
            ]
        )
        self.cutoff_soc = arr(lambda nd: p(nd).cutoff_soc)
        self.cutoff_v = arr(lambda nd: p(nd).cutoff_voltage)
        self.r0 = arr(lambda nd: p(nd).internal_resistance_ohm)
        self.ocv_full = arr(lambda nd: p(nd).ocv_full)
        self.ocv_empty = arr(lambda nd: p(nd).ocv_empty)
        self.i_ref = arr(lambda nd: p(nd).reference_current)
        self.k_minus_1 = arr(lambda nd: p(nd).peukert_exponent - 1.0)
        self.gassing_soc = arr(lambda nd: p(nd).gassing_soc)
        self.coul_base = arr(lambda nd: p(nd).coulombic_efficiency)
        self.tau = arr(
            lambda nd: p(nd).thermal_capacity_j_per_k * p(nd).thermal_resistance_k_per_w
        )
        self.r_th = arr(lambda nd: p(nd).thermal_resistance_k_per_w)
        self.sd_rate = arr(lambda nd: p(nd).self_discharge_per_day)
        self.charge_max = arr(lambda nd: nd.battery.charger.max_current)
        self.charge_float = arr(lambda nd: nd.battery.charger.float_current)
        self.taper_start = arr(lambda nd: nd.battery.charger.params.taper_start_soc)
        self.feedback_gain = arr(lambda nd: nd.battery.aging.feedback_gain)
        # Mechanism calibration, read off the instances so re-calibrated
        # (but structurally default) models still match.
        mech = lambda nd, i: nd.battery.aging.mechanisms[i]  # noqa: E731
        self.cor_base = arr(lambda nd: mech(nd, 0).base_rate)
        self.cor_float_mult = arr(lambda nd: mech(nd, 0).float_multiplier)
        self.cor_high_mult = arr(lambda nd: mech(nd, 0).high_soc_multiplier)
        self.am_pcf = np.array(
            [
                float(EOL_FADE / mech(nd, 1).lifetime_full_cycles)
                for nd in self.nodes
            ]
        )
        self.sul_thresh = arr(lambda nd: mech(nd, 2).low_soc_threshold)
        self.sul_base = arr(lambda nd: mech(nd, 2).base_rate)
        self.wl_fpc = arr(lambda nd: mech(nd, 3).fade_per_gassing_cycle)
        self.st_base = arr(lambda nd: mech(nd, 4).base_rate)
        self.st_sat = arr(lambda nd: mech(nd, 4).saturation_hours)
        self.resistance_shares = np.array(
            [
                [float(m.resistance_share) for m in nd.battery.aging.mechanisms]
                for nd in self.nodes
            ]
        ).T  # (5, n)
        self.mech_names = [m.name for m in self.nodes[0].battery.aging.mechanisms]
        self.tracker_ref_current = arr(lambda nd: nd.tracker.params.reference_current)
        self.tracker_lifetime_ah = arr(
            lambda nd: nd.tracker.params.lifetime_ah_throughput
        )
        self.node_names = [nd.name for nd in self.nodes]
        assert len(self.node_names) == n

    def capture(self) -> None:
        """Load all mutable per-node state from the objects into arrays."""

        def arr(get) -> np.ndarray:
            return np.array([float(get(node)) for node in self.nodes])

        b = lambda nd: nd.battery  # noqa: E731
        self.soc = arr(lambda nd: b(nd)._soc)
        self.temp_c = arr(lambda nd: b(nd).thermal.temperature_c)
        self.ambient_c = arr(lambda nd: b(nd).thermal.ambient_c)
        self.time_s = arr(lambda nd: b(nd)._time_s)
        self.last_current = arr(lambda nd: b(nd)._last_current)
        self.h_full = arr(lambda nd: b(nd)._hours_since_full)
        self.energy_in_wh = arr(lambda nd: b(nd).energy_in_wh)
        self.energy_out_wh = arr(lambda nd: b(nd).energy_out_wh)
        self.damage = np.array(
            [
                [float(b(nd).aging.state.damage.get(name, 0.0)) for nd in self.nodes]
                for name in self.mech_names
            ]
        )  # (5, n)
        self.aging_discharged_ah = arr(lambda nd: b(nd).aging.state.discharged_ah)
        self.aging_charged_ah = arr(lambda nd: b(nd).aging.state.charged_ah)
        self.recoverable_strat = arr(
            lambda nd: b(nd).aging._recoverable_stratification
        )
        acc = lambda nd: nd.tracker.acc  # noqa: E731
        self.tr_discharged_ah = arr(lambda nd: acc(nd).discharged_ah)
        self.tr_charged_ah = arr(lambda nd: acc(nd).charged_ah)
        self.tr_region = np.array(
            [
                [float(acc(nd).region_discharged_ah[k]) for nd in self.nodes]
                for k in _REGION_LABELS
            ]
        )  # (4, n)
        self.tr_total_time_s = arr(lambda nd: acc(nd).total_time_s)
        self.tr_deep_time_s = arr(lambda nd: acc(nd).deep_discharge_time_s)
        self.tr_discharge_time_s = arr(lambda nd: acc(nd).discharge_time_s)
        self.tr_current_time_as = arr(lambda nd: acc(nd).discharge_current_time_as)
        self.tr_peak_a = arr(lambda nd: acc(nd).peak_discharge_current_a)
        self.tr_high_rate_s = arr(lambda nd: acc(nd).high_rate_low_soc_time_s)
        self.feedback_wh = arr(lambda nd: nd.feedback_wh)
        self._dirty = False
        self._state_version += 1
        self.refresh_policy_view()

    def refresh_policy_view(self) -> None:
        """Rebuild the control-plane masks from the server objects.

        ``server_up``, ``policy_off_mask`` and ``policy_restricted`` let
        policy decision kernels select eligible nodes without touching
        the object API. The power path keeps ``server_up`` current at the
        end of every step; the engine re-reads the other two whenever an
        object-path control pass may have parked/throttled nodes.
        """
        self.policy_off_mask = np.array(
            [nd.server.policy_off for nd in self.nodes]
        )
        self.policy_restricted = np.array(
            [
                nd.server.freq_index > 0 or nd.discharge_cap_w != float("inf")
                for nd in self.nodes
            ]
        )
        self.server_up = np.array(
            [nd.server.state is ServerPowerState.UP for nd in self.nodes]
        )

    def materialize(self) -> None:
        """Write array state back into the per-node objects.

        Called before any code that reads batteries/trackers through the
        object API (policy control, day hooks, result collection). A
        no-op when the arrays have not advanced since the last sync.
        """
        if not self._dirty:
            return
        for i, node in enumerate(self.nodes):
            bat = node.battery
            bat._soc = float(self.soc[i])
            bat.thermal.temperature_c = float(self.temp_c[i])
            bat.thermal.ambient_c = float(self.ambient_c[i])
            bat._time_s = float(self.time_s[i])
            bat._last_current = float(self.last_current[i])
            bat._hours_since_full = float(self.h_full[i])
            bat.energy_in_wh = float(self.energy_in_wh[i])
            bat.energy_out_wh = float(self.energy_out_wh[i])
            damage = bat.aging.state.damage
            for row, name in enumerate(self.mech_names):
                damage[name] = float(self.damage[row, i])
            bat.aging.state.discharged_ah = float(self.aging_discharged_ah[i])
            bat.aging.state.charged_ah = float(self.aging_charged_ah[i])
            bat.aging._recoverable_stratification = float(self.recoverable_strat[i])
            acc = node.tracker.acc
            acc.discharged_ah = float(self.tr_discharged_ah[i])
            acc.charged_ah = float(self.tr_charged_ah[i])
            for row, label in enumerate(_REGION_LABELS):
                acc.region_discharged_ah[label] = float(self.tr_region[row, i])
            acc.total_time_s = float(self.tr_total_time_s[i])
            acc.deep_discharge_time_s = float(self.tr_deep_time_s[i])
            acc.discharge_time_s = float(self.tr_discharge_time_s[i])
            acc.discharge_current_time_as = float(self.tr_current_time_as[i])
            acc.peak_discharge_current_a = float(self.tr_peak_a[i])
            acc.high_rate_low_soc_time_s = float(self.tr_high_rate_s[i])
            node.feedback_wh = float(self.feedback_wh[i])
        self._dirty = False

    def set_ambient(self, ambient_c: float) -> None:
        """Fan one ambient temperature out to every battery (array write)."""
        self.ambient_c[:] = ambient_c
        self._dirty = True

    # ------------------------------------------------------------------
    # Per-step derived quantities
    # ------------------------------------------------------------------
    def derived(self, dt: float) -> Dict[str, np.ndarray]:
        """Aging-derived electrical quantities, valid for one whole step.

        Every battery is touched exactly once per power-path step and all
        aging/thermal inputs use the pre-step state, so fade, resistance
        growth, OCV endpoints, Arrhenius factors etc. can be computed once
        here and shared by the restart check and all kernels.

        Memoized on (dt, battery-state generation): control-plane passes
        between power steps reuse the step's arrays instead of re-running
        the scalar-pow loops.
        """
        cached = self._derived_cache.get(dt)
        if cached is not None and cached[0] == self._state_version:
            return cached[1]
        d = self.damage
        total_raw = d[0] + d[1] + d[2] + d[3] + d[4]
        fade = np.maximum(0.0, np.minimum(0.95, total_raw))
        sh = self.resistance_shares
        resistive = d[0] * sh[0] + d[1] * sh[1] + d[2] * sh[2] + d[3] * sh[3] + d[4] * sh[4]
        growth = RESISTANCE_GROWTH_GAIN * resistive
        res = self.r0 * (1.0 + np.maximum(0.0, growth))
        eff_cap = self.cap_scaled * (1.0 - fade)
        fade_c = _clamp01(fade)
        # Scalar pow per element: numpy's array ** is not bit-identical to
        # Python's float ** for every operand, and the reference models go
        # through the scalar operator.
        fade_pow = np.array([f ** OCV_FADE_EXPONENT for f in fade_c.tolist()])
        full = self.ocv_full * (1.0 - OCV_FADE_COEFF * fade_pow)
        full = np.where(full < self.ocv_empty, self.ocv_empty, full)
        feedback = 1.0 + self.feedback_gain * total_raw
        ceff = np.maximum(
            0.3, np.minimum(1.0, 1.0 - COULOMBIC_DEGRADATION * fade)
        )
        arr = np.array(
            [2.0 ** ((tc - 20.0) / 10.0) for tc in self.temp_c.tolist()]
        )
        if self._decay_dt != dt:
            self._decay = np.array(
                [math.exp(-dt / t) if t > 0 else 0.0 for t in self.tau.tolist()]
            )
            self._sd_factor = np.array(
                [
                    math.exp(-rate * dt / 86400.0) if rate > 0.0 else 1.0
                    for rate in self.sd_rate.tolist()
                ]
            )
            self._decay_dt = dt
        out = {
            "total_raw": total_raw,
            "fade": fade,
            "growth": growth,
            "res": res,
            "eff_cap": eff_cap,
            "ocv_hi": full,
            "feedback": feedback,
            "ceff": ceff,
            "arr": arr,
            "decay": self._decay,
            "sd_factor": self._sd_factor,
        }
        self._derived_cache[dt] = (self._state_version, out)
        return out

    def derived_now(self) -> Dict[str, np.ndarray]:
        """Derived quantities at the step dt the run is using (60 s until
        the first step) — the dt only affects the decay/self-discharge
        factors, which control-plane readers never consult."""
        return self.derived(self._decay_dt if self._decay_dt is not None else 60.0)

    # ------------------------------------------------------------------
    # Electrical helpers (vector + scalar twins)
    # ------------------------------------------------------------------
    def ocv(self, soc: np.ndarray, der: Dict[str, np.ndarray]) -> np.ndarray:
        """Vector :meth:`VoltageModel.ocv` at the derived aging state."""
        soc_c = _clamp01(soc)
        return self.ocv_empty + (der["ocv_hi"] - self.ocv_empty) * soc_c

    def terminal_voltage(
        self,
        soc: np.ndarray,
        current: np.ndarray,
        der: Dict[str, np.ndarray],
        idx: np.ndarray | None = None,
    ) -> np.ndarray:
        """Vector :meth:`VoltageModel.terminal_voltage` (signed current)."""
        if idx is None:
            ocv_hi, empty, res, i_ref = (
                der["ocv_hi"], self.ocv_empty, der["res"], self.i_ref,
            )
        else:
            ocv_hi, empty, res, i_ref = (
                der["ocv_hi"][idx], self.ocv_empty[idx],
                der["res"][idx], self.i_ref[idx],
            )
        soc_c = _clamp01(soc)
        v = (empty + (ocv_hi - empty) * soc_c) - current * res
        knee = (current > 0.0) & (soc < LOW_SOC_KNEE)
        if knee.any():
            depth = (LOW_SOC_KNEE - soc_c) / LOW_SOC_KNEE
            rate = np.minimum(current / i_ref, 4.0) / 4.0
            v = np.where(knee, v - LOW_SOC_SAG_V * depth * rate, v)
        return v

    def _ocv_scalar(self, i: int, soc: float, der: Dict[str, np.ndarray]) -> float:
        soc_c = max(0.0, min(1.0, soc))
        empty = float(self.ocv_empty[i])
        full = float(der["ocv_hi"][i])
        return empty + (full - empty) * soc_c

    def _tv_scalar(
        self, i: int, soc: float, current: float, der: Dict[str, np.ndarray]
    ) -> float:
        v = self._ocv_scalar(i, soc, der)
        v -= current * float(der["res"][i])
        if current > 0.0 and soc < LOW_SOC_KNEE:
            depth = (LOW_SOC_KNEE - max(0.0, min(1.0, soc))) / LOW_SOC_KNEE
            rate = min(current / float(self.i_ref[i]), 4.0) / 4.0
            v -= LOW_SOC_SAG_V * depth * rate
        return v

    def max_discharge_power_i(self, i: int, der: Dict[str, np.ndarray]) -> float:
        """Scalar twin of :meth:`BatteryUnit.max_discharge_power`."""
        soc = float(self.soc[i])
        if soc <= float(self.cutoff_soc[i]):
            return 0.0
        v = self._ocv_scalar(i, soc, der)
        headroom = v - float(self.cutoff_v[i])
        if headroom <= 0.0:
            i_max = 0.0
        else:
            i_max = headroom / float(der["res"][i])
        if i_max <= 0.0:
            return 0.0
        v = self._tv_scalar(i, soc, i_max, der)
        return max(0.0, i_max * v)

    def last_draw_powers(self) -> Dict[str, float]:
        """Per-node battery draw (W) from the last step's terminal state.

        Replicates the engine's reference draw refresh: it is only read
        at control steps, and battery state is untouched between the end
        of a power step and the next control call, so computing it lazily
        here is bit-equal to refreshing it every step.
        """
        der = self.derived_now()
        current = np.maximum(0.0, self.last_current)
        voltage = self.terminal_voltage(self.soc, current, der)
        draws = current * np.maximum(voltage, 0.0)
        return {name: float(w) for name, w in zip(self.node_names, draws)}

    def mark_arrays(self, label: str, epoch: int) -> Dict[str, np.ndarray]:
        """Array snapshots of every tracker's ``label`` mark accumulator.

        Marks are frozen copies taken while the objects were current, so
        ``live array - mark array`` equals the object path's
        ``acc - mark`` elementwise. Cached per label until ``epoch`` (the
        controller's window counter) moves.
        """
        cached = self._mark_cache.get(label)
        if cached is not None and cached[0] == epoch:
            return cached[1]

        def arr(get) -> np.ndarray:
            return np.array([float(get(node)) for node in self.nodes])

        m = lambda nd: nd.tracker.mark_acc(label)  # noqa: E731
        out = {
            "discharged_ah": arr(lambda nd: m(nd).discharged_ah),
            "charged_ah": arr(lambda nd: m(nd).charged_ah),
            "region": np.array(
                [
                    [
                        float(m(nd).region_discharged_ah[k])
                        for nd in self.nodes
                    ]
                    for k in _REGION_LABELS
                ]
            ),
            "total_time_s": arr(lambda nd: m(nd).total_time_s),
            "deep_time_s": arr(lambda nd: m(nd).deep_discharge_time_s),
        }
        self._mark_cache[label] = (epoch, out)
        return out


class FleetPowerPath(PowerPath):
    """Array-native power routing, bit-compatible with :class:`PowerPath`.

    Per-node ``BatteryUnit`` calls are replaced by four vector kernels
    (discharge, charge, rest, tracker-observe) over :class:`FleetState`
    arrays; servers, the policy-visible object API, and all sequential
    accounting (utility budget, charge-walk surplus, flow sums) keep the
    reference semantics and iteration order exactly.
    """

    def __init__(self, cluster: Cluster, utility_budget_w: float = 0.0):
        super().__init__(cluster, utility_budget_w=utility_budget_w)
        self.fleet = FleetState(cluster)
        # Reusable per-step op buffers (zeroed at each step).
        n = self.fleet.n
        self._mode = np.zeros(n, dtype=np.int8)
        self._op_current = np.zeros(n)
        self._op_gassing = np.zeros(n)
        self._op_float = np.zeros(n, dtype=bool)
        self._op_drain_ah = np.zeros(n)
        self._op_stored_ah = np.zeros(n)
        self._op_delivered_w = np.zeros(n)
        self._op_absorbed_w = np.zeros(n)
        # Idle demand of a VM-less, unthrottled, up server: Server.power
        # collapses to exactly this constant (utilization and migration
        # terms are exact zeros), so the demand walk can skip two method
        # calls per empty node. Precomputed with the same expression the
        # scalar path evaluates.
        self._idle_demand = [
            float(
                nd.server.params.idle_w
                * (
                    1.0
                    - IDLE_DYNAMIC_FRACTION
                    * (1.0 - nd.server.params.freq_levels[0])
                )
            )
            for nd in self.fleet.nodes
        ]

    # ------------------------------------------------------------------
    def step(
        self,
        t: float,
        dt: float,
        solar_w: float,
        rng: Optional[np.random.Generator] = None,
        charging_enabled: bool = True,
    ) -> PowerFlows:
        nodes = self.cluster.nodes
        fs = self.fleet
        der = fs.derived(dt)

        # --- restart any down node that now has a power prospect --------
        down_state = ServerPowerState.DOWN
        drawing = sum(
            1
            for nd in nodes
            if not nd.server.admin_off and nd.server.state is not down_state
        )
        per_node_solar_guess = solar_w / float(drawing + 1)
        for i, node in enumerate(nodes):
            if node.server.state is down_state and not node.server.admin_off:
                idle = node.server.params.idle_w
                solar_ok = per_node_solar_guess >= idle
                battery_ok = (
                    float(fs.soc[i]) >= RESTART_SOC
                    and min(fs.max_discharge_power_i(i, der), node.discharge_cap_w)
                    + per_node_solar_guess
                    >= idle
                )
                if solar_ok or battery_ok:
                    node.server.power_on()

        # --- demand (sequential: preserves the RNG draw order) -----------
        # VM-less up servers at full frequency draw exactly their idle
        # constant and make no RNG draws, so the object calls are skipped
        # for them; every other node goes through Server.power unchanged.
        up_state = ServerPowerState.UP
        idle_demand = self._idle_demand
        demands = []
        for i, nd in enumerate(nodes):
            server = nd.server
            if (
                not server.vms
                and server._freq_index == 0
                and not server.admin_off
                and not server.policy_off
                and server.state is up_state
            ):
                demands.append(idle_demand[i])
            else:
                demands.append(server.power(server.utilization(t, rng)))
        total_demand = sum(demands)

        solar_to_load = min(solar_w, total_demand)

        # --- per-node deficits and the utility budget (sequential) -------
        utility_left = self.utility_budget_w
        utility_used = 0.0
        discharge_idx: List[int] = []
        discharge_power: List[float] = []
        deficits: Dict[int, float] = {}
        for i, node in enumerate(nodes):
            demand = demands[i]
            share = (
                solar_to_load * demand / total_demand if total_demand > 0 else 0.0
            )
            deficit = demand - share
            if deficit <= 1e-9:
                continue
            from_utility = min(deficit, utility_left)
            utility_left -= from_utility
            utility_used += from_utility
            deficit -= from_utility
            if deficit <= 1e-9:
                continue
            deficits[i] = deficit
            allowed = min(deficit, node.discharge_cap_w)
            if allowed > 0.0:
                discharge_idx.append(i)
                discharge_power.append(allowed)

        # Per-node op buffers: every battery resolves to exactly one op.
        mode = self._mode
        mode.fill(0)
        op_current = self._op_current  # signed (+ discharge, - charge)
        op_current.fill(0.0)
        op_gassing = self._op_gassing
        op_gassing.fill(0.0)
        op_float = self._op_float
        op_float.fill(False)
        op_drain_ah = self._op_drain_ah
        op_drain_ah.fill(0.0)
        op_stored_ah = self._op_stored_ah
        op_stored_ah.fill(0.0)
        op_delivered_w = self._op_delivered_w
        op_delivered_w.fill(0.0)
        op_absorbed_w = self._op_absorbed_w
        op_absorbed_w.fill(0.0)

        # --- battery bridges the deficit (vector kernel) ------------------
        delivered_by_idx: Dict[int, float] = {}
        if discharge_idx:
            idx = np.asarray(discharge_idx, dtype=np.intp)
            power = np.asarray(discharge_power)
            delivered = self._discharge_kernel(
                idx, power, dt, der, mode, op_current, op_drain_ah, op_delivered_w
            )
            delivered_by_idx = {
                int(i): float(w) for i, w in zip(idx, delivered)
            }

        battery_to_load = 0.0
        unserved = 0.0
        browned_out = 0
        for i, deficit in deficits.items():
            node = nodes[i]
            delivered = delivered_by_idx.get(i, 0.0)
            if i in delivered_by_idx:
                battery_to_load += delivered
            shortfall = deficit - delivered
            if shortfall > max(2.0, 0.02 * deficit):
                unserved += shortfall
                node.unserved_wh += shortfall * dt / SECONDS_PER_HOUR
                node.server.brownout()
                browned_out += 1
                if BUS.enabled:
                    BUS.emit(
                        BrownoutEvent(t=t, node=node.name, shortfall_w=shortfall)
                    )
                if REGISTRY.enabled:
                    REGISTRY.counter("power/brownouts").inc()

        # --- surplus solar charges batteries, emptiest first --------------
        surplus = max(0.0, solar_w - solar_to_load)
        solar_to_battery = 0.0
        if charging_enabled and surplus > 0.0:
            touched = mode != _OP_REST
            cand = np.nonzero((fs.soc < 1.0) & ~touched)[0]
            if len(cand):
                surplus, solar_to_battery = self._charge_walk(
                    cand, surplus, dt, der,
                    mode, op_current, op_gassing, op_float,
                    op_stored_ah, op_absorbed_w,
                )

        feedback = max(0.0, surplus)
        if feedback > 0.0:
            per_node = feedback / len(nodes)
            fs.feedback_wh += per_node * dt / SECONDS_PER_HOUR

        # --- advance all batteries in one pass -----------------------------
        self._advance_all(
            dt, der, mode, op_current, op_gassing, op_float,
            op_drain_ah, op_stored_ah, op_delivered_w, op_absorbed_w,
        )

        # --- advance servers and sensors ----------------------------------
        up = fs.server_up
        for i, node in enumerate(nodes):
            server = node.server
            server.advance_state(dt)
            up[i] = server.state is ServerPowerState.UP
        self._observe_all(dt)
        fs._dirty = True
        fs._state_version += 1

        return PowerFlows(
            demand_w=total_demand,
            solar_available_w=solar_w,
            solar_to_load_w=solar_to_load,
            solar_to_battery_w=solar_to_battery,
            battery_to_load_w=battery_to_load,
            utility_to_load_w=utility_used,
            grid_feedback_w=feedback,
            unserved_w=unserved,
            browned_out_nodes=browned_out,
        )

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def _peukert(
        self, current: np.ndarray, i_ref: np.ndarray, k_minus_1: np.ndarray
    ) -> np.ndarray:
        """Vector :func:`peukert_factor`, pow via scalar Python floats."""
        return peukert_factor_array(current, i_ref, k_minus_1)

    def _discharge_kernel(
        self,
        idx: np.ndarray,
        power: np.ndarray,
        dt: float,
        der: Dict[str, np.ndarray],
        mode: np.ndarray,
        op_current: np.ndarray,
        op_drain_ah: np.ndarray,
        op_delivered_w: np.ndarray,
    ) -> np.ndarray:
        """Vectorised :meth:`BatteryUnit.discharge` over the deficit set.

        Returns per-element delivered power (0 for the cut-off / zero-
        current branches, which rest-age while keeping their stale
        ``last_current`` exactly like the scalar path).
        """
        fs = self.fleet
        soc = fs.soc[idx]
        cutoff = fs.cutoff_soc[idx]
        res = der["res"][idx]
        cap = der["eff_cap"][idx]
        i_ref = fs.i_ref[idx]
        km1 = fs.k_minus_1[idx]
        m = len(idx)

        m_cut = soc <= cutoff
        live = ~m_cut

        # Fixed-point solve for current at the requested power (2 rounds).
        v0 = fs.ocv_empty[idx] + (der["ocv_hi"][idx] - fs.ocv_empty[idx]) * _clamp01(soc)
        current = np.where(live, power / np.maximum(v0, 1e-6), 0.0)
        running = live.copy()
        for _ in range(2):
            v = self.fleet.terminal_voltage(soc, current, der, idx)
            cont = running & (v > 0.0)
            current = np.divide(
                power, v, out=current.copy(), where=cont
            )
            running = cont

        # Voltage cut-off limit.
        headroom = v0 - fs.cutoff_v[idx]
        i_max = np.where(headroom <= 0.0, 0.0, headroom / res)
        current = np.where(live & (current > i_max), i_max, current)
        m_dead = live & (current <= 0.0)
        m_live = live & ~m_dead

        # Charge-availability limit.
        pf = self._peukert(current, i_ref, km1)
        drain_ah = current * pf * dt / SECONDS_PER_HOUR
        avail_ah = np.maximum(0.0, (soc - cutoff) * cap)
        m_scale = m_live & (drain_ah > avail_ah)
        if m_scale.any():
            scale = np.divide(
                avail_ah, drain_ah, out=np.zeros(m), where=m_scale & (drain_ah > 0.0)
            )
            current = np.where(m_scale, current * scale, current)
            pf = np.where(m_scale, self._peukert(current, i_ref, km1), pf)
            drain_ah = np.where(m_scale, current * pf * dt / SECONDS_PER_HOUR, drain_ah)

        v = self.fleet.terminal_voltage(soc, current, der, idx)
        delivered = np.where(m_live, current * np.maximum(v, 0.0), 0.0)

        mode[idx] = np.where(m_live, _OP_DISCHARGE, _OP_REST_KEEP)
        op_current[idx] = np.where(m_live, current, 0.0)
        op_drain_ah[idx] = np.where(m_live, drain_ah, 0.0)
        op_delivered_w[idx] = delivered
        return delivered

    def _charge_walk(
        self,
        cand: np.ndarray,
        surplus: float,
        dt: float,
        der: Dict[str, np.ndarray],
        mode: np.ndarray,
        op_current: np.ndarray,
        op_gassing: np.ndarray,
        op_float: np.ndarray,
        op_stored_ah: np.ndarray,
        op_absorbed_w: np.ndarray,
    ) -> Tuple[float, float]:
        """Sequential emptiest-first charge walk with vector precompute.

        The acceptance-limited outcome of :meth:`BatteryUnit.charge` does
        not depend on the offered power, so it is precomputed for every
        candidate in one vector pass; the walk applies it whenever the
        candidate is acceptance-limited and free of the overshoot clamp,
        falling back to a literal scalar transcription otherwise (the
        marginal last-charged node of a step).
        """
        fs = self.fleet
        soc = fs.soc[cand]
        res = der["res"][cand]
        cap = der["eff_cap"][cand]
        ceff = der["ceff"][cand]
        empty = fs.ocv_empty[cand]
        ocv_hi = der["ocv_hi"][cand]
        soc_c = _clamp01(soc)

        ocv = empty + (ocv_hi - empty) * soc_c
        v1 = ocv - (-1.0) * res
        bulk = fs.charge_max[cand] * (1.0 - _clamp01(der["fade"][cand]))
        start = fs.taper_start[cand]
        flt = fs.charge_float[cand]
        i_accept = np.where(
            soc_c < start,
            bulk,
            np.where(
                soc_c >= 1.0,
                flt,
                bulk + (flt - bulk) * ((soc_c - start) / (1.0 - start)),
            ),
        )
        gas_soc = fs.gassing_soc[cand]
        base = fs.coul_base[cand]
        coul = np.where(
            soc_c <= gas_soc,
            base,
            base + (0.60 - base) * ((soc_c - gas_soc) / np.maximum(1e-9, 1.0 - gas_soc)),
        )
        eta = coul * ceff

        # Acceptance-limited hypothesis: current = i_accept.
        cur0 = i_accept.copy()
        stored0 = cur0 * eta
        gas0 = cur0 - stored0
        st_ah0 = stored0 * dt / SECONDS_PER_HOUR
        room = np.maximum(0.0, (1.0 - soc) * cap)
        m_room = st_ah0 > room
        if m_room.any():
            scale = np.divide(
                room, st_ah0, out=np.zeros(len(cand)), where=m_room & (st_ah0 > 0.0)
            )
            cur0 = np.where(m_room, cur0 * scale, cur0)
            stored0 = np.where(m_room, stored0 * scale, stored0)
            gas0 = np.where(m_room, gas0 * scale, gas0)
            st_ah0 = np.where(m_room, room, st_ah0)
        v2 = ocv - (-cur0) * res
        absorbed0 = cur0 * v2
        float0 = (soc >= 0.99) & (cur0 <= flt * 2.0)

        solar_to_battery = 0.0
        order = np.argsort(soc, kind="stable")
        for j in order.tolist():
            if surplus <= 1e-9:
                break
            i = int(cand[j])
            v1_j = float(v1[j])
            i_request = surplus / max(v1_j, 1e-6)
            ia = float(i_accept[j])
            if ia <= i_request and float(absorbed0[j]) <= surplus:
                cur = float(cur0[j])
                gas = float(gas0[j])
                st_ah = float(st_ah0[j])
                absorbed = float(absorbed0[j])
                is_float = bool(float0[j])
            else:
                cur, gas, st_ah, absorbed, is_float = self._charge_scalar(
                    i, surplus, dt, der
                )
            mode[i] = _OP_CHARGE
            op_current[i] = -cur
            op_gassing[i] = gas
            op_float[i] = is_float
            op_stored_ah[i] = st_ah
            op_absorbed_w[i] = absorbed
            solar_to_battery += absorbed
            surplus -= absorbed
        return surplus, solar_to_battery

    def _charge_scalar(
        self, i: int, power_w: float, dt: float, der: Dict[str, np.ndarray]
    ) -> Tuple[float, float, float, float, bool]:
        """Literal scalar transcription of :meth:`BatteryUnit.charge`
        (state updates deferred to the batched advance)."""
        fs = self.fleet
        soc = float(fs.soc[i])
        v = self.fleet._tv_scalar(i, soc, -1.0, der)
        i_request = power_w / max(v, 1e-6)
        # Charger.acceptance_current
        soc_c = max(0.0, min(1.0, soc))
        fade = float(der["fade"][i])
        bulk = float(fs.charge_max[i]) * (1.0 - max(0.0, min(1.0, fade)))
        start = float(fs.taper_start[i])
        flt = float(fs.charge_float[i])
        if soc_c < start:
            i_accept = bulk
        elif soc_c >= 1.0:
            i_accept = flt
        else:
            frac = (soc_c - start) / (1.0 - start)
            i_accept = bulk + (flt - bulk) * frac
        current = min(i_request, i_accept)
        # Charger.coulombic_efficiency
        gas_soc = float(fs.gassing_soc[i])
        base = float(fs.coul_base[i])
        if soc_c <= gas_soc:
            coul = base
        else:
            frac = (soc_c - gas_soc) / max(1e-9, 1.0 - gas_soc)
            coul = base + (0.60 - base) * frac
        eta = coul * float(der["ceff"][i])
        stored_current = current * eta
        gassing_current = current - stored_current
        cap = float(der["eff_cap"][i])
        stored_ah = stored_current * dt / SECONDS_PER_HOUR
        room_ah = max(0.0, (1.0 - soc) * cap)
        if stored_ah > room_ah:
            scale = room_ah / stored_ah if stored_ah > 0 else 0.0
            current *= scale
            stored_current *= scale
            gassing_current *= scale
            stored_ah = room_ah
        v = self.fleet._tv_scalar(i, soc, -current, der)
        absorbed_w = current * v
        if absorbed_w > power_w > 0.0:
            scale = power_w / absorbed_w
            current *= scale
            stored_current *= scale
            gassing_current *= scale
            stored_ah *= scale
            absorbed_w = power_w
        is_float = soc >= 0.99 and current <= flt * 2.0
        return current, gassing_current, stored_ah, absorbed_w, is_float

    # ------------------------------------------------------------------
    def _advance_all(
        self,
        dt: float,
        der: Dict[str, np.ndarray],
        mode: np.ndarray,
        op_current: np.ndarray,
        op_gassing: np.ndarray,
        op_float: np.ndarray,
        op_drain_ah: np.ndarray,
        op_stored_ah: np.ndarray,
        op_delivered_w: np.ndarray,
        op_absorbed_w: np.ndarray,
    ) -> None:
        """One batched ``_apply_step`` + SoC/energy update for all nodes.

        Valid because every node's op is independent: aging, thermal, and
        SoC updates read only that node's pre-step state, which no other
        node's op can touch.
        """
        fs = self.fleet
        current = op_current  # signed
        pre_soc = fs.soc
        fbk = der["feedback"]
        arr = der["arr"]

        # --- aging mechanisms (pre-step soc/temp/hours, exact formulas) --
        # Each mechanism touches only its active subset: the adds below
        # are bit-equal to full-fleet adds of masked zeros (x + 0.0 == x).
        # Grid corrosion (always active).
        rate = fs.cor_base * arr
        fi = np.nonzero(op_float)[0]
        if len(fi):
            rate[fi] *= 1.0 + fs.cor_float_mult[fi]
        hsi = np.nonzero(pre_soc > 0.9)[0]
        if len(hsi):
            rate[hsi] *= 1.0 + fs.cor_high_mult[hsi] * (pre_soc[hsi] - 0.9) / 0.1
        fs.damage[0] += (rate * dt) * fbk
        # Active-mass degradation (discharge only; op currents are
        # strictly positive exactly on the discharge ops).
        di = np.nonzero(current > 0.0)[0]
        rn_d: np.ndarray | None = None
        if len(di):
            cd = current[di]
            ird = fs.i_ref[di]
            rn_d = np.where(ird > 0.0, cd / np.where(ird > 0.0, ird, 1.0), 0.0)
            ah = cd * dt / SECONDS_PER_HOUR
            nat = ah / fs.cap_scaled[di]
            s = _clamp01(pre_soc[di])
            socw = _SOC_WEIGHTS[
                (s < 0.80).astype(np.intp) + (s < 0.60) + (s < 0.40)
            ]
            ratew = np.ones(len(di))
            hot = np.nonzero(rn_d > 1.0)[0]
            if len(hot):
                ratew[hot] = [min(2.0, r ** 0.25) for r in rn_d[hot].tolist()]
            arr_sqrt = np.array([a ** 0.5 for a in arr[di].tolist()])
            weight = socw * ratew * arr_sqrt
            fs.damage[1][di] += (fs.am_pcf[di] * nat * weight) * fbk[di]
        # Sulphation (low SoC only; uses pre-step hours-since-full).
        si = np.nonzero(pre_soc < fs.sul_thresh)[0]
        if len(si):
            depth = (fs.sul_thresh[si] - pre_soc[si]) / fs.sul_thresh[si]
            stale_s = np.maximum(0.1, np.minimum(1.0, fs.h_full[si] / 48.0))
            fs.damage[2][si] += (
                (fs.sul_base[si] * depth * stale_s * arr[si]) * dt
            ) * fbk[si]
        # Water loss (gassing only; damage already integrates dt via Ah).
        wli = np.nonzero(op_gassing > 0.0)[0]
        if len(wli):
            gah = op_gassing[wli] * dt / SECONDS_PER_HOUR
            fs.damage[3][wli] += (
                fs.wl_fpc[wli] * (gah / fs.cap_scaled[wli]) * arr[wli]
            ) * fbk[wli]
        # Stratification (any current, stale full charge).
        stale_t = np.maximum(0.0, np.minimum(1.0, fs.h_full / fs.st_sat))
        ti = np.nonzero((current != 0.0) & (stale_t != 0.0))[0]
        if len(ti):
            rate_t = fs.st_base * stale_t
            if len(di):
                # The 1.5x worst-case factor is harmless on stale==0 rows
                # (their rate is already zero and they are outside `ti`).
                worst = di[(pre_soc[di] < 0.4) & (rn_d < 1.0)]
                rate_t[worst] *= 1.5
            d_str = (rate_t[ti] * dt) * fbk[ti]
            fs.damage[_STRAT_ROW][ti] += d_str
            fs.recoverable_strat[ti] += d_str

        if len(di):
            fs.aging_discharged_ah[di] += current[di] * dt / 3600.0
        ci = np.nonzero(current < 0.0)[0]
        if len(ci):
            fs.aging_charged_ah[ci] += -current[ci] * dt / 3600.0

        # --- thermal (uses start-of-step resistance; aging already read
        # the pre-step temperature through `arr`) -------------------------
        p_loss = current * current * der["res"]
        t_inf = fs.ambient_c + p_loss * fs.r_th
        fs.temp_c = t_inf + (fs.temp_c - t_inf) * der["decay"]

        # --- time and hours-since-full (pre-update SoC, like _apply_step)
        fs.time_s += dt
        fs.h_full[pre_soc < 0.99] += dt / SECONDS_PER_HOUR

        # --- SoC updates per op ------------------------------------------
        soc = pre_soc.copy()
        if len(di):
            cap_d = np.maximum(der["eff_cap"][di], 1e-9)
            soc[di] = _clamp01(pre_soc[di] - op_drain_ah[di] / cap_d)
        chg_i = np.nonzero(mode == _OP_CHARGE)[0]
        if len(chg_i):
            cap_c = np.maximum(der["eff_cap"][chg_i], 1e-9)
            soc[chg_i] = _clamp01(pre_soc[chg_i] + op_stored_ah[chg_i] / cap_c)
        sd_i = np.nonzero(
            (mode <= _OP_REST_KEEP) & (fs.sd_rate > 0.0) & (pre_soc > 0.0)
        )[0]
        if len(sd_i):
            soc[sd_i] *= der["sd_factor"][sd_i]
        fs.soc = soc

        # --- full-charge bookkeeping (charge op only) ---------------------
        if len(chg_i):
            full_i = chg_i[soc[chg_i] >= 0.99]
            if len(full_i):
                rec_i = full_i[pre_soc[full_i] < 0.99]
                if len(rec_i):
                    d4 = fs.damage[_STRAT_ROW]
                    rec = np.minimum(d4[rec_i], fs.recoverable_strat[rec_i] * 0.25)
                    pos = np.nonzero(rec > 0.0)[0]
                    if len(pos):
                        d4[rec_i[pos]] -= rec[pos]
                    fs.recoverable_strat[rec_i] = 0.0
                fs.h_full[full_i] = 0.0

        # --- terminal energy and last current -----------------------------
        if len(di):
            fs.energy_out_wh[di] += op_delivered_w[di] * dt / SECONDS_PER_HOUR
        if len(chg_i):
            fs.energy_in_wh[chg_i] += op_absorbed_w[chg_i] * dt / SECONDS_PER_HOUR
        last = fs.last_current
        last[mode == _OP_REST] = 0.0
        act = np.nonzero(mode >= _OP_DISCHARGE)[0]
        if len(act):
            last[act] = current[act]

    def _observe_all(self, dt: float) -> None:
        """Vectorised :meth:`Node.observe_battery` for the whole fleet."""
        fs = self.fleet
        soc = fs.soc
        current = fs.last_current
        fs.tr_total_time_s += dt
        deep = soc < 0.40
        dpi = np.nonzero(deep)[0]
        if len(dpi):
            fs.tr_deep_time_s[dpi] += dt
        di = np.nonzero(current > 0.0)[0]
        if len(di):
            cd = current[di]
            ah = cd * dt / SECONDS_PER_HOUR
            fs.tr_discharged_ah[di] += ah
            sd = soc[di]
            region = (sd < 0.80).astype(np.intp) + (sd < 0.60) + (sd < 0.40)
            fs.tr_region[region, di] += ah
            fs.tr_discharge_time_s[di] += dt
            fs.tr_current_time_as[di] += cd * dt
            peak = fs.tr_peak_a[di]
            upd = np.nonzero(cd > peak)[0]
            if len(upd):
                fs.tr_peak_a[di[upd]] = cd[upd]
            hri = di[deep[di] & (cd > fs.tracker_ref_current[di])]
            if len(hri):
                fs.tr_high_rate_s[hri] += dt
        ci = np.nonzero(current < 0.0)[0]
        if len(ci):
            fs.tr_charged_ah[ci] += -current[ci] * dt / SECONDS_PER_HOUR
        if BUS.enabled:
            # One call per step; the active TelemetryPolicy decides
            # whether this becomes a columnar frame, per-node samples
            # (byte-identical with the reference stepper), or a summary.
            TELEMETRY.record_fleet_step(BUS.now, dt, fs)
