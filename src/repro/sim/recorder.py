"""Trace recorder: per-step time series captured during a run.

Keeps compact numpy-backed series of the quantities the paper's figures
plot over time — per-node SoC, solar generation, demand, battery flows —
plus SoC histograms (Fig. 19's seven 15-%-wide bins) and low-SoC duration
accounting (Fig. 18).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.datacenter.power_path import PowerFlows
from repro.errors import ConfigurationError
from repro.obs import REGISTRY

#: Fig. 19 bins: SoC1 [0,15) ... SoC6 [75,90), SoC7 [90,100].
SOC_BIN_EDGES = (0.0, 0.15, 0.30, 0.45, 0.60, 0.75, 0.90, 1.0001)
SOC_BIN_LABELS = tuple(f"SoC{i}" for i in range(1, 8))

_BIN_EDGES = np.asarray(SOC_BIN_EDGES)
_LAST_BIN = len(SOC_BIN_LABELS) - 1

#: Float-accumulation drift tolerated outside [0, 1] before an SoC value
#: is considered a genuine bug rather than numerical noise.
SOC_DRIFT_TOLERANCE = 1e-6

#: The paper's low-SoC / deep-discharge line.
LOW_SOC_THRESHOLD = 0.40


def soc_bin(soc: float) -> int:
    """Index of the Fig.-19 bin containing ``soc`` (0-based).

    Values an epsilon outside [0, 1] (coulomb-counting float drift) are
    clamped; anything further out is a real error and still raises.
    """
    if not 0.0 <= soc <= 1.0:
        if not -SOC_DRIFT_TOLERANCE <= soc <= 1.0 + SOC_DRIFT_TOLERANCE:
            raise ConfigurationError("soc must be in [0, 1]")
        soc = min(1.0, max(0.0, soc))
    idx = int(np.searchsorted(_BIN_EDGES, soc, side="right")) - 1
    return min(max(idx, 0), _LAST_BIN)


class TraceRecorder:
    """Accumulates per-step series and distributions for one run."""

    def __init__(self, node_names: List[str], record_series: bool = True):
        self.node_names = list(node_names)
        self.record_series = record_series
        self.times_s: List[float] = []
        self.solar_w: List[float] = []
        self.demand_w: List[float] = []
        self.battery_w: List[float] = []
        self.feedback_w: List[float] = []
        self.soc_series: Dict[str, List[float]] = {n: [] for n in self.node_names}
        #: Signed per-node battery current (A, + = discharge), recorded
        #: alongside SoC so intra-day metric curves (the paper's
        #: Fig. 12(e)-(k)) can be recomputed offline.
        self.current_series: Dict[str, List[float]] = {n: [] for n in self.node_names}
        # Distributions are always recorded (cheap and needed by figures).
        # One (nodes, bins) matrix backs the per-node dict as row views so
        # the array-native path can fold all nodes in a single indexed add.
        self._soc_time = np.zeros((len(self.node_names), len(SOC_BIN_LABELS)))
        self._node_index = np.arange(len(self.node_names))
        self.soc_time_s: Dict[str, np.ndarray] = {
            n: self._soc_time[i] for i, n in enumerate(self.node_names)
        }
        self.low_soc_time_s: Dict[str, float] = {n: 0.0 for n in self.node_names}
        self.total_time_s: float = 0.0

    def record(
        self,
        t: float,
        dt: float,
        flows: PowerFlows,
        node_socs: Dict[str, float],
        node_currents: Dict[str, float] | None = None,
    ) -> None:
        """Fold one step into the series and distributions.

        SoC values are clamped into [0, 1] at this boundary: coulomb
        counting accumulates float error, and the recorder's job is to
        log the run, not to crash it an epsilon past full charge.
        """
        self.total_time_s += dt
        names = list(node_socs)
        socs = np.clip(
            np.fromiter(node_socs.values(), dtype=float, count=len(names)),
            0.0,
            1.0,
        )
        # All nodes binned in one vectorised pass (no per-node edge scan).
        bins = np.searchsorted(_BIN_EDGES, socs, side="right") - 1
        np.clip(bins, 0, _LAST_BIN, out=bins)
        for name, soc, soc_idx in zip(names, socs, bins):
            self.soc_time_s[name][soc_idx] += dt
            if soc < LOW_SOC_THRESHOLD:
                self.low_soc_time_s[name] += dt
        if REGISTRY.enabled:
            REGISTRY.counter("recorder/steps").inc()
            if len(socs):
                REGISTRY.gauge("recorder/min_soc").set(float(socs.min()))
                REGISTRY.gauge("recorder/mean_soc").set(float(socs.mean()))
        if self.record_series:
            self.times_s.append(t)
            self.solar_w.append(flows.solar_available_w)
            self.demand_w.append(flows.demand_w)
            self.battery_w.append(flows.battery_to_load_w)
            self.feedback_w.append(flows.grid_feedback_w)
            for name, soc in zip(names, socs):
                self.soc_series[name].append(float(soc))
                current = (node_currents or {}).get(name, 0.0)
                self.current_series[name].append(current)

    def record_arrays(
        self,
        t: float,
        dt: float,
        flows: PowerFlows,
        socs: np.ndarray,
        currents: np.ndarray,
    ) -> None:
        """Array-native :meth:`record`: fold one step from per-node arrays.

        ``socs`` and ``currents`` are ordered like ``self.node_names`` (the
        fleet stepper's struct-of-arrays layout). Produces bit-identical
        accumulators and series to :meth:`record` fed with the equivalent
        dicts; the input arrays are not mutated.
        """
        self.total_time_s += dt
        clipped = np.clip(socs, 0.0, 1.0)
        bins = np.searchsorted(_BIN_EDGES, clipped, side="right") - 1
        np.clip(bins, 0, _LAST_BIN, out=bins)
        # Each node lands in exactly one bin, so a direct fancy-indexed
        # add is safe (no duplicate targets) and bit-equal to the scalar
        # per-node adds.
        self._soc_time[self._node_index, bins] += dt
        for i in np.nonzero(clipped < LOW_SOC_THRESHOLD)[0].tolist():
            self.low_soc_time_s[self.node_names[i]] += dt
        if REGISTRY.enabled:
            REGISTRY.counter("recorder/steps").inc()
            if len(clipped):
                REGISTRY.gauge("recorder/min_soc").set(float(clipped.min()))
                REGISTRY.gauge("recorder/mean_soc").set(float(clipped.mean()))
        if self.record_series:
            self.times_s.append(t)
            self.solar_w.append(flows.solar_available_w)
            self.demand_w.append(flows.demand_w)
            self.battery_w.append(flows.battery_to_load_w)
            self.feedback_w.append(flows.grid_feedback_w)
            for name, soc, current in zip(
                self.node_names, clipped.tolist(), np.asarray(currents).tolist()
            ):
                self.soc_series[name].append(soc)
                self.current_series[name].append(current)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def soc_distribution(self, node: str) -> Dict[str, float]:
        """Fraction of time per Fig.-19 bin for one node."""
        total = self.soc_time_s[node].sum()
        if total <= 0:
            return {label: 0.0 for label in SOC_BIN_LABELS}
        return {
            label: float(self.soc_time_s[node][i] / total)
            for i, label in enumerate(SOC_BIN_LABELS)
        }

    def worst_low_soc_time_s(self) -> float:
        """Low-SoC residence of the worst node (Fig. 18's headline)."""
        return max(self.low_soc_time_s.values())

    def low_soc_fraction(self, node: str) -> float:
        """Share of the run the node's battery spent below 40 % SoC."""
        if self.total_time_s <= 0:
            return 0.0
        return self.low_soc_time_s[node] / self.total_time_s

    def as_arrays(self) -> Dict[str, np.ndarray]:
        """Bulk numpy views of the recorded series."""
        out = {
            "times_s": np.asarray(self.times_s),
            "solar_w": np.asarray(self.solar_w),
            "demand_w": np.asarray(self.demand_w),
            "battery_w": np.asarray(self.battery_w),
            "feedback_w": np.asarray(self.feedback_w),
        }
        for name, series in self.soc_series.items():
            out[f"soc/{name}"] = np.asarray(series)
        for name, series in self.current_series.items():
            out[f"current/{name}"] = np.asarray(series)
        return out
