"""Scenario: everything needed to assemble one experiment.

Defaults describe the paper's prototype: six server nodes, each with a
12 V / 35 Ah battery, an 8 kWh-per-sunny-day solar line, the six HiBench/
CloudSuite workloads (one VM each), an 8:30-18:30 operating window, and
no utility backing for the compute load.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.battery.params import BatteryParams
from repro.battery.unit import BatteryUnit
from repro.datacenter.cluster import Cluster
from repro.datacenter.node import Node
from repro.datacenter.server import Server, ServerParams
from repro.datacenter.vm import VM
from repro.datacenter.workloads import WorkloadProfile, standard_mix
from repro.errors import ConfigurationError
from repro.rng import DEFAULT_SEED, spawn
from repro.solar.irradiance import ClearSkyModel
from repro.solar.panel import PVPanel
from repro.solar.trace import SolarTraceGenerator


@dataclass(frozen=True)
class Scenario:
    """Immutable experiment description.

    Attributes
    ----------
    n_nodes:
        Number of server+battery nodes (the prototype has six).
    battery / server:
        Component parameter sets shared by all nodes.
    sunny_day_kwh:
        Solar energy budget of a fully sunny day (paper: 8 kWh).
    operating_window_h:
        Local-hour window in which servers run (paper: ~8:30-18:30).
    dt_s / control_interval_s:
        Simulation step and policy control period.
    utility_budget_w:
        Optional capped grid assist for the compute load (0 = pure green).
    manufacturing_variation:
        Apply per-unit initial-capacity variation (the aging-variation
        source the paper attributes to manufacturing).
    initial_fade:
        Pre-age every battery to this capacity fade before the run
        ("old battery" experiments use ~0.12).
    workloads:
        One VM is created per profile; defaults to the six-app mix.
    seed:
        Root seed for every stochastic stream.
    """

    n_nodes: int = 6
    battery: BatteryParams = field(default_factory=BatteryParams)
    server: ServerParams = field(default_factory=ServerParams)
    sunny_day_kwh: float = 8.0
    clear_sky: ClearSkyModel = field(default_factory=ClearSkyModel)
    operating_window_h: Tuple[float, float] = (8.5, 18.5)
    dt_s: float = 60.0
    control_interval_s: float = 300.0
    utility_budget_w: float = 0.0
    manufacturing_variation: bool = True
    initial_fade: float = 0.0
    initial_soc: float = 1.0
    #: Diurnal ambient temperature around the battery shelf: mean deg C
    #: and peak-to-trough swing. Temperature doubles aging per +10 deg C
    #: (section III-E), so afternoon heat coinciding with deep discharge
    #: is a real interaction the simulator should carry.
    ambient_mean_c: float = 25.0
    ambient_swing_c: float = 6.0
    workloads: Optional[Tuple[WorkloadProfile, ...]] = None
    #: Energy storage architecture (paper Fig. 7): "per-server" gives each
    #: server its own battery (Google style); "rack-pool" shares all
    #: batteries behind one rack bus (Facebook Open-Rack style).
    architecture: str = "per-server"
    #: Engine stepping implementation: "reference" walks nodes one by one
    #: (the original, easiest-to-audit path); "fleet" routes power and
    #: advances batteries through the vectorized struct-of-arrays fast
    #: path in :mod:`repro.sim.fleet`, which is bit-compatible with the
    #: reference (see tests/test_fleet_equivalence.py) but much faster at
    #: rack scale. Only per-server architectures support "fleet".
    stepper: str = "reference"
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ConfigurationError("n_nodes must be positive")
        if self.architecture not in ("per-server", "rack-pool"):
            raise ConfigurationError(
                f"unknown architecture {self.architecture!r}; "
                "choose 'per-server' or 'rack-pool'"
            )
        if self.stepper not in ("reference", "fleet"):
            raise ConfigurationError(
                f"unknown stepper {self.stepper!r}; choose 'reference' or 'fleet'"
            )
        if self.stepper == "fleet" and self.architecture != "per-server":
            raise ConfigurationError(
                "the fleet stepper supports only the per-server architecture"
            )
        if self.sunny_day_kwh <= 0:
            raise ConfigurationError("sunny_day_kwh must be positive")
        lo, hi = self.operating_window_h
        if not 0.0 <= lo < hi <= 24.0:
            raise ConfigurationError("operating_window_h must satisfy 0 <= lo < hi <= 24")
        if self.dt_s <= 0 or self.control_interval_s < self.dt_s:
            raise ConfigurationError("need dt_s > 0 and control_interval_s >= dt_s")
        if not 0.0 <= self.initial_fade < 0.95:
            raise ConfigurationError("initial_fade must be in [0, 0.95)")
        if not 0.0 <= self.initial_soc <= 1.0:
            raise ConfigurationError("initial_soc must be in [0, 1]")

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def effective_workloads(self) -> Tuple[WorkloadProfile, ...]:
        """The workload mix this scenario deploys."""
        return self.workloads if self.workloads is not None else standard_mix()

    def build_cluster(self) -> Cluster:
        """Construct fresh nodes (servers + batteries + trackers)."""
        nodes: List[Node] = []
        for i in range(self.n_nodes):
            name = f"node{i}"
            cap_factor = 1.0
            if self.manufacturing_variation:
                rng = spawn(self.seed, f"battery-mfg/{i}")
                sigma = self.battery.manufacturing_capacity_sigma
                cap_factor = float(max(0.85, 1.0 + rng.normal(0.0, sigma)))
            battery = BatteryUnit(
                params=self.battery,
                name=f"{name}/battery",
                initial_soc=self.initial_soc,
                capacity_factor=cap_factor,
            )
            if self.initial_fade > 0.0:
                self._pre_age(battery, self.initial_fade)
            server = Server(params=self.server, name=name)
            nodes.append(Node.build(name, server=server, battery=battery))
        return Cluster(nodes)

    @staticmethod
    def _pre_age(battery: BatteryUnit, fade: float) -> None:
        """Pre-age a battery by injecting mechanism damage in the typical
        cycling proportions (an "old" battery for the Fig. 13 runs)."""
        shares = {
            "active_mass": 0.55,
            "sulphation": 0.15,
            "corrosion": 0.12,
            "water_loss": 0.12,
            "stratification": 0.06,
        }
        for name, share in shares.items():
            battery.aging.state.damage[name] = fade * share
        # An old battery has also consumed a matching slice of its
        # life-long throughput (used by planned aging's Eq. 7).
        battery.aging.state.discharged_ah = (
            fade / 0.20 * 0.8 * battery.params.lifetime_ah_throughput
        )

    def build_vms(self) -> List[VM]:
        """One VM per workload profile."""
        return [
            VM(name=f"vm-{profile.name}", workload=profile)
            for profile in self.effective_workloads()
        ]

    def panel(self) -> PVPanel:
        """The scenario's PV array, sized to the sunny-day budget."""
        return PVPanel.sized_for_daily_energy(self.sunny_day_kwh, self.clear_sky)

    def trace_generator(self) -> SolarTraceGenerator:
        """A solar trace generator bound to this scenario's panel/seed."""
        return SolarTraceGenerator(self.panel(), seed=self.seed, dt_s=self.dt_s)

    # ------------------------------------------------------------------
    # Variants
    # ------------------------------------------------------------------
    def with_server_to_battery_ratio(self, w_per_ah: float) -> "Scenario":
        """Scale server power so peak-W / battery-Ah equals ``w_per_ah``
        (the Fig. 15 sweep)."""
        if w_per_ah <= 0:
            raise ConfigurationError("w_per_ah must be positive")
        target_peak = w_per_ah * self.battery.capacity_ah
        factor = target_peak / self.server.peak_w
        return replace(self, server=self.server.scaled(factor))

    @property
    def server_to_battery_ratio(self) -> float:
        """Peak server watts per battery amp-hour."""
        return self.server.peak_w / self.battery.capacity_ah
