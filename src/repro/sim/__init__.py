"""Simulation engine: scenario assembly, time stepping, and recording.

:class:`~repro.sim.scenario.Scenario` describes an experiment (node count,
battery sizing, solar budget, workloads, seeds); :class:`~repro.sim.
engine.Simulation` executes a policy against a scenario and a solar trace,
producing a :class:`~repro.sim.results.SimResult` with everything the
paper's figures report: throughput, per-node aging metrics, SoC
statistics, downtime, and damage accrual.
"""

from repro.sim.scenario import Scenario
from repro.sim.engine import Simulation, run_policy_on_trace
from repro.sim.results import SimResult, NodeResult
from repro.sim.recorder import TraceRecorder

__all__ = [
    "Scenario",
    "Simulation",
    "run_policy_on_trace",
    "SimResult",
    "NodeResult",
    "TraceRecorder",
]
