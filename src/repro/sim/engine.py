"""The time-stepped simulation engine.

One :class:`Simulation` executes one policy against one scenario and one
solar trace:

1. Build the cluster, bind the policy, and let it place every VM.
2. Step through the trace. Inside the operating window servers run their
   VMs; the power path routes solar -> load -> battery each step and the
   policy's control loop runs every control interval. Outside the window
   servers are administratively off and surplus solar keeps charging the
   batteries (the controller "precisely control[s] the battery charger so
   that the stored energy reflects the actual solar power supply").
3. Collect a :class:`~repro.sim.results.SimResult` with throughput, aging,
   and availability statistics.

Day boundaries reset the controller's metric windows and call the
policy's day hook (planned aging recomputes DoD goals there).
"""

from __future__ import annotations

import math
from time import perf_counter
from typing import Dict

from repro.core.policies.base import Policy
from repro.datacenter.power_path import PowerPath
from repro.errors import ConfigurationError, SimulationError
from repro.obs import BUS, REGISTRY
from repro.obs.events import (
    BatteryConfigEvent,
    DayStartEvent,
    RunStartEvent,
    SocCrossingEvent,
    TraceMetaEvent,
)
from repro.obs.spans import SPANS
from repro.obs.telemetry import SCHEMA_VERSION, TELEMETRY
from repro.obs.timers import StepPhaseTimers
from repro.rng import spawn
from repro.sim.recorder import LOW_SOC_THRESHOLD, TraceRecorder
from repro.sim.results import NodeResult, SimResult
from repro.sim.scenario import Scenario
from repro.solar.trace import SolarTrace
from repro.units import SECONDS_PER_DAY, SECONDS_PER_HOUR

#: Tracker mark labelling the start of the simulation (run-wide metrics).
RUN_MARK = "sim/run-start"


class Simulation:
    """Runs one policy over one scenario and solar trace."""

    def __init__(
        self,
        scenario: Scenario,
        policy: Policy,
        trace: SolarTrace,
        record_series: bool = False,
    ):
        if abs(trace.dt_s - scenario.dt_s) > 1e-9:
            raise ConfigurationError(
                f"trace dt ({trace.dt_s}s) must match scenario dt ({scenario.dt_s}s)"
            )
        self.scenario = scenario
        self.policy = policy
        self.trace = trace
        self.cluster = scenario.build_cluster()
        self.policy.bind(self.cluster, scenario=scenario)
        if scenario.architecture == "rack-pool":
            from repro.datacenter.rack import RackPowerPath

            self.power_path = RackPowerPath(
                self.cluster, utility_budget_w=scenario.utility_budget_w
            )
        elif scenario.stepper == "fleet":
            from repro.sim.fleet import FleetPowerPath

            self.power_path = FleetPowerPath(
                self.cluster, utility_budget_w=scenario.utility_budget_w
            )
        else:
            self.power_path = PowerPath(
                self.cluster, utility_budget_w=scenario.utility_budget_w
            )
        # Fleet mode keeps battery/tracker state in struct-of-arrays form
        # between steps; the engine materializes it back onto the objects
        # only at the boundaries that read them (policy hooks, collect).
        self._fleet = getattr(self.power_path, "fleet", None)
        if self._fleet is not None and self.policy.controller is not None:
            self.policy.controller.attach_fleet(self._fleet)
        self.recorder = TraceRecorder(
            [n.name for n in self.cluster], record_series=record_series
        )
        self._rng = spawn(scenario.seed, f"workload/{policy.name}")
        self._fade_start: Dict[str, float] = {}
        self._placed = False
        self._begun = False
        # Step state is defined from construction so steps_done and
        # external inspection are valid before _begin ever runs.
        self._step = 0
        self._last_draws: Dict[str, float] = {}
        self._soc_below: Dict[str, bool] = {}
        self._phase_timers: StepPhaseTimers | None = None
        # Last admin window state written to the servers (None = never):
        # the per-node admin_off fan-out only runs on transitions.
        self._admin_in_window: bool | None = None

    # ------------------------------------------------------------------
    def deploy(self) -> None:
        """Place every scenario VM through the policy (once)."""
        if self._placed:
            return
        for vm in self.scenario.build_vms():
            self.policy.place_vm(vm)
        self._placed = True

    def _begin(self) -> None:
        """One-time setup before stepping: deploy VMs, mark trackers.

        Guarded by an explicit flag — truthiness of ``_fade_start`` is
        not a begun-sentinel (it stays empty on an empty cluster, which
        would re-run setup and re-mark trackers every step).
        """
        if self._begun:
            return
        self._begun = True
        if BUS.enabled:
            BUS.now = 0.0
            # A previous run in this process may have ended mid-excursion;
            # its open run-scope spans must not leak into this run's trace
            # (campaign-scope spans — the enclosing cell — survive).
            SPANS.reset(scope="run")
            # Reset the telemetry layer's per-run state (frame delta
            # chains re-anchor) and stamp the trace header first so
            # replay tools know the schema/tier before any payload.
            TELEMETRY.start_run()
            BUS.emit(
                TraceMetaEvent(
                    t=0.0,
                    schema=SCHEMA_VERSION,
                    telemetry=TELEMETRY.policy.spec(),
                    stepper=self.scenario.stepper,
                    n_nodes=len(self.cluster),
                )
            )
            BUS.emit(
                RunStartEvent(
                    t=0.0,
                    policy=self.policy.name,
                    n_nodes=len(self.cluster),
                    steps_total=self.steps_total,
                )
            )
            # Battery constants make the trace self-contained for offline
            # aging attribution (repro health on the JSONL file alone).
            for node in self.cluster:
                params = node.battery.params
                BUS.emit(
                    BatteryConfigEvent(
                        t=0.0,
                        node=node.name,
                        lifetime_ah_throughput=params.lifetime_ah_throughput,
                        reference_current=params.reference_current,
                        capacity_ah=params.capacity_ah,
                        cutoff_soc=params.cutoff_soc,
                    )
                )
        self.deploy()
        for node in self.cluster:
            node.tracker.mark(RUN_MARK)
            self._fade_start[node.name] = node.battery.capacity_fade
            self._last_draws[node.name] = 0.0
            self._soc_below[node.name] = node.battery.soc < LOW_SOC_THRESHOLD
        # Built lazily so a disabled registry is never populated with
        # empty phase histograms by a plain (untraced) run.
        if REGISTRY.enabled:
            self._phase_timers = StepPhaseTimers(REGISTRY)
        # Step-invariant cadences, computed once rather than per step.
        dt = self.scenario.dt_s
        self._control_every = max(
            1, int(round(self.scenario.control_interval_s / dt))
        )
        self._steps_per_day = int(round(SECONDS_PER_DAY / dt))

    @property
    def steps_total(self) -> int:
        """Number of steps in the bound trace."""
        return len(self.trace.power_w)

    @property
    def steps_done(self) -> int:
        """Steps executed so far."""
        return self._step

    def step_once(self) -> None:
        """Execute exactly one simulation step.

        Exposed so tests and tools can interleave external events
        (failure injection, live inspection) with the engine; :meth:`run`
        is just a loop over this.
        """
        self._begin()
        if self._step >= self.steps_total:
            raise SimulationError("trace exhausted; no steps remain")
        scenario = self.scenario
        dt = scenario.dt_s
        window_lo, window_hi = scenario.operating_window_h
        control_every = self._control_every
        steps_per_day = self._steps_per_day

        step = self._step
        solar_w = float(self.trace.power_w[step])
        t = step * dt
        tod_h = (t % SECONDS_PER_DAY) / SECONDS_PER_HOUR
        in_window = window_lo <= tod_h < window_hi

        # Observability guards: one attribute load + branch each when the
        # layer is off (the near-free contract of repro.obs).
        obs_on = BUS.enabled
        timing = REGISTRY.enabled
        if obs_on:
            BUS.now = t
        if timing and self._phase_timers is None:
            # Registry was enabled after _begin (e.g. mid-run): attach now.
            self._phase_timers = StepPhaseTimers(REGISTRY)

        # Diurnal ambient temperature, peaking mid-afternoon (14:00).
        ambient = scenario.ambient_mean_c + 0.5 * scenario.ambient_swing_c * (
            math.cos(2.0 * math.pi * (tod_h - 14.0) / 24.0)
        )
        if self._fleet is not None:
            self._fleet.set_ambient(ambient)
        else:
            for node in self.cluster:
                node.battery.thermal.ambient_c = ambient

        if step % steps_per_day == 0:
            day_index = step // steps_per_day
            if obs_on:
                BUS.emit(DayStartEvent(t=t, day_index=day_index))
            if timing and step > 0:
                REGISTRY.sample(t)
            if self._fleet is not None:
                self._fleet.materialize()
            self.policy.on_day_start(t)

        if self._admin_in_window is not in_window:
            for node in self.cluster:
                node.server.admin_off = not in_window
            self._admin_in_window = in_window

        # --- control phase -------------------------------------------
        if timing:
            t0 = perf_counter()
        if in_window and step % control_every == 0:
            # Fleet runs try the policy's array decision pass first; it
            # returns False whenever the pass decides per-node actions
            # (or observability) require the object path, which is rare
            # in steady state.
            handled = self._fleet is not None and self.policy.control_fleet(
                t, dt, self._fleet, solar_w=solar_w
            )
            if not handled:
                if self._fleet is not None:
                    # Sync objects and derive the DR draw signal lazily:
                    # the fleet state is unchanged between the end of the
                    # previous step and this control pass, so the draws
                    # computed here are bit-identical to the reference
                    # path's per-step ones.
                    self._fleet.materialize()
                    self._last_draws = self._fleet.last_draw_powers()
                self.policy.control(t, dt, self._last_draws, solar_w=solar_w)
                if self._fleet is not None:
                    # The object pass may have parked, throttled, capped,
                    # or woken nodes; re-read the control-plane masks.
                    self._fleet.refresh_policy_view()
        if timing:
            t1 = perf_counter()
            self._phase_timers.control.observe(t1 - t0)
            t0 = t1

        # --- power-path phase ----------------------------------------
        flows = self.power_path.step(t, dt, solar_w, rng=self._rng)

        # Per-node battery draws for the next control pass (the DR
        # signal): approximate by each node's battery discharge share.
        # Fleet mode computes this lazily at the next control pass
        # instead of scanning every node every step.
        if self._fleet is None:
            for node in self.cluster:
                current = max(0.0, node.battery.last_current_a)
                voltage = node.battery.terminal_voltage(current)
                self._last_draws[node.name] = current * max(voltage, 0.0)
        if timing:
            t1 = perf_counter()
            self._phase_timers.power.observe(t1 - t0)
            t0 = t1

        if obs_on:
            self._emit_soc_crossings(t)

        # --- VM-advance phase ----------------------------------------
        # VM progress accounting. Overcommitted servers time-share: when
        # hosted VMs demand more than one CPU, each runs at its
        # proportional share (consolidation trades speed for staying
        # powered, which the throughput metric must reflect).
        if in_window:
            for node in self.cluster:
                if not node.server.vms:
                    # No hosted VMs: neither branch below would advance
                    # anything or draw RNG, so skip the speed query.
                    continue
                speed = node.server.speed_factor()
                if speed <= 0.0:
                    # A down/parked host makes no progress; passing an
                    # explicit zero utilisation keeps the VMs from burning
                    # RNG draws that the demand pass never made.
                    for vm in list(node.server.vms):
                        vm.advance(dt, 0.0, t, self._rng, util=0.0)
                    continue
                # Sample each VM's utilisation exactly once per step and
                # reuse it for both the contention factor and the advance,
                # so the progress accrued agrees with the demand that set
                # the contention (and RNG state moves once per VM).
                utils = [vm.utilization(t, self._rng) for vm in node.server.vms]
                demand = sum(utils)
                contention = min(1.0, 1.0 / demand) if demand > 1.0 else 1.0
                factor = speed * contention
                for vm, util in zip(list(node.server.vms), utils):
                    vm.advance(dt, factor, t, self._rng, util=util)
        if timing:
            t1 = perf_counter()
            self._phase_timers.advance.observe(t1 - t0)
            t0 = t1

        # --- record phase --------------------------------------------
        if self._fleet is not None:
            self.recorder.record_arrays(
                t, dt, flows, self._fleet.soc, self._fleet.last_current
            )
        else:
            self.recorder.record(
                t,
                dt,
                flows,
                {n.name: n.battery.soc for n in self.cluster},
                {n.name: n.battery.last_current_a for n in self.cluster},
            )
        if timing:
            self._phase_timers.record.observe(perf_counter() - t0)
        self._step += 1

    def _emit_soc_crossings(self, t: float) -> None:
        """Emit an event whenever a battery crosses the low-SoC line.

        A downward crossing also opens the node's ``deep_discharge``
        span (caused by the crossing event), and the matching upward
        crossing closes it — the root interval most Fig.-9 provenance
        chains bottom out at.
        """
        below = self._soc_below
        fleet_socs = None if self._fleet is None else self._fleet.soc
        for i, node in enumerate(self.cluster):
            soc = node.battery.soc if fleet_socs is None else float(fleet_socs[i])
            now_below = soc < LOW_SOC_THRESHOLD
            if now_below != below[node.name]:
                below[node.name] = now_below
                crossing = SocCrossingEvent(
                    t=t,
                    node=node.name,
                    soc=soc,
                    threshold=LOW_SOC_THRESHOLD,
                    direction="down" if now_below else "up",
                )
                BUS.emit(crossing)
                if now_below:
                    SPANS.start(
                        "deep_discharge",
                        node=node.name,
                        t=t,
                        cause=crossing.eid,
                    )
                else:
                    SPANS.end("deep_discharge", node=node.name, t=t)

    def run(self) -> SimResult:
        """Execute the whole (remaining) trace and return the results."""
        self._begin()
        while self._step < self.steps_total:
            self.step_once()
        return self._collect()

    # ------------------------------------------------------------------
    def _collect(self) -> SimResult:
        if BUS.enabled:
            # Flush any telemetry buffered for a partial final step.
            TELEMETRY.end_run()
        if self._fleet is not None:
            self._fleet.materialize()
        nodes = []
        for node in self.cluster:
            metrics = node.tracker.since(RUN_MARK)
            nodes.append(
                NodeResult(
                    name=node.name,
                    fade_start=self._fade_start[node.name],
                    fade_end=node.battery.capacity_fade,
                    discharged_ah=metrics.discharged_ah,
                    charged_ah=metrics.charged_ah,
                    metrics=metrics,
                    downtime_s=node.server.downtime_s,
                    low_soc_time_s=self.recorder.low_soc_time_s[node.name],
                    soc_distribution=self.recorder.soc_distribution(node.name),
                    final_soc=node.battery.soc,
                )
            )
        migrations = sum(vm.migrations for vm in self.cluster.vms.values())
        dvfs = sum(n.server.dvfs_transitions for n in self.cluster)
        return SimResult(
            policy_name=self.policy.name,
            duration_s=self.trace.duration_s,
            throughput=self.cluster.total_progress(),
            nodes=nodes,
            total_downtime_s=sum(n.server.downtime_s for n in self.cluster),
            migrations=migrations,
            dvfs_transitions=dvfs,
            unserved_wh=sum(n.unserved_wh for n in self.cluster),
            feedback_wh=sum(n.feedback_wh for n in self.cluster),
            recorder=self.recorder,
        )


def run_policy_on_trace(
    scenario: Scenario,
    policy: Policy,
    trace: SolarTrace,
    record_series: bool = False,
) -> SimResult:
    """Convenience one-shot: build, run, and return the result."""
    return Simulation(scenario, policy, trace, record_series=record_series).run()
