"""Simulation results: everything a paper figure needs from one run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.metrics.snapshot import AgingMetrics
from repro.sim.recorder import TraceRecorder
from repro.units import SECONDS_PER_DAY


@dataclass(frozen=True)
class NodeResult:
    """Per-node outcome of one run.

    Attributes
    ----------
    fade_added:
        Capacity fade accumulated during the run (not counting pre-aging).
    damage_per_day:
        Mean fade accrual rate, the input to lifetime extrapolation.
    metrics:
        The five aging metrics over the whole run window.
    """

    name: str
    fade_start: float
    fade_end: float
    discharged_ah: float
    charged_ah: float
    metrics: AgingMetrics
    downtime_s: float
    low_soc_time_s: float
    soc_distribution: Dict[str, float]
    final_soc: float

    @property
    def fade_added(self) -> float:
        return self.fade_end - self.fade_start

    def damage_per_day(self, duration_s: float) -> float:
        """Mean capacity-fade accrual per day over the run."""
        days = duration_s / SECONDS_PER_DAY
        return self.fade_added / days if days > 0 else 0.0


@dataclass(frozen=True)
class SimResult:
    """Whole-run outcome for one (policy, scenario, trace) triple."""

    policy_name: str
    duration_s: float
    throughput: float
    nodes: List[NodeResult]
    total_downtime_s: float
    migrations: int
    dvfs_transitions: int
    unserved_wh: float
    feedback_wh: float
    recorder: Optional[TraceRecorder] = field(default=None, compare=False)

    # ------------------------------------------------------------------
    # Worst-node views (the paper reports the worst battery node)
    # ------------------------------------------------------------------
    def worst_node(self) -> NodeResult:
        """Node with the most fade added during the run."""
        return max(self.nodes, key=lambda n: n.fade_added)

    def worst_node_by_throughput_ah(self) -> NodeResult:
        """Node with the largest Ah throughput (the paper's Fig. 13
        selection: "the worst battery node that has the most
        Ah-throughput")."""
        return max(self.nodes, key=lambda n: n.discharged_ah)

    def mean_fade_added(self) -> float:
        """Mean capacity fade added across nodes."""
        return sum(n.fade_added for n in self.nodes) / len(self.nodes)

    def worst_damage_per_day(self) -> float:
        """Worst node's fade rate (per day)."""
        return self.worst_node().damage_per_day(self.duration_s)

    def mean_damage_per_day(self) -> float:
        """Mean node fade rate (per day)."""
        return sum(n.damage_per_day(self.duration_s) for n in self.nodes) / len(
            self.nodes
        )

    def worst_low_soc_fraction(self) -> float:
        """Worst node's share of time below 40 % SoC (Fig. 18)."""
        if self.duration_s <= 0:
            return 0.0
        return max(n.low_soc_time_s for n in self.nodes) / self.duration_s

    @property
    def days(self) -> float:
        return self.duration_s / SECONDS_PER_DAY

    def throughput_per_day(self) -> float:
        """Progress units per day (the Fig. 20 comparison quantity)."""
        return self.throughput / self.days if self.days > 0 else 0.0
