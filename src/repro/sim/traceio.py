"""Trace and result persistence.

The prototype logged everything — solar generation, per-battery sensor
streams, scheme outcomes — and the paper's methodology depends on
replaying matched logs ("we are able to find the most similar solar
generation scenarios across the multi-groups of experiment logs"). This
module provides the equivalent plumbing:

- solar traces round-trip through JSON so an interesting day can be
  replayed against any policy later;
- power tables (Table-2 sensor logs) export to CSV for external analysis;
- simulation results serialise to a JSON summary for experiment archives.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.power_table import PowerTable
from repro.errors import TraceError
from repro.sim.results import SimResult
from repro.solar.trace import SolarTrace
from repro.solar.weather import DayClass

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_solar_trace(trace: SolarTrace, path: PathLike) -> None:
    """Write a solar trace to a JSON file."""
    payload = {
        "format": "repro/solar-trace",
        "version": _FORMAT_VERSION,
        "dt_s": trace.dt_s,
        "day_classes": [d.value for d in trace.day_classes],
        "power_w": [round(float(p), 3) for p in trace.power_w],
    }
    Path(path).write_text(json.dumps(payload))


def load_solar_trace(path: PathLike) -> SolarTrace:
    """Read a solar trace written by :func:`save_solar_trace`."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise TraceError(f"cannot read solar trace from {path}: {exc}") from exc
    if payload.get("format") != "repro/solar-trace":
        raise TraceError(f"{path} is not a solar-trace file")
    try:
        return SolarTrace(
            dt_s=float(payload["dt_s"]),
            power_w=np.asarray(payload["power_w"], dtype=float),
            day_classes=tuple(DayClass(v) for v in payload["day_classes"]),
        )
    except (KeyError, ValueError) as exc:
        raise TraceError(f"malformed solar trace in {path}: {exc}") from exc


def export_power_table(table: PowerTable, path: PathLike) -> int:
    """Write a power table's sensor logs to CSV; returns rows written."""
    rows = 0
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["battery", "time_s", "current_a", "voltage_v", "temperature_c", "soc"]
        )
        for name in table.batteries():
            for entry in table.history(name):
                writer.writerow(
                    [
                        name,
                        f"{entry.time_s:.1f}",
                        f"{entry.current_a:.4f}",
                        f"{entry.voltage_v:.4f}",
                        f"{entry.temperature_c:.3f}",
                        f"{entry.soc:.5f}",
                    ]
                )
                rows += 1
    return rows


def result_summary(result: SimResult) -> dict:
    """A JSON-serialisable summary of one run."""
    return {
        "policy": result.policy_name,
        "duration_s": result.duration_s,
        "throughput": result.throughput,
        "throughput_per_day": result.throughput_per_day(),
        "migrations": result.migrations,
        "dvfs_transitions": result.dvfs_transitions,
        "downtime_s": result.total_downtime_s,
        "unserved_wh": result.unserved_wh,
        "feedback_wh": result.feedback_wh,
        "worst_fade_per_day": result.worst_damage_per_day(),
        "mean_fade_per_day": result.mean_damage_per_day(),
        "nodes": [
            {
                "name": n.name,
                "fade_added": n.fade_added,
                "discharged_ah": n.discharged_ah,
                "charged_ah": n.charged_ah,
                "downtime_s": n.downtime_s,
                "low_soc_time_s": n.low_soc_time_s,
                "final_soc": n.final_soc,
                "metrics": n.metrics.as_dict(),
            }
            for n in result.nodes
        ],
    }


def save_result(result: SimResult, path: PathLike) -> None:
    """Write a run summary to a JSON file."""
    Path(path).write_text(json.dumps(result_summary(result), indent=2))
