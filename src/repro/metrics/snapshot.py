"""The five aging metrics as a value object.

:class:`AgingMetrics` computes NAT, CF, PC, DDT, and DR from a
:class:`~repro.metrics.accumulator.MetricsAccumulator` window, following
the paper's Eqs. 1-5 exactly. It is immutable so that policy code can
compare, rank, and log metric snapshots freely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError
from repro.metrics.accumulator import PC_WEIGHTS, SOC_REGIONS, MetricsAccumulator
from repro.units import SECONDS_PER_HOUR


@dataclass(frozen=True)
class AgingMetrics:
    """One window's aging metrics for one battery.

    Attributes
    ----------
    nat:
        Normalized Ah Throughput (Eq. 1) — discharged Ah over the nominal
        life-long dischargeable charge ``CAP_nom``. A new battery's whole
        life spans NAT 0 -> ~1.
    cf:
        Charge Factor (Eq. 2) — charged Ah over discharged Ah within the
        window. ``inf`` when the window saw charging but no discharging;
        1.0 for a window with neither (a resting battery is neutral).
    pc:
        Partial Cycling (Eqs. 3-4) — region-weighted Ah-output share.
        Ranges 0.25 (all output in region A) to 1.0 (all in region D);
        0 when the window had no discharge. Higher = more damaging.
    ddt:
        Deep Discharge Time (Eq. 5) — fraction of the window spent below
        40 % SoC, in [0, 1].
    dr_mean / dr_peak:
        Mean and peak discharge rate normalised to the reference (20-h)
        current.
    dr_low_soc_exposure:
        Fraction of the window spent discharging above the reference rate
        while below 40 % SoC — the dangerous DR condition.
    region_shares:
        ``PC_X`` of Eq. 3 per region label, summing to 1 when discharge
        occurred.
    """

    nat: float
    cf: float
    pc: float
    ddt: float
    dr_mean: float
    dr_peak: float
    dr_low_soc_exposure: float
    region_shares: Dict[str, float]
    discharged_ah: float
    charged_ah: float
    window_s: float

    @classmethod
    def from_accumulator(
        cls,
        acc: MetricsAccumulator,
        lifetime_ah_throughput: float,
        reference_current: float,
    ) -> "AgingMetrics":
        """Compute the metrics for an accumulator window.

        Parameters
        ----------
        lifetime_ah_throughput:
            ``CAP_nom`` of Eq. 1 — the nominal life-long Ah output.
        reference_current:
            Nominal discharge current for rate normalisation.
        """
        if lifetime_ah_throughput <= 0:
            raise ConfigurationError("lifetime_ah_throughput must be positive")
        if reference_current <= 0:
            raise ConfigurationError("reference_current must be positive")

        nat = acc.discharged_ah / lifetime_ah_throughput

        if acc.discharged_ah > 1e-12:
            cf = acc.charged_ah / acc.discharged_ah
        elif acc.charged_ah > 1e-12:
            cf = math.inf
        else:
            cf = 1.0

        if acc.discharged_ah > 1e-12:
            shares = {
                k: acc.region_discharged_ah[k] / acc.discharged_ah for k in SOC_REGIONS
            }
            pc = sum(shares[k] * PC_WEIGHTS[k] for k in SOC_REGIONS) / 4.0
        else:
            shares = {k: 0.0 for k in SOC_REGIONS}
            pc = 0.0

        ddt = (
            acc.deep_discharge_time_s / acc.total_time_s if acc.total_time_s > 0 else 0.0
        )

        if acc.discharge_time_s > 0:
            mean_current = acc.discharge_current_time_as / acc.discharge_time_s
        else:
            mean_current = 0.0
        dr_mean = mean_current / reference_current
        dr_peak = acc.peak_discharge_current_a / reference_current
        dr_exposure = (
            acc.high_rate_low_soc_time_s / acc.total_time_s if acc.total_time_s > 0 else 0.0
        )

        return cls(
            nat=nat,
            cf=cf,
            pc=pc,
            ddt=ddt,
            dr_mean=dr_mean,
            dr_peak=dr_peak,
            dr_low_soc_exposure=dr_exposure,
            region_shares=shares,
            discharged_ah=acc.discharged_ah,
            charged_ah=acc.charged_ah,
            window_s=acc.total_time_s,
        )

    @property
    def cf_deficit(self) -> float:
        """How far the charge factor falls below the healthy band.

        0 when CF >= 1 (every discharged Ah returned); approaches 1 as CF
        approaches 0. This is the "badness" orientation of CF used in the
        weighted aging score: a *low* CF signals sulphation/stratification
        risk (section III-B).
        """
        if math.isinf(self.cf) or self.cf >= 1.0:
            return 0.0
        return 1.0 - max(0.0, self.cf)

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict form for logging and table rendering."""
        return {
            "nat": self.nat,
            "cf": self.cf,
            "pc": self.pc,
            "ddt": self.ddt,
            "dr_mean": self.dr_mean,
            "dr_peak": self.dr_peak,
            "dr_low_soc_exposure": self.dr_low_soc_exposure,
            "discharged_ah": self.discharged_ah,
            "charged_ah": self.charged_ah,
            "window_s": self.window_s,
        }
