"""Raw accumulators underlying the five aging metrics.

:class:`MetricsAccumulator` holds nothing but integrals — discharged and
charged ampere-hours (total and per SoC region), time totals, and rate
statistics — so that snapshots can be subtracted to obtain metrics over
any window (a day, a weather episode, a whole deployment). All five paper
metrics are pure functions of these integrals, computed in
:mod:`repro.metrics.snapshot`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.units import SECONDS_PER_HOUR

#: The paper's four SoC ranges (Eq. 3): A (100-80 %), B (79-60 %),
#: C (59-40 %), D (39-0 %), keyed by label with (low, high] bounds.
SOC_REGIONS: Dict[str, Tuple[float, float]] = {
    "A": (0.80, 1.001),
    "B": (0.60, 0.80),
    "C": (0.40, 0.60),
    "D": (0.00, 0.40),
}

#: Eq. 4 linear weighting factors: cycling at low SoC damages more.
PC_WEIGHTS: Dict[str, float] = {"A": 1.0, "B": 2.0, "C": 3.0, "D": 4.0}

#: Eq. 5 deep-discharge threshold (H(39 % - SoC)).
DEEP_DISCHARGE_SOC = 0.40


def soc_region(soc: float) -> str:
    """Map an SoC fraction to its paper region label (A-D)."""
    if soc >= 0.80:
        return "A"
    if soc >= 0.60:
        return "B"
    if soc >= 0.40:
        return "C"
    return "D"


@dataclass
class MetricsAccumulator:
    """Additive integrals from a battery's sensor stream.

    All charge quantities are in ampere-hours, times in seconds. The
    object is a value type: ``a - b`` yields the integrals accumulated
    between snapshot ``b`` and snapshot ``a``.
    """

    discharged_ah: float = 0.0
    charged_ah: float = 0.0
    region_discharged_ah: Dict[str, float] = field(
        default_factory=lambda: {k: 0.0 for k in SOC_REGIONS}
    )
    total_time_s: float = 0.0
    deep_discharge_time_s: float = 0.0
    discharge_time_s: float = 0.0
    #: Integral of discharge current over discharge time (for the mean rate).
    discharge_current_time_as: float = 0.0
    peak_discharge_current_a: float = 0.0
    #: Time spent discharging above the reference rate while below 40 % SoC
    #: — the specifically dangerous DR condition (section III-E).
    high_rate_low_soc_time_s: float = 0.0

    def observe(self, soc: float, current: float, dt: float, reference_current: float) -> None:
        """Fold one sensor sample into the integrals.

        Parameters
        ----------
        soc:
            State of charge at the sample, in [0, 1].
        current:
            Signed terminal current (positive = discharge), amperes.
        dt:
            Sample duration in seconds.
        reference_current:
            The battery's nominal rate, for the high-rate classification.
        """
        if dt < 0:
            raise ConfigurationError("dt must be non-negative")
        self.total_time_s += dt
        if soc < DEEP_DISCHARGE_SOC:
            self.deep_discharge_time_s += dt
        if current > 0.0:
            ah = current * dt / SECONDS_PER_HOUR
            self.discharged_ah += ah
            self.region_discharged_ah[soc_region(soc)] += ah
            self.discharge_time_s += dt
            self.discharge_current_time_as += current * dt
            if current > self.peak_discharge_current_a:
                self.peak_discharge_current_a = current
            if soc < DEEP_DISCHARGE_SOC and current > reference_current:
                self.high_rate_low_soc_time_s += dt
        elif current < 0.0:
            self.charged_ah += -current * dt / SECONDS_PER_HOUR

    def copy(self) -> "MetricsAccumulator":
        """Independent snapshot of the integrals."""
        snap = MetricsAccumulator(
            discharged_ah=self.discharged_ah,
            charged_ah=self.charged_ah,
            region_discharged_ah=dict(self.region_discharged_ah),
            total_time_s=self.total_time_s,
            deep_discharge_time_s=self.deep_discharge_time_s,
            discharge_time_s=self.discharge_time_s,
            discharge_current_time_as=self.discharge_current_time_as,
            peak_discharge_current_a=self.peak_discharge_current_a,
            high_rate_low_soc_time_s=self.high_rate_low_soc_time_s,
        )
        return snap

    def __sub__(self, other: "MetricsAccumulator") -> "MetricsAccumulator":
        """Integrals accumulated since ``other`` was snapshotted.

        The peak rate is not subtractive; the later snapshot's peak is kept
        (an upper bound for the window).
        """
        return MetricsAccumulator(
            discharged_ah=self.discharged_ah - other.discharged_ah,
            charged_ah=self.charged_ah - other.charged_ah,
            region_discharged_ah={
                k: self.region_discharged_ah[k] - other.region_discharged_ah[k]
                for k in SOC_REGIONS
            },
            total_time_s=self.total_time_s - other.total_time_s,
            deep_discharge_time_s=self.deep_discharge_time_s - other.deep_discharge_time_s,
            discharge_time_s=self.discharge_time_s - other.discharge_time_s,
            discharge_current_time_as=(
                self.discharge_current_time_as - other.discharge_current_time_as
            ),
            peak_discharge_current_a=self.peak_discharge_current_a,
            high_rate_low_soc_time_s=(
                self.high_rate_low_soc_time_s - other.high_rate_low_soc_time_s
            ),
        )
