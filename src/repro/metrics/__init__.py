"""Battery aging metrics (paper section III).

Five metrics computable from runtime sensor logs quantify how operating
conditions drive aging:

- **NAT** — Normalized Ah Throughput (Eq. 1): cumulative discharged charge
  over the battery's nominal life-long dischargeable charge;
- **CF** — Charge Factor (Eq. 2): cumulative charge-in over charge-out;
  healthy partial cycling sits near 1-1.3;
- **PC** — Partial Cycling (Eqs. 3-4): SoC-region-weighted share of the
  Ah output; higher = more charge drawn at damaging low SoC;
- **DDT** — Deep Discharge Time (Eq. 5): fraction of wall-clock time spent
  below 40 % SoC;
- **DR** — Discharge Rate: mean/peak rate statistics plus the dangerous
  high-rate-at-low-SoC exposure.

:class:`~repro.metrics.tracker.MetricsTracker` accumulates these online
from ``(soc, current, dt)`` observations — exactly the Table-2 sensor
variables. :mod:`~repro.metrics.weighted` implements the Eq.-6 weighted
aging score with Table-3 weight selection.
"""

from repro.metrics.accumulator import MetricsAccumulator, SOC_REGIONS, soc_region
from repro.metrics.snapshot import AgingMetrics
from repro.metrics.tracker import MetricsTracker
from repro.metrics.weighted import (
    DemandClass,
    MetricWeights,
    classify_demand,
    weights_for_demand,
    weighted_aging_score,
    node_aging_score,
)

__all__ = [
    "MetricsAccumulator",
    "SOC_REGIONS",
    "soc_region",
    "AgingMetrics",
    "MetricsTracker",
    "DemandClass",
    "MetricWeights",
    "classify_demand",
    "weights_for_demand",
    "weighted_aging_score",
    "node_aging_score",
]
