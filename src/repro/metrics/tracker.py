"""Online metric tracking for one battery node.

:class:`MetricsTracker` is the BAAT controller's view of one battery: it
folds each sensor sample (Table 2: current, voltage-derived SoC, time)
into a lifetime accumulator, supports *marks* so metrics can be computed
over arbitrary windows ("this day", "since the last scheduling decision"),
and exposes both lifetime and windowed :class:`~repro.metrics.snapshot.
AgingMetrics`.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.battery.params import BatteryParams
from repro.errors import ConfigurationError
from repro.metrics.accumulator import MetricsAccumulator
from repro.metrics.snapshot import AgingMetrics


class MetricsTracker:
    """Accumulates aging metrics for one battery from sensor samples."""

    def __init__(self, params: BatteryParams, name: str = "battery"):
        self.params = params
        self.name = name
        self.acc = MetricsAccumulator()
        self._marks: Dict[str, MetricsAccumulator] = {}
        #: Bumped every time any mark moves. Array-based readers (the
        #: fleet fast path) key their cached mark snapshots on this so a
        #: re-mark invalidates them without scanning accumulators.
        self.mark_version = 0

    def observe(self, soc: float, current: float, dt: float) -> None:
        """Fold one sample: SoC in [0, 1], signed current (A, + = out),
        duration in seconds."""
        self.acc.observe(soc, current, dt, self.params.reference_current)

    # ------------------------------------------------------------------
    # Marks and windows
    # ------------------------------------------------------------------
    def mark(self, label: str) -> None:
        """Record the current accumulator under ``label`` for later
        windowed queries."""
        self._marks[label] = self.acc.copy()
        self.mark_version += 1

    def has_mark(self, label: str) -> bool:
        """True if ``label`` was previously marked."""
        return label in self._marks

    def mark_acc(self, label: str) -> MetricsAccumulator:
        """The frozen accumulator snapshot behind ``label``.

        Exposed (read-only by convention) so array-based metric readers
        can compute windows as ``live array - mark array`` without going
        through per-node :class:`AgingMetrics` construction.
        """
        if label not in self._marks:
            raise ConfigurationError(f"no mark named {label!r}")
        return self._marks[label]

    def since(self, label: str) -> AgingMetrics:
        """Metrics over the window from ``mark(label)`` to now."""
        if label not in self._marks:
            raise ConfigurationError(f"no mark named {label!r}")
        window = self.acc - self._marks[label]
        return self._metrics(window)

    def lifetime(self) -> AgingMetrics:
        """Metrics over the battery's entire observed history."""
        return self._metrics(self.acc)

    def window_between(self, start: str, end: str) -> AgingMetrics:
        """Metrics between two previously recorded marks."""
        for label in (start, end):
            if label not in self._marks:
                raise ConfigurationError(f"no mark named {label!r}")
        window = self._marks[end] - self._marks[start]
        return self._metrics(window)

    # ------------------------------------------------------------------
    def _metrics(self, acc: MetricsAccumulator) -> AgingMetrics:
        return AgingMetrics.from_accumulator(
            acc,
            lifetime_ah_throughput=self.params.lifetime_ah_throughput,
            reference_current=self.params.reference_current,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        m = self.lifetime()
        return (
            f"MetricsTracker({self.name!r}, nat={m.nat:.3f}, cf={m.cf:.2f}, "
            f"pc={m.pc:.2f}, ddt={m.ddt:.2f})"
        )
