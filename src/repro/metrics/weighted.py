"""Weighted aging score (Eq. 6) and Table-3 weight selection.

BAAT's hiding scheduler ranks battery nodes by a weighted combination of
three metrics::

    Weighted_aging = a * dCF + b * dPC + c * dNAT        (Eq. 6)

where the weighting factors ``a, b, c`` are picked from the workload's
power/energy demand class (Table 3): each metric's sensitivity to the
demand is classified High / Medium / Low, mapped to 50 % / 30 % / 20 %.

Orientation note
----------------
The paper states "a large value of the weighted aging indicates the fast
aging pace" while also noting that a *low* CF and a *low* PC-region
residence signal damage in its Fig. 12 discussion (an internal tension with
Eq. 4, where low-SoC cycling *raises* PC). We resolve it by feeding Eq. 6
with *badness-oriented* terms so the stated property holds uniformly:

- ``dNAT`` — normalized throughput consumed (more = worse);
- ``dPC``  — the Eq. 3-4 partial-cycling value (higher = more low-SoC
  output = worse, per section III-C);
- ``dCF``  — the charge-factor *deficit* ``max(0, 1 - CF)`` (further below
  the healthy >= 1 band = worse, per section III-B).

This keeps every term monotone in damage, so ranking by the score places
new load on the genuinely slowest-aging node.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.metrics.snapshot import AgingMetrics

#: Table-3 impact levels mapped to weighting factors (paper: 50/30/20 %).
WEIGHT_HIGH = 0.50
WEIGHT_MEDIUM = 0.30
WEIGHT_LOW = 0.20

#: Power demand is "Large" when load exceeds this fraction of peak power.
LARGE_POWER_FRACTION = 0.50


class DemandClass(enum.Enum):
    """The four power x energy demand quadrants of Table 3."""

    LARGE_LESS = "large_power_less_energy"
    LARGE_MORE = "large_power_more_energy"
    SMALL_MORE = "small_power_more_energy"
    SMALL_LESS = "small_power_less_energy"


@dataclass(frozen=True)
class MetricWeights:
    """Eq.-6 weighting factors ``(a, b, c)`` for (CF, PC, NAT)."""

    cf: float
    pc: float
    nat: float

    def __post_init__(self) -> None:
        for value in (self.cf, self.pc, self.nat):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError("weights must be in [0, 1]")


#: Table 3, transcribed: demand class -> (dNAT, dCF, dPC) impact levels.
_TABLE3 = {
    DemandClass.LARGE_LESS: MetricWeights(cf=WEIGHT_HIGH, pc=WEIGHT_HIGH, nat=WEIGHT_MEDIUM),
    DemandClass.LARGE_MORE: MetricWeights(cf=WEIGHT_HIGH, pc=WEIGHT_HIGH, nat=WEIGHT_HIGH),
    DemandClass.SMALL_MORE: MetricWeights(cf=WEIGHT_LOW, pc=WEIGHT_MEDIUM, nat=WEIGHT_HIGH),
    DemandClass.SMALL_LESS: MetricWeights(cf=WEIGHT_LOW, pc=WEIGHT_LOW, nat=WEIGHT_LOW),
}

#: Neutral weights used when no workload profile is available (the paper's
#: evaluation also weights the three metrics equally in section VI-B).
EQUAL_WEIGHTS = MetricWeights(cf=1.0 / 3.0, pc=1.0 / 3.0, nat=1.0 / 3.0)


def classify_demand(
    mean_power_w: float, peak_power_w: float, energy_wh: float, energy_threshold_wh: float
) -> DemandClass:
    """Classify a workload into its Table-3 quadrant.

    Parameters
    ----------
    mean_power_w:
        The workload's average power draw.
    peak_power_w:
        The server's peak power (the 50 % line is relative to this).
    energy_wh:
        Total energy the workload will consume (power x running length).
    energy_threshold_wh:
        The More/Less energy split point for this deployment.
    """
    if peak_power_w <= 0:
        raise ConfigurationError("peak_power_w must be positive")
    if mean_power_w < 0 or energy_wh < 0:
        raise ConfigurationError("power and energy must be non-negative")
    large = mean_power_w > LARGE_POWER_FRACTION * peak_power_w
    more = energy_wh > energy_threshold_wh
    if large and more:
        return DemandClass.LARGE_MORE
    if large:
        return DemandClass.LARGE_LESS
    if more:
        return DemandClass.SMALL_MORE
    return DemandClass.SMALL_LESS


def weights_for_demand(demand: DemandClass) -> MetricWeights:
    """Table-3 lookup: Eq.-6 weights for a demand class."""
    return _TABLE3[demand]


def weighted_aging_score(
    d_cf_deficit: float, d_pc: float, d_nat: float, weights: MetricWeights
) -> float:
    """Eq. 6 with badness-oriented terms (see module docstring).

    Higher scores mean faster aging. Inputs are expected in comparable
    0-ish..1-ish scales: the CF deficit and PC are already in [0, 1];
    NAT deltas are small fractions, so the caller typically scales them
    (see :func:`node_aging_score`).
    """
    return weights.cf * d_cf_deficit + weights.pc * d_pc + weights.nat * d_nat


#: NAT is a small fraction per window; scale it into the same 0..1-ish band
#: as the CF deficit and PC so no term numerically dominates. A node that
#: burned 2 % of its lifetime throughput in the scoring window saturates.
NAT_SCORE_SCALE = 50.0


def node_aging_score(metrics: AgingMetrics, weights: MetricWeights) -> float:
    """Rank-ready weighted aging score for one battery node's window.

    This is the quantity BAAT ranks across all battery nodes when placing
    or consolidating load (Fig. 8) and when picking a migration target
    (Fig. 9): the node with the *minimum* score is the slowest-aging and
    receives new load.
    """
    nat_term = min(1.0, metrics.nat * NAT_SCORE_SCALE)
    cf_term = metrics.cf_deficit if not math.isinf(metrics.cf) else 0.0
    return weighted_aging_score(cf_term, metrics.pc, nat_term, weights)
