"""Property-based tests for the control layer (hypothesis)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.battery.params import BatteryParams
from repro.battery.unit import BatteryUnit
from repro.core.controller import BAATController
from repro.core.planner import DOD_MAX, DOD_MIN, dod_goal
from repro.core.slowdown import SlowdownConfig, SlowdownMonitor, reserve_seconds
from repro.datacenter.cluster import Cluster
from repro.datacenter.node import Node

PARAMS = BatteryParams()


def monitor_with_soc(soc: float):
    battery = BatteryUnit(PARAMS, initial_soc=soc)
    node = Node.build("n0", battery=battery)
    cluster = Cluster([node])
    controller = BAATController(cluster)
    return node, SlowdownMonitor(cluster, controller, config=SlowdownConfig())


class TestSlowdownProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        soc=st.floats(min_value=0.0, max_value=1.0),
        t=st.floats(min_value=0.0, max_value=86400.0),
    )
    def test_ration_nonnegative_and_bounded(self, soc, t):
        node, monitor = monitor_with_soc(soc)
        ration = monitor._ration_w(node, t)
        assert ration >= 0.0
        assert math.isfinite(ration)

    @settings(max_examples=60, deadline=None)
    @given(soc=st.floats(min_value=0.0, max_value=1.0))
    def test_protected_floor_in_valid_band(self, soc):
        node, monitor = monitor_with_soc(soc)
        floor = monitor.protected_floor(node)
        assert PARAMS.cutoff_soc < floor < 1.0

    @settings(max_examples=60, deadline=None)
    @given(
        soc=st.floats(min_value=0.0, max_value=1.0),
        power=st.floats(min_value=0.0, max_value=2000.0),
    )
    def test_reserve_seconds_nonnegative(self, soc, power):
        battery = BatteryUnit(PARAMS, initial_soc=soc)
        assert reserve_seconds(battery, power) >= 0.0

    @settings(max_examples=40, deadline=None)
    @given(
        soc=st.floats(min_value=0.0, max_value=1.0),
        draw=st.floats(min_value=0.0, max_value=500.0),
    )
    def test_check_never_fires_above_threshold(self, soc, draw):
        node, monitor = monitor_with_soc(soc)
        if soc >= monitor.low_soc_threshold(node):
            assert not monitor.check(node, draw)


class TestPlannerProperties:
    @settings(max_examples=80, deadline=None)
    @given(
        total=st.floats(min_value=100.0, max_value=50_000.0),
        used_frac=st.floats(min_value=0.0, max_value=1.0),
        cycles=st.floats(min_value=1.0, max_value=10_000.0),
        cap=st.floats(min_value=5.0, max_value=200.0),
    )
    def test_dod_goal_always_in_band(self, total, used_frac, cycles, cap):
        goal = dod_goal(total, used_frac * total, cycles, cap)
        assert DOD_MIN <= goal <= DOD_MAX

    @settings(max_examples=60, deadline=None)
    @given(
        total=st.floats(min_value=1000.0, max_value=50_000.0),
        cycles_a=st.floats(min_value=1.0, max_value=5_000.0),
        cycles_b=st.floats(min_value=1.0, max_value=5_000.0),
    )
    def test_dod_goal_antitone_in_cycles(self, total, cycles_a, cycles_b):
        lo, hi = min(cycles_a, cycles_b), max(cycles_a, cycles_b)
        assert dod_goal(total, 0.0, lo, 35.0) >= dod_goal(total, 0.0, hi, 35.0)

    @settings(max_examples=60, deadline=None)
    @given(
        used_a=st.floats(min_value=0.0, max_value=13_000.0),
        used_b=st.floats(min_value=0.0, max_value=13_000.0),
    )
    def test_dod_goal_antitone_in_consumption(self, used_a, used_b):
        lo, hi = min(used_a, used_b), max(used_a, used_b)
        assert dod_goal(13_300.0, lo, 500.0, 35.0) >= dod_goal(
            13_300.0, hi, 500.0, 35.0
        )
