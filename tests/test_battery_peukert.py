"""Unit tests for the Peukert rate-capacity effect."""

import pytest

from repro.battery.params import BatteryParams
from repro.battery.peukert import peukert_capacity, peukert_factor
from repro.errors import ConfigurationError


class TestPeukertFactor:
    def test_unity_at_reference_current(self, params):
        assert peukert_factor(params.reference_current, params) == pytest.approx(1.0)

    def test_unity_below_reference(self, params):
        assert peukert_factor(0.5, params) == 1.0

    def test_grows_above_reference(self, params):
        assert peukert_factor(10.0, params) > 1.0

    def test_monotone_in_current(self, params):
        factors = [peukert_factor(i, params) for i in (2.0, 5.0, 10.0, 20.0, 35.0)]
        assert factors == sorted(factors)

    def test_exact_power_law(self, params):
        i = 3.0 * params.reference_current
        expected = 3.0 ** (params.peukert_exponent - 1.0)
        assert peukert_factor(i, params) == pytest.approx(expected)

    def test_rejects_negative_current(self, params):
        with pytest.raises(ConfigurationError):
            peukert_factor(-1.0, params)

    def test_k_equals_one_disables_effect(self):
        ideal = BatteryParams(peukert_exponent=1.0)
        assert peukert_factor(35.0, ideal) == pytest.approx(1.0)


class TestPeukertCapacity:
    def test_nominal_at_reference_rate(self, params):
        assert peukert_capacity(params.reference_current, params) == pytest.approx(
            params.capacity_ah
        )

    def test_high_rate_shrinks_capacity(self, params):
        """A 1C discharge of a typical VRLA yields well under nominal."""
        c = peukert_capacity(35.0, params)
        assert 0.5 * params.capacity_ah < c < 0.75 * params.capacity_ah

    def test_capacity_times_factor_is_nominal(self, params):
        i = 12.0
        assert peukert_capacity(i, params) * peukert_factor(i, params) == pytest.approx(
            params.capacity_ah
        )
