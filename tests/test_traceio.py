"""Unit tests for trace and result persistence."""

import json

import numpy as np
import pytest

from repro.core.controller import BAATController
from repro.core.policies.factory import make_policy
from repro.datacenter.cluster import Cluster
from repro.datacenter.node import Node
from repro.errors import TraceError
from repro.sim.engine import run_policy_on_trace
from repro.sim.traceio import (
    export_power_table,
    load_solar_trace,
    result_summary,
    save_result,
    save_solar_trace,
)
from repro.solar.weather import DayClass


class TestSolarTraceRoundTrip:
    def test_round_trip_preserves_trace(self, tiny_scenario, tmp_path):
        trace = tiny_scenario.trace_generator().day(DayClass.CLOUDY)
        path = tmp_path / "day.json"
        save_solar_trace(trace, path)
        loaded = load_solar_trace(path)
        assert loaded.dt_s == trace.dt_s
        assert loaded.day_classes == trace.day_classes
        assert np.allclose(loaded.power_w, trace.power_w, atol=0.01)

    def test_replay_gives_identical_results(self, tiny_scenario, tmp_path):
        """A saved day replayed through a policy reproduces the original
        run — the paper's matched-log methodology."""
        trace = tiny_scenario.trace_generator().day(DayClass.CLOUDY)
        path = tmp_path / "day.json"
        save_solar_trace(trace, path)
        replay = load_solar_trace(path)
        a = run_policy_on_trace(tiny_scenario, make_policy("e-buff"), trace)
        b = run_policy_on_trace(tiny_scenario, make_policy("e-buff"), replay)
        assert b.throughput == pytest.approx(a.throughput, rel=1e-4)

    def test_rejects_non_trace_file(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(TraceError):
            load_solar_trace(path)

    def test_rejects_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_solar_trace(tmp_path / "absent.json")

    def test_rejects_malformed_payload(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "repro/solar-trace", "version": 1}))
        with pytest.raises(TraceError):
            load_solar_trace(path)


class TestPowerTableExport:
    def test_csv_rows_match_entries(self, tmp_path):
        cluster = Cluster([Node.build(f"n{i}") for i in range(2)])
        controller = BAATController(cluster)
        for _ in range(3):
            for node in cluster:
                node.battery.discharge(50.0, 60.0)
            controller.log_sensors()
        path = tmp_path / "table.csv"
        rows = export_power_table(controller.power_table, path)
        assert rows == 6
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("battery,")
        assert len(lines) == 7


class TestResultSummary:
    def test_summary_fields(self, tiny_scenario, one_cloudy_day, tmp_path):
        result = run_policy_on_trace(
            tiny_scenario, make_policy("baat"), one_cloudy_day
        )
        summary = result_summary(result)
        assert summary["policy"] == "baat"
        assert summary["throughput"] > 0
        assert len(summary["nodes"]) == 3
        assert "nat" in summary["nodes"][0]["metrics"]

    def test_save_result_is_valid_json(self, tiny_scenario, one_cloudy_day, tmp_path):
        result = run_policy_on_trace(
            tiny_scenario, make_policy("e-buff"), one_cloudy_day
        )
        path = tmp_path / "result.json"
        save_result(result, path)
        loaded = json.loads(path.read_text())
        assert loaded["policy"] == "e-buff"
