"""Tests for the campaign service: protocol, dedupe, daemon integration."""

import asyncio
import json
import subprocess
import sys
import threading
from types import SimpleNamespace

import pytest

from repro.campaign import ResultCache
from repro.errors import ConfigurationError
from repro.obs.events import TraceEvent, event_from_dict
from repro.service import (
    CampaignService,
    ServiceClient,
    build_specs,
    decode_line,
    encode_line,
    parse_request,
    wait_for_socket,
)

#: Fast real campaign: two ~0.25 s cells on the default 6-node scenario.
CAMPAIGN = {"policies": "e-buff,baat", "days": 1, "dt": 300.0}


class TestProtocol:
    def test_encode_decode_roundtrip(self):
        line = encode_line({"op": "ping"})
        assert line.endswith(b"\n")
        assert decode_line(line) == {"op": "ping"}

    def test_decode_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            decode_line(b"not json\n")
        with pytest.raises(ConfigurationError):
            decode_line(b"[1,2,3]\n")

    def test_parse_request_validates_op(self):
        assert parse_request(b'{"op":"status"}\n')["op"] == "status"
        with pytest.raises(ConfigurationError):
            parse_request(b'{"op":"reboot"}\n')
        with pytest.raises(ConfigurationError):
            parse_request(b'{"op":"submit"}\n')  # missing campaign object
        with pytest.raises(ConfigurationError):
            parse_request(b'{"op":"submit","campaign":[]}\n')

    def test_encode_accepts_trace_events(self):
        from repro.obs.events import CellStartEvent

        data = decode_line(
            encode_line(CellStartEvent(t=1.0, eid=2, label="x"))
        )
        assert data["kind"] == "cell_start" and data["label"] == "x"


class TestBuildSpecs:
    def test_defaults_produce_the_table4_sweep(self):
        specs = build_specs(None)
        from repro.core.policies.factory import POLICY_NAMES

        assert [s.policy for s in specs] == list(POLICY_NAMES)
        scenario = specs[0].scenario
        assert scenario.n_nodes == 6
        assert scenario.dt_s == 120.0

    def test_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="polices"):
            build_specs({"polices": "baat"})

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            build_specs({"days": 0})
        with pytest.raises(ConfigurationError):
            build_specs({"days": "many"})
        with pytest.raises(ConfigurationError):
            build_specs({"day_mix": "drizzle"})
        with pytest.raises(ConfigurationError):
            build_specs({"stepper": "warp"})
        with pytest.raises(ConfigurationError):
            build_specs({"policies": []})

    def test_policies_accept_string_or_list(self):
        a = build_specs({**CAMPAIGN, "policies": "e-buff,baat"})
        b = build_specs({**CAMPAIGN, "policies": ["e-buff", "baat"]})
        assert [s.policy for s in a] == [s.policy for s in b]

    def test_identical_submissions_share_cache_keys(self):
        """The whole service premise: same campaign dict, same keys."""
        first = [s.cache_key() for s in build_specs(dict(CAMPAIGN))]
        second = [s.cache_key() for s in build_specs(dict(CAMPAIGN))]
        assert first == second
        assert all(k is not None for k in first)
        shifted = [
            s.cache_key() for s in build_specs({**CAMPAIGN, "seed": 999})
        ]
        assert set(first).isdisjoint(shifted)


def _stub_result(policy="e-buff"):
    """Quacks like a SimResult as far as result_summary is concerned."""
    return SimpleNamespace(
        policy_name=policy,
        duration_s=86400.0,
        throughput=1.0,
        nodes=(),
        total_downtime_s=0.0,
        migrations=0,
        dvfs_transitions=0,
        unserved_wh=0.0,
        feedback_wh=0.0,
    )


def _collector():
    lines = []

    async def emit(obj):
        lines.append(obj.to_dict() if isinstance(obj, TraceEvent) else obj)

    return lines, emit


class TestInflightDedupe:
    """Deterministic dedupe semantics, no processes involved."""

    def test_follower_joins_holder_and_shares_the_result(self, tmp_path):
        async def scenario():
            service = CampaignService(
                cache=ResultCache(tmp_path / "c"), n_workers=1
            )
            spec = build_specs({"policies": "e-buff", "dt": 300.0})[0]
            release = asyncio.Event()

            async def fake_execute(s):
                await release.wait()
                return _stub_result(), 1, ()

            service._execute = fake_execute
            lines_a, emit_a = _collector()
            lines_b, emit_b = _collector()
            task_a = asyncio.ensure_future(service.run_cell(spec, emit_a))
            await asyncio.sleep(0)  # a registers as the in-flight holder
            task_b = asyncio.ensure_future(service.run_cell(spec, emit_b))
            await asyncio.sleep(0)
            release.set()
            return service, spec, await task_a, await task_b, lines_a, lines_b

        service, spec, ra, rb, lines_a, lines_b = asyncio.run(scenario())
        assert ra["source"] == "executed" and ra["ok"]
        assert rb["source"] == "dedupe" and rb["ok"]
        assert rb["summary"] == ra["summary"]
        assert [l["kind"] for l in lines_a] == [
            "cell_start",
            "cell_finish",
            "cell_result",
        ]
        assert [l["kind"] for l in lines_b] == ["cell_dedupe", "cell_result"]
        assert service.stats["executed"] == 1
        assert service.stats["dedupe_hits"] == 1
        assert service.stats["cells"] == 2
        assert not service._inflight
        # The holder memoized: the shared cache now serves the key.
        assert service.cache.get(spec.cache_key()) is not None

    def test_follower_takes_over_when_holder_is_cancelled(self, tmp_path):
        async def scenario():
            service = CampaignService(
                cache=ResultCache(tmp_path / "c"), n_workers=1
            )
            spec = build_specs({"policies": "e-buff", "dt": 300.0})[0]
            release = asyncio.Event()

            async def fake_execute(s):
                await release.wait()
                return _stub_result(), 1, ()

            service._execute = fake_execute
            _, emit_a = _collector()
            lines_b, emit_b = _collector()
            task_a = asyncio.ensure_future(service.run_cell(spec, emit_a))
            await asyncio.sleep(0)
            task_b = asyncio.ensure_future(service.run_cell(spec, emit_b))
            await asyncio.sleep(0)
            task_a.cancel()  # holder's client vanished mid-run
            await asyncio.sleep(0)
            release.set()
            rb = await task_b
            return service, rb, lines_b

        service, rb, lines_b = asyncio.run(scenario())
        # b joined a's execution, saw the cancellation, then re-ran the
        # cell as the new holder instead of failing.
        assert rb["ok"] and rb["source"] == "executed"
        kinds = [l["kind"] for l in lines_b]
        assert kinds[0] == "cell_dedupe" and "cell_start" in kinds
        assert service.stats["executed"] == 1
        assert not service._inflight


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    """One real ``repro serve`` subprocess shared by integration tests."""
    tmp = tmp_path_factory.mktemp("service")
    socket_path = str(tmp / "serve.sock")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--socket",
            socket_path,
            "--cache-dir",
            str(tmp / "cache"),
            "--workers",
            "2",
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        wait_for_socket(socket_path, timeout_s=30.0)
        yield socket_path
    finally:
        try:
            with ServiceClient(socket_path=socket_path, timeout_s=10) as c:
                ack = c.shutdown()
            assert ack.get("kind") == "service_ack"
            assert proc.wait(timeout=10) == 0  # clean shutdown, not a crash
        except Exception:
            proc.kill()
            proc.wait(timeout=10)


class TestDaemonIntegration:
    def test_ping_and_status(self, daemon):
        with ServiceClient(socket_path=daemon, timeout_s=30) as client:
            pong = client.ping()
            assert pong["kind"] == "service_pong" and pong["pid"] > 0
            status = client.status()
            assert status["kind"] == "service_status"
            assert status["n_workers"] == 2
            assert status["cache"]["backend"] == "dir"

    def test_bad_submission_streams_service_error(self, daemon):
        with ServiceClient(socket_path=daemon, timeout_s=30) as client:
            lines = list(client.submit({"polices": "baat"}))
            assert lines[-1]["kind"] == "service_error"
            assert "polices" in lines[-1]["error"]
            # The connection survives a rejected submission.
            assert client.ping()["kind"] == "service_pong"

    def test_two_clients_share_one_execution(self, daemon):
        """The acceptance scenario: two clients, same campaign, one
        simulation per unique cell, streams that parse cleanly."""
        campaign = {**CAMPAIGN, "seed": 424242}
        n_unique = len({s.cache_key() for s in build_specs(campaign)})
        barrier = threading.Barrier(2)
        streams = [None, None]

        def submit(slot):
            with ServiceClient(socket_path=daemon, timeout_s=300) as client:
                barrier.wait(timeout=30)
                streams[slot] = list(client.submit(campaign))

        threads = [
            threading.Thread(target=submit, args=(i,)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        assert all(s is not None for s in streams)

        dones = [s[-1] for s in streams]
        assert all(d["kind"] == "service_done" for d in dones)
        for stream, done in zip(streams, dones):
            results = [l for l in stream if l.get("kind") == "cell_result"]
            assert len(results) == done["n_cells"] == n_unique
            assert all(r["ok"] for r in results)
            assert done["failed"] == 0
            assert (
                done["executed"] + done["cached"] + done["deduped"]
                == done["n_cells"]
            )
            assert stream[0]["kind"] == "service_ack"
        # Exactly one execution per unique cell across BOTH clients;
        # every other submission was deduped or cache-served.
        assert sum(d["executed"] for d in dones) == n_unique
        assert sum(d["deduped"] + d["cached"] for d in dones) == n_unique

        with ServiceClient(socket_path=daemon, timeout_s=30) as client:
            stats = client.status()["stats"]
        assert stats["failed"] == 0
        assert stats["pool_rebuilds"] == 0

    def test_streamed_trace_events_replay_through_obs(self, daemon, tmp_path):
        """A captured stream is a valid trace file: known kinds parse
        via event_from_dict, service envelopes skip via strict=False."""
        from repro.obs import iter_events

        campaign = {**CAMPAIGN, "seed": 77}
        with ServiceClient(socket_path=daemon, timeout_s=300) as client:
            lines = list(client.submit(campaign))

        service_kinds = {
            "service_ack",
            "service_done",
            "service_error",
            "cell_result",
        }
        parsed = [
            event_from_dict(l)
            for l in lines
            if l.get("kind") not in service_kinds
        ]
        kinds = [e.kind for e in parsed]
        assert kinds[0] == "campaign_start"
        assert kinds[-1] == "campaign_finish"
        assert kinds.count("cell_finish") + kinds.count(
            "cell_cache_hit"
        ) + kinds.count("cell_dedupe") >= 2

        trace_path = tmp_path / "stream.jsonl"
        with open(trace_path, "w", encoding="utf-8") as fh:
            for line in lines:
                fh.write(json.dumps(line) + "\n")
        replayed = list(iter_events(str(trace_path), strict=False))
        assert [e.kind for e in replayed] == kinds

    def test_resubmission_is_served_from_cache(self, daemon):
        campaign = {**CAMPAIGN, "seed": 31337}
        with ServiceClient(socket_path=daemon, timeout_s=300) as client:
            first = client.submit_wait(campaign)
            second = client.submit_wait(campaign)
        assert first["executed"] + first["cached"] + first["deduped"] == 2
        assert second["cached"] == 2 and second["executed"] == 0
        assert second["wall_s"] < first["wall_s"]
