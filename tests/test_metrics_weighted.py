"""Unit tests for the Eq.-6 weighted aging score and Table-3 weights."""

import pytest

from repro.errors import ConfigurationError
from repro.metrics.accumulator import MetricsAccumulator
from repro.metrics.snapshot import AgingMetrics
from repro.metrics.weighted import (
    EQUAL_WEIGHTS,
    WEIGHT_HIGH,
    WEIGHT_LOW,
    WEIGHT_MEDIUM,
    DemandClass,
    MetricWeights,
    classify_demand,
    node_aging_score,
    weighted_aging_score,
    weights_for_demand,
)
from repro.units import hours


class TestClassification:
    def test_large_more(self):
        d = classify_demand(120.0, 150.0, 2000.0, energy_threshold_wh=1000.0)
        assert d is DemandClass.LARGE_MORE

    def test_large_less(self):
        d = classify_demand(120.0, 150.0, 500.0, energy_threshold_wh=1000.0)
        assert d is DemandClass.LARGE_LESS

    def test_small_more(self):
        d = classify_demand(50.0, 150.0, 2000.0, energy_threshold_wh=1000.0)
        assert d is DemandClass.SMALL_MORE

    def test_small_less(self):
        d = classify_demand(50.0, 150.0, 500.0, energy_threshold_wh=1000.0)
        assert d is DemandClass.SMALL_LESS

    def test_fifty_percent_line(self):
        """Power is 'Large' strictly above 50 % of peak (paper IV-B)."""
        at_line = classify_demand(75.0, 150.0, 0.0, energy_threshold_wh=1.0)
        assert at_line is DemandClass.SMALL_LESS

    def test_rejects_bad_peak(self):
        with pytest.raises(ConfigurationError):
            classify_demand(50.0, 0.0, 100.0, energy_threshold_wh=1.0)


class TestTable3:
    def test_large_more_is_all_high(self):
        w = weights_for_demand(DemandClass.LARGE_MORE)
        assert (w.cf, w.pc, w.nat) == (WEIGHT_HIGH, WEIGHT_HIGH, WEIGHT_HIGH)

    def test_large_less_nat_is_medium(self):
        w = weights_for_demand(DemandClass.LARGE_LESS)
        assert w.nat == WEIGHT_MEDIUM
        assert w.cf == WEIGHT_HIGH and w.pc == WEIGHT_HIGH

    def test_small_more_row(self):
        w = weights_for_demand(DemandClass.SMALL_MORE)
        assert (w.cf, w.pc, w.nat) == (WEIGHT_LOW, WEIGHT_MEDIUM, WEIGHT_HIGH)

    def test_small_less_is_all_low(self):
        w = weights_for_demand(DemandClass.SMALL_LESS)
        assert (w.cf, w.pc, w.nat) == (WEIGHT_LOW, WEIGHT_LOW, WEIGHT_LOW)

    def test_weight_levels_match_paper(self):
        assert (WEIGHT_HIGH, WEIGHT_MEDIUM, WEIGHT_LOW) == (0.5, 0.3, 0.2)


class TestScore:
    def test_eq6_linear_combination(self):
        w = MetricWeights(cf=0.5, pc=0.3, nat=0.2)
        assert weighted_aging_score(1.0, 1.0, 1.0, w) == pytest.approx(1.0)
        assert weighted_aging_score(0.2, 0.4, 0.6, w) == pytest.approx(
            0.5 * 0.2 + 0.3 * 0.4 + 0.2 * 0.6
        )

    def test_rejects_out_of_range_weights(self):
        with pytest.raises(ConfigurationError):
            MetricWeights(cf=1.5, pc=0.3, nat=0.2)

    def _metrics(self, soc, discharged_h, charged_h):
        acc = MetricsAccumulator()
        acc.observe(soc, 7.0, hours(discharged_h), reference_current=1.75)
        if charged_h:
            acc.observe(soc, -7.0, hours(charged_h), reference_current=1.75)
        return AgingMetrics.from_accumulator(acc, 380.0 * 35.0, 1.75)

    def test_higher_score_means_faster_aging(self):
        """A node cycling deep and undercharged must outscore a healthy
        one — the paper's 'large value indicates the fast aging pace'."""
        healthy = self._metrics(soc=0.9, discharged_h=1.0, charged_h=1.1)
        stressed = self._metrics(soc=0.2, discharged_h=4.0, charged_h=0.5)
        assert node_aging_score(stressed, EQUAL_WEIGHTS) > node_aging_score(
            healthy, EQUAL_WEIGHTS
        )

    def test_idle_node_scores_near_zero(self):
        acc = MetricsAccumulator()
        acc.observe(0.9, 0.0, hours(5), reference_current=1.75)
        idle = AgingMetrics.from_accumulator(acc, 380.0 * 35.0, 1.75)
        assert node_aging_score(idle, EQUAL_WEIGHTS) == pytest.approx(0.0)
