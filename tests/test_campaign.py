"""Tests for the campaign runner: specs, cache, fan-out, retries."""

import functools
import os
import pickle

import pytest

from repro.campaign import (
    CampaignError,
    ResultCache,
    RunSpec,
    run_campaign,
    set_default_workers,
)
from repro.campaign.cache import callable_token, canonical, object_key
from repro.campaign.store import DirStore, SqliteStore, make_store
from repro.core.policies.factory import make_policy
from repro.errors import ConfigurationError
from repro.sim.engine import run_policy_on_trace
from repro.sim.results import SimResult

POLICIES = ("e-buff", "baat")

#: Module-level call counter so the flaky hook survives spec re-execution.
_FLAKY_CALLS = {"n": 0}


def _reset_flaky():
    _FLAKY_CALLS["n"] = 0


def flaky_setup(sim):
    """Fails on its first invocation, succeeds afterwards."""
    _FLAKY_CALLS["n"] += 1
    if _FLAKY_CALLS["n"] == 1:
        raise RuntimeError("transient worker failure")


def broken_setup(sim):
    raise RuntimeError("this cell always breaks")


def kill_worker_setup(sim):
    """Hard-kills the worker process (OOM-killer / segfault stand-in)."""
    os._exit(42)


def _claim(marker):
    """Atomically claim a cross-process one-shot marker file."""
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def kill_worker_once_setup(sim, marker):
    """Kills the worker the first time only; the marker file remembers."""
    if _claim(marker):
        os._exit(42)


def kill_then_raise_setup(sim, kill_marker, raise_marker):
    """First call kills the worker, second raises, third succeeds."""
    if _claim(kill_marker):
        os._exit(42)
    if _claim(raise_marker):
        raise RuntimeError("transient failure after pool death")


@pytest.fixture
def specs(tiny_scenario, one_sunny_day):
    return [
        RunSpec(scenario=tiny_scenario, trace=one_sunny_day, policy=name)
        for name in POLICIES
    ]


class TestRunSpec:
    def test_requires_exactly_one_policy_source(self, tiny_scenario, one_sunny_day):
        with pytest.raises(ConfigurationError):
            RunSpec(scenario=tiny_scenario, trace=one_sunny_day)
        with pytest.raises(ConfigurationError):
            RunSpec(
                scenario=tiny_scenario,
                trace=one_sunny_day,
                policy="baat",
                policy_factory=functools.partial(make_policy, "baat"),
            )

    def test_labels(self, tiny_scenario, one_sunny_day):
        named = RunSpec(scenario=tiny_scenario, trace=one_sunny_day, policy="baat")
        assert named.effective_label == "baat"
        tagged = RunSpec(
            scenario=tiny_scenario, trace=one_sunny_day, policy="baat", label="cell-3"
        )
        assert tagged.effective_label == "cell-3"

    def test_cache_key_is_stable_and_content_sensitive(
        self, tiny_scenario, one_sunny_day
    ):
        from dataclasses import replace

        spec = RunSpec(scenario=tiny_scenario, trace=one_sunny_day, policy="baat")
        again = RunSpec(scenario=tiny_scenario, trace=one_sunny_day, policy="baat")
        assert spec.cache_key() == again.cache_key()

        other_policy = RunSpec(
            scenario=tiny_scenario, trace=one_sunny_day, policy="e-buff"
        )
        other_seed = RunSpec(
            scenario=replace(tiny_scenario, seed=tiny_scenario.seed + 1),
            trace=one_sunny_day,
            policy="baat",
        )
        with_series = RunSpec(
            scenario=tiny_scenario,
            trace=one_sunny_day,
            policy="baat",
            record_series=True,
        )
        keys = {
            spec.cache_key(),
            other_policy.cache_key(),
            other_seed.cache_key(),
            with_series.cache_key(),
        }
        assert len(keys) == 4

    def test_lambda_factory_is_uncacheable(self, tiny_scenario, one_sunny_day):
        spec = RunSpec(
            scenario=tiny_scenario,
            trace=one_sunny_day,
            policy_factory=lambda: make_policy("baat"),
        )
        assert not spec.cacheable
        assert spec.cache_key() is None

    def test_partial_factory_is_cacheable_and_picklable(
        self, tiny_scenario, one_sunny_day
    ):
        spec = RunSpec(
            scenario=tiny_scenario,
            trace=one_sunny_day,
            policy_factory=functools.partial(make_policy, "baat"),
        )
        assert spec.cacheable
        assert pickle.loads(pickle.dumps(spec)).effective_label == spec.effective_label


class TestCanonical:
    def test_callable_token_rejects_closures(self):
        def maker():
            captured = "baat"
            return lambda: make_policy(captured)

        assert callable_token(maker()) is None
        assert callable_token(make_policy) is not None

    def test_object_key_is_hex_and_deterministic(self):
        key = object_key("x", 1, (2.0, "three"))
        assert key == object_key("x", 1, (2.0, "three"))
        assert int(key, 16) >= 0

    def test_canonical_distinguishes_float_and_int(self):
        assert canonical(1) != canonical(1.0)


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = object_key("k")
        assert cache.get(key) is None
        cache.put(key, {"value": 42})
        assert cache.get(key) == {"value": 42}
        assert key in cache
        assert len(cache) == 1
        assert cache.size_bytes() > 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = object_key("corrupt")
        cache.put(key, [1, 2, 3])
        cache._file_for(key).write_bytes(b"not a pickle")
        assert cache.get(key) is None
        assert len(cache) == 0  # the broken file was removed

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        for i in range(3):
            cache.put(object_key("entry", i), i)
        assert cache.clear() == 3
        assert len(cache) == 0


class TestRunCampaign:
    def test_serial_matches_direct_execution(self, tiny_scenario, one_sunny_day, specs):
        report = run_campaign(specs, n_workers=1, cache=None)
        assert report.n_executed == len(specs)
        assert not report.failures
        results = report.results()
        for name in POLICIES:
            direct = run_policy_on_trace(
                tiny_scenario,
                make_policy(name, seed=tiny_scenario.seed),
                one_sunny_day,
            )
            assert results[name] == direct

    def test_parallel_matches_serial(self, specs):
        serial = run_campaign(specs, n_workers=1, cache=None).results()
        parallel = run_campaign(specs, n_workers=2, cache=None).results()
        assert parallel == serial

    def test_cache_hit_skips_resimulation(self, tmp_path, specs):
        cache = ResultCache(tmp_path / "campaign")
        first = run_campaign(specs, n_workers=1, cache=cache)
        assert first.n_executed == len(specs)
        assert first.n_cache_hits == 0

        second = run_campaign(specs, n_workers=1, cache=cache)
        assert second.n_executed == 0
        assert second.n_cache_hits == len(specs)
        assert all(o.from_cache and o.attempts == 0 for o in second.outcomes)
        assert second.results() == first.results()

    def test_flaky_cell_is_retried_to_success(self, tiny_scenario, one_sunny_day):
        _reset_flaky()
        spec = RunSpec(
            scenario=tiny_scenario,
            trace=one_sunny_day,
            policy="e-buff",
            setup=flaky_setup,
        )
        report = run_campaign([spec], n_workers=1, cache=None)
        outcome = report.outcome("e-buff")
        assert outcome.ok
        assert outcome.attempts == 2
        assert outcome.errors == ("RuntimeError: transient worker failure",)

    def test_persistent_failure_is_surfaced(self, tiny_scenario, one_sunny_day, specs):
        broken = RunSpec(
            scenario=tiny_scenario,
            trace=one_sunny_day,
            policy="baat",
            setup=broken_setup,
            label="broken",
        )
        report = run_campaign([specs[0], broken], n_workers=1, cache=None)
        outcome = report.outcome("broken")
        assert not outcome.ok
        assert outcome.attempts == 2  # first try + one retry
        assert len(outcome.errors) == 2
        with pytest.raises(CampaignError, match="broken"):
            report.results()
        assert list(report.results(strict=False)) == [specs[0].effective_label]

    def test_persistent_failure_in_pool_is_surfaced(
        self, tiny_scenario, one_sunny_day, specs
    ):
        broken = RunSpec(
            scenario=tiny_scenario,
            trace=one_sunny_day,
            policy="baat",
            setup=broken_setup,
            label="broken",
        )
        report = run_campaign([specs[0], broken], n_workers=2, cache=None)
        outcome = report.outcome("broken")
        assert not outcome.ok
        assert outcome.attempts == 2
        assert report.outcome(specs[0].effective_label).ok

    def test_unpicklable_spec_runs_inline_and_uncached(
        self, tmp_path, tiny_scenario, one_sunny_day
    ):
        cache = ResultCache(tmp_path / "campaign")
        spec = RunSpec(
            scenario=tiny_scenario,
            trace=one_sunny_day,
            policy_factory=lambda: make_policy("baat"),
            label="closure",
        )
        report = run_campaign([spec], n_workers=2, cache=cache)
        assert report.outcome("closure").ok
        assert len(cache) == 0

    def test_zero_retries(self, tiny_scenario, one_sunny_day):
        spec = RunSpec(
            scenario=tiny_scenario,
            trace=one_sunny_day,
            policy="baat",
            setup=broken_setup,
        )
        report = run_campaign([spec], n_workers=1, cache=None, retries=0)
        assert report.outcome("baat").attempts == 1

    def test_argument_validation(self, specs):
        with pytest.raises(ConfigurationError):
            run_campaign(specs, n_workers=0)
        with pytest.raises(ConfigurationError):
            run_campaign(specs, retries=-1)
        report = run_campaign(specs[:1], n_workers=1, cache=None)
        with pytest.raises(ConfigurationError):
            report.outcome("no-such-cell")

    def test_default_workers_hook(self, specs):
        set_default_workers(2)
        try:
            report = run_campaign(specs[:1], cache=None)
            assert report.n_workers == 2
        finally:
            set_default_workers(None)

    def test_summary_line(self, specs):
        report = run_campaign(specs[:1], n_workers=1, cache=None)
        assert "1 executed" in report.summary_line()
        assert "0 cached" in report.summary_line()


class TestBrokenPool:
    """Hard worker deaths must not abort the campaign or eat results."""

    def test_always_dying_worker_fails_its_cell_only(
        self, tiny_scenario, one_sunny_day
    ):
        killer = RunSpec(
            scenario=tiny_scenario,
            trace=one_sunny_day,
            policy="baat",
            setup=kill_worker_setup,
            label="killer",
        )
        # Regression: a BrokenProcessPool used to propagate out of
        # run_campaign, discarding every other cell's work.
        report = run_campaign([killer], n_workers=2, cache=None, retries=1)
        outcome = report.outcome("killer")
        assert not outcome.ok
        assert outcome.attempts == 2  # first try + one pool-death strike
        assert len(outcome.errors) == 2
        assert any("terminated" in e or "BrokenProcessPool" in e for e in outcome.errors)
        with pytest.raises(CampaignError, match="killer"):
            report.results()

    def test_pool_is_rebuilt_and_survivors_finish(
        self, tmp_path, tiny_scenario, one_sunny_day, specs
    ):
        marker = tmp_path / "died-once"
        killer = RunSpec(
            scenario=tiny_scenario,
            trace=one_sunny_day,
            policy="baat",
            setup=functools.partial(
                kill_worker_once_setup, marker=str(marker)
            ),
            label="killer",
        )
        report = run_campaign(
            [specs[0], killer], n_workers=2, cache=None, retries=1
        )
        assert marker.exists()
        assert report.outcome(specs[0].effective_label).ok
        survivor = report.outcome("killer")
        assert survivor.ok
        assert survivor.attempts >= 2  # pool-death strike, then success

    def test_pool_death_strikes_do_not_consume_genuine_retries(
        self, tmp_path, tiny_scenario, one_sunny_day
    ):
        """A cell that dies with the pool once and then raises once
        still succeeds with retries=1: pool-death strikes are budgeted
        separately from genuine failures, so the strike cannot eat the
        cell's one real retry."""
        cell = RunSpec(
            scenario=tiny_scenario,
            trace=one_sunny_day,
            policy="e-buff",
            setup=functools.partial(
                kill_then_raise_setup,
                kill_marker=str(tmp_path / "killed"),
                raise_marker=str(tmp_path / "raised"),
            ),
            label="cell",
        )
        report = run_campaign([cell], n_workers=2, cache=None, retries=1)
        outcome = report.outcome("cell")
        assert outcome.ok
        assert outcome.attempts == 3  # kill + raise + success
        assert len(outcome.errors) == 2


class TestUncacheableAccounting:
    def _lambda_specs(self, tiny_scenario, one_sunny_day, n=5):
        return [
            RunSpec(
                scenario=tiny_scenario,
                trace=one_sunny_day,
                policy_factory=lambda: make_policy("baat"),
                label=f"cell-{i}",
            )
            for i in range(n)
        ]

    def test_all_uncacheable_campaign_does_not_trip_miss_storm(
        self, tmp_path, tiny_scenario, one_sunny_day
    ):
        """Regression: closure-built cells (key=None) were counted as
        misses, so a sweep of lambda policies read as a 100% miss storm
        even though those cells can never hit."""
        from repro.obs import ALERTS, disable_observability, enable_observability

        cache = ResultCache(tmp_path / "c")
        specs = self._lambda_specs(tiny_scenario, one_sunny_day)
        enable_observability()
        try:
            report = run_campaign(specs, n_workers=1, cache=cache)
            assert ALERTS.fired("cache_miss_storm") == []
        finally:
            disable_observability()
        assert report.n_uncacheable == len(specs)
        assert "5 uncacheable" in report.cache_summary_line()
        assert "0 miss(es)" in report.cache_summary_line()

    def test_keyed_misses_still_trip_the_storm(
        self, tmp_path, tiny_scenario, one_sunny_day
    ):
        from repro.obs import ALERTS, disable_observability, enable_observability

        cache = ResultCache(tmp_path / "c")
        seeds = range(4)
        from dataclasses import replace

        specs = [
            RunSpec(
                scenario=replace(tiny_scenario, seed=100 + i),
                trace=one_sunny_day,
                policy="e-buff",
            )
            for i in seeds
        ]
        enable_observability()
        try:
            run_campaign(specs, n_workers=1, cache=cache)
            assert len(ALERTS.fired("cache_miss_storm")) == 1
        finally:
            disable_observability()

    def test_mixed_campaign_reports_uncacheable_bucket(
        self, tmp_path, tiny_scenario, one_sunny_day, specs
    ):
        cache = ResultCache(tmp_path / "c")
        mixed = [specs[0]] + self._lambda_specs(
            tiny_scenario, one_sunny_day, n=1
        )
        report = run_campaign(mixed, n_workers=1, cache=cache)
        assert report.n_uncacheable == 1
        line = report.cache_summary_line()
        assert "1 miss(es)" in line and "1 uncacheable" in line


class TestCacheHardening:
    def test_wrong_type_payload_evicts_as_miss(self, tmp_path):
        """Regression: a payload of the wrong type counted as a hit and
        stayed on disk, so the poisoned entry shadowed every rerun."""
        cache = ResultCache(tmp_path / "c")
        key = object_key("poisoned")
        cache.put(key, {"not": "a SimResult"})
        assert cache.get(key, expect=SimResult) is None
        assert cache.misses == 1 and cache.hits == 0
        assert key not in cache  # evicted, so a rerun can repopulate it

    def test_untyped_get_still_accepts_any_payload(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = object_key("any")
        cache.put(key, [1, 2])
        assert cache.get(key) == [1, 2]

    def test_put_fsyncs_data_file_and_directory(self, tmp_path, monkeypatch):
        """Regression: the rename was not fsynced, so a crash could
        leave an empty/truncated entry that later read as corrupt."""
        synced = []
        real_fsync = os.fsync

        def recording_fsync(fd):
            synced.append(fd)
            real_fsync(fd)

        monkeypatch.setattr(os, "fsync", recording_fsync)
        cache = ResultCache(tmp_path / "c")
        cache.put(object_key("durable"), 7)
        # One fsync for the temp data file, one for the directory.
        assert len(synced) >= 2


class TestCacheStores:
    def test_sqlite_backend_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "c", backend="sqlite")
        assert cache.backend == "sqlite"
        key = object_key("k")
        assert cache.get(key) is None
        cache.put(key, {"value": 42})
        assert cache.get(key) == {"value": 42}
        assert key in cache and len(cache) == 1
        assert cache.size_bytes() > 0
        # A second handle on the same path sees the entry (shared cache).
        other = ResultCache(tmp_path / "c", backend="sqlite")
        assert other.get(key) == {"value": 42}
        assert cache.clear() == 1
        assert len(cache) == 0
        cache.close()
        other.close()

    def test_sqlite_wrong_type_eviction(self, tmp_path):
        cache = ResultCache(tmp_path / "c", backend="sqlite")
        key = object_key("poisoned")
        cache.put(key, "nope")
        assert cache.get(key, expect=SimResult) is None
        assert key not in cache
        cache.close()

    def test_make_store_suffix_and_env_detection(self, tmp_path, monkeypatch):
        assert isinstance(make_store(tmp_path / "plain"), DirStore)
        assert isinstance(make_store(tmp_path / "c.sqlite"), SqliteStore)
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "sqlite")
        assert isinstance(make_store(tmp_path / "plain2"), SqliteStore)
        with pytest.raises(ConfigurationError):
            make_store(tmp_path / "x", backend="tarball")

    def test_campaign_runs_against_sqlite_cache(self, tmp_path, specs):
        cache = ResultCache(tmp_path / "c.sqlite")
        assert cache.backend == "sqlite"
        first = run_campaign(specs, n_workers=1, cache=cache)
        assert first.n_executed == len(specs)
        second = run_campaign(specs, n_workers=1, cache=cache)
        assert second.n_cache_hits == len(specs)
        assert second.results() == first.results()
        cache.close()


class TestAgingCampaignCaching:
    def test_runs_against_an_empty_default_cache(self, tmp_path):
        """Regression: an *empty* ResultCache is falsy (``__len__`` == 0),
        so ``if cache:`` skipped key computation while ``cache is not
        None`` still probed it — crashing on the malformed None key."""
        from repro.campaign import cache as cache_mod
        from repro.experiments import aging_campaign

        saved = (cache_mod._override_enabled, cache_mod._override_dir)
        cache_mod.configure_cache(directory=tmp_path / "empty")
        try:
            aging_campaign.run_campaign.cache_clear()
            first = aging_campaign.run_campaign(months=1)
            assert first.snapshots
            # Second process-equivalent lookup replays from disk.
            aging_campaign.run_campaign.cache_clear()
            assert aging_campaign.run_campaign(months=1) == first
        finally:
            aging_campaign.run_campaign.cache_clear()
            cache_mod._override_enabled, cache_mod._override_dir = saved
