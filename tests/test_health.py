"""Tests for the fleet health model (`repro.obs.health`).

The acceptance bar: replaying a traced run through
:class:`FleetHealthModel` reproduces every node's in-engine
:class:`~repro.metrics.tracker.MetricsTracker` lifetime metrics to
1e-6 relative, and the DDT / DR alert rules fire on scenarios
engineered to breach them.
"""

from __future__ import annotations

import math

import pytest

from repro.core.policies.factory import make_policy
from repro.datacenter.workloads import PAPER_WORKLOADS
from repro.obs import (
    ALERTS,
    BUS,
    REGISTRY,
    disable_observability,
    enable_observability,
)
from repro.obs.alerts import AlertEngine, default_rules
from repro.obs.events import (
    BatteryConfigEvent,
    BatterySampleEvent,
    DayStartEvent,
    DoDGoalEvent,
    RunStartEvent,
)
from repro.obs.health import (
    METRIC_NAMES,
    BatteryConfig,
    BatteryHealth,
    FleetHealthModel,
)
from repro.sim.engine import Simulation
from repro.sim.scenario import Scenario
from repro.solar.weather import DayClass


@pytest.fixture(autouse=True)
def _clean_obs_state():
    BUS.clear_sinks()
    REGISTRY.enabled = False
    REGISTRY.reset()
    ALERTS.enabled = False
    ALERTS.reset()
    yield
    disable_observability()
    BUS.clear_sinks()
    REGISTRY.enabled = False
    REGISTRY.reset()
    ALERTS.reset()


def _workloads(*names):
    return tuple(PAPER_WORKLOADS[n] for n in names)


def traced_run(tmp_path, scenario, policy="baat", day=DayClass.CLOUDY):
    """Run one traced day and return (sim, trace_path)."""
    path = str(tmp_path / "trace.jsonl")
    trace = scenario.trace_generator().day(day)
    enable_observability(path)
    try:
        sim = Simulation(scenario, make_policy(policy), trace)
        sim.run()
    finally:
        disable_observability()
    return sim, path


# ----------------------------------------------------------------------
# Attribution fidelity: replay == in-engine tracker
# ----------------------------------------------------------------------
class TestAttributionFidelity:
    def test_replay_matches_tracker_within_1e6(self, tiny_scenario, tmp_path):
        sim, path = traced_run(tmp_path, tiny_scenario)
        model = FleetHealthModel.from_trace(path)
        assert len(model.runs) == 1
        run = model.runs[0]
        assert set(run.batteries) == {n.name for n in sim.cluster}
        for node in sim.cluster:
            engine_side = node.tracker.lifetime()
            replay_side = run.batteries[node.name].metrics()
            for name in METRIC_NAMES + ("dr_peak",):
                a = getattr(engine_side, name)
                b = getattr(replay_side, name)
                if math.isinf(a) or math.isinf(b):
                    assert a == b, name
                else:
                    assert b == pytest.approx(a, rel=1e-6, abs=1e-12), name

    def test_battery_config_events_make_trace_self_contained(
        self, tiny_scenario, tmp_path
    ):
        sim, path = traced_run(tmp_path, tiny_scenario)
        model = FleetHealthModel.from_trace(path)
        run = model.runs[0]
        for node in sim.cluster:
            cfg = run.batteries[node.name].config
            params = node.battery.params
            assert cfg.lifetime_ah_throughput == params.lifetime_ah_throughput
            assert cfg.reference_current == params.reference_current
            assert cfg.capacity_ah == params.capacity_ah

    def test_score_breakdown_terms_sum_to_score(self, tiny_scenario, tmp_path):
        _, path = traced_run(tmp_path, tiny_scenario)
        model = FleetHealthModel.from_trace(path)
        for battery in model.runs[0].batteries.values():
            br = battery.breakdown(model.weights)
            assert br.score == pytest.approx(
                br.nat_term + br.cf_term + br.pc_term, rel=1e-12
            )


# ----------------------------------------------------------------------
# Run scoping, day windows, finalize
# ----------------------------------------------------------------------
class TestStreamSemantics:
    def test_serial_runs_get_separate_scopes(self, tiny_scenario, tmp_path):
        path = str(tmp_path / "two-runs.jsonl")
        trace = tiny_scenario.trace_generator().day(DayClass.SUNNY)
        enable_observability(path)
        try:
            for policy in ("baat", "e-buff"):
                Simulation(tiny_scenario, make_policy(policy), trace).run()
        finally:
            disable_observability()
        model = FleetHealthModel.from_trace(path)
        assert [r.policy for r in model.runs] == ["baat", "e-buff"]
        assert all(len(r.batteries) == 3 for r in model.runs)
        # Scopes do not bleed: the two runs saw the same trace, so their
        # accumulated times match but are tracked independently.
        a, b = (r.batteries["node0"] for r in model.runs)
        assert a is not b
        assert a.acc.total_time_s == b.acc.total_time_s

    def test_day_zero_boundary_scores_nothing(self):
        model = FleetHealthModel()
        model.emit(RunStartEvent(t=0.0, policy="baat", n_nodes=1, steps_total=1))
        model.emit(DayStartEvent(t=0.0, day_index=0))
        model.emit(
            BatterySampleEvent(t=60.0, node="n1", soc=0.9, current_a=2.0, dt=60.0)
        )
        model.emit(DayStartEvent(t=86400.0, day_index=1))
        battery = model.runs[0].batteries["n1"]
        # Only the populated window was scored; the t=0 boundary was not.
        assert len(battery.day_scores) == 1
        assert model.runs[0].days_closed == 2

    def test_finalize_closes_trailing_partial_day_once(self):
        model = FleetHealthModel()
        model.emit(RunStartEvent(t=0.0, policy="baat", n_nodes=1, steps_total=1))
        model.emit(
            BatterySampleEvent(t=60.0, node="n1", soc=0.9, current_a=2.0, dt=60.0)
        )
        model.finalize()
        battery = model.runs[0].batteries["n1"]
        assert len(battery.day_scores) == 1
        model.finalize()  # idempotent: no new window accumulated
        assert len(battery.day_scores) == 1

    def test_headless_stream_opens_anonymous_scope(self):
        model = FleetHealthModel()
        model.emit(
            BatterySampleEvent(t=0.0, node="n1", soc=0.5, current_a=1.0, dt=60.0)
        )
        assert len(model.runs) == 1
        assert model.runs[0].label == "run0"

    def test_report_on_empty_stream(self):
        text = FleetHealthModel().report().to_text()
        assert "no battery telemetry" in text


# ----------------------------------------------------------------------
# Projections
# ----------------------------------------------------------------------
class TestProjections:
    def day_of_discharge(self, battery, current=1.75):
        battery.acc.observe(0.5, current, 86400.0, battery.config.reference_current)

    def test_eol_projection_linear_extrapolation(self):
        b = BatteryHealth(node="n1")
        self.day_of_discharge(b)
        nat = b.metrics().nat
        assert 0 < nat < 1
        expected = (1.0 - nat) / nat  # one day elapsed -> rate = nat/day
        assert b.eol_projection_days() == pytest.approx(expected)

    def test_eol_infinite_without_discharge(self):
        b = BatteryHealth(node="n1")
        assert math.isinf(b.eol_projection_days())
        b.acc.observe(0.9, -1.0, 3600.0, b.config.reference_current)
        assert math.isinf(b.eol_projection_days())  # charge only: no NAT rate

    def test_plan_drift_requires_goal(self):
        b = BatteryHealth(node="n1")
        self.day_of_discharge(b)
        assert b.plan_drift() is None
        b.dod_goal = 0.5
        # 1.75 A for a day = 42 Ah vs a 0.5 * 35 Ah = 17.5 Ah/day plan.
        assert b.plan_drift() == pytest.approx(42.0 / 17.5 - 1.0)

    def test_dod_goal_event_feeds_plan_drift(self):
        model = FleetHealthModel()
        model.emit(RunStartEvent(t=0.0, policy="baat-planned", n_nodes=1, steps_total=1))
        model.emit(DoDGoalEvent(t=0.0, node="n1", goal=0.4, threshold=0.6, floor=0.3))
        model.emit(
            BatterySampleEvent(
                t=86400.0, node="n1", soc=0.5, current_a=1.75, dt=86400.0
            )
        )
        model.finalize()
        battery = model.runs[0].batteries["n1"]
        assert battery.dod_goal == 0.4
        assert battery.plan_drift() == pytest.approx(42.0 / (0.4 * 35.0) - 1.0)

    def test_custom_battery_config_changes_attribution(self):
        model = FleetHealthModel()
        model.emit(RunStartEvent(t=0.0, policy="baat", n_nodes=1, steps_total=1))
        model.emit(
            BatteryConfigEvent(
                t=0.0,
                node="n1",
                lifetime_ah_throughput=100.0,
                reference_current=1.0,
                capacity_ah=10.0,
                cutoff_soc=0.1,
            )
        )
        model.emit(
            BatterySampleEvent(t=3600.0, node="n1", soc=0.5, current_a=1.0, dt=3600.0)
        )
        # 1 Ah against a 100 Ah lifetime -> NAT 0.01 under the custom config
        # (the default 13300 Ah lifetime would give ~7.5e-5).
        assert model.runs[0].batteries["n1"].metrics().nat == pytest.approx(0.01)


# ----------------------------------------------------------------------
# Engineered breaches: the DDT and DR rules must fire
# ----------------------------------------------------------------------
class TestEngineeredBreaches:
    def breach_scenario(self):
        """Old, nearly-empty batteries into a rainy day, with servers
        oversized relative to the batteries (12 W/Ah): heavy deep
        discharge the slowdown monitor cannot fully prevent. The fat
        server-to-battery ratio matters — at the default ratio BAAT's
        slowdown holds a rainy-day fleet within a fraction of a percent
        of wherever it starts, never *falling* through the 0.28
        protected floor."""
        return Scenario(
            n_nodes=3,
            dt_s=300.0,
            manufacturing_variation=False,
            workloads=_workloads(
                "web_serving", "data_analytics", "word_count", "nutch_indexing"
            ),
            initial_fade=0.3,
            initial_soc=0.30,
        ).with_server_to_battery_ratio(12.0)

    def test_ddt_and_soc_floor_rules_fire_live(self, tmp_path):
        scenario = self.breach_scenario()
        trace = scenario.trace_generator().day(DayClass.RAINY)
        path = str(tmp_path / "breach.jsonl")
        enable_observability(path)
        try:
            sim = Simulation(scenario, make_policy("baat"), trace)
            sim.run()
            ddt = list(ALERTS.fired("ddt_window_breach"))
            floor = list(ALERTS.fired("soc_floor_violation"))
        finally:
            disable_observability()
        # Every battery spent most of the rainy day below 40 % SoC.
        assert {e.node for e in ddt} == {n.name for n in sim.cluster}
        assert all(e.value > e.threshold for e in ddt)
        assert floor, "protected-floor violation must be detected"
        assert all(e.severity == "critical" for e in floor)

    def test_ddt_alerts_rederived_on_replay(self, tmp_path):
        scenario = self.breach_scenario()
        _, path = traced_run(tmp_path, scenario, day=DayClass.RAINY)
        engine = AlertEngine(default_rules())
        engine.enabled = True
        model = FleetHealthModel.from_trace(path, alert_engine=engine)
        replayed = engine.fired("ddt_window_breach")
        assert {e.node for e in replayed} == set(model.runs[0].batteries)
        # The report surfaces them.
        text = model.report().to_text()
        assert "ddt_window_breach" in text

    def test_dr_reserve_rule_fires_on_draw_spike(self):
        scenario = Scenario(
            n_nodes=3,
            dt_s=300.0,
            manufacturing_variation=False,
            workloads=_workloads("web_serving"),
            initial_soc=0.18,
        )
        trace = scenario.trace_generator().day(DayClass.RAINY)
        enable_observability()
        try:
            sim = Simulation(scenario, make_policy("baat"), trace)
            sim.step_once()
            monitor = sim.policy.monitor
            node = sim.cluster.nodes[0]
            # A 5 kW draw against a nearly drained battery leaves seconds
            # of reserve: the monitor must both trigger its slowdown and
            # raise the dr_reserve_exhaustion alert.
            assert monitor.check(node, 5000.0) is True
            fired = list(ALERTS.fired("dr_reserve_exhaustion"))
        finally:
            disable_observability()
        assert [e.node for e in fired] == [node.name]
        assert fired[0].value < fired[0].threshold

    def test_healthy_run_raises_no_watchdog_alerts(self, tiny_scenario, tmp_path):
        _, path = traced_run(tmp_path, tiny_scenario, day=DayClass.SUNNY)
        engine = AlertEngine(default_rules())
        engine.enabled = True
        FleetHealthModel.from_trace(path, alert_engine=engine)
        assert engine.fired("ddt_window_breach") == []
