"""Regression tests for the control-plane bug fixes.

Three defects rode in one PR:

- ``SlowdownConfig.window_end_h`` was hard-coded to 18.5 and never
  derived from the scenario's ``operating_window_h``, so rationing and
  the consolidation battery budget planned toward the wrong horizon on
  non-default windows;
- :meth:`BAATPolicy._battery_budget_w` summed usable charge over parked
  (``policy_off``) nodes whose discharge cap is 0 W, inflating the
  supportable-server estimate with unspendable charge;
- the consolidation wake loop's accounting decremented the solar
  headroom against a stale active-count snapshot instead of counting
  woken servers on the active side.
"""

import pytest

from repro.core.policies.baat import BAATPolicy
from repro.core.policies.baat_s import BAATSlowdownPolicy
from repro.core.slowdown import DEFAULT_WINDOW_END_H, SlowdownConfig
from repro.errors import ConfigurationError
from repro.sim.scenario import Scenario
from repro.units import SECONDS_PER_HOUR


def _bound(policy, scenario=None, n=4, **scenario_kw):
    sc = scenario or Scenario(n_nodes=n, **scenario_kw)
    cluster = sc.build_cluster()
    policy.bind(cluster, scenario=sc)
    return sc, cluster, policy


class TestWindowEndWiring:
    def test_monitor_derives_window_end_from_scenario(self):
        sc = Scenario(n_nodes=3, operating_window_h=(6.0, 20.0))
        _, _, policy = _bound(BAATPolicy(), scenario=sc)
        assert policy.monitor.window_end_h == 20.0

    def test_baat_s_monitor_derives_window_end_from_scenario(self):
        sc = Scenario(n_nodes=3, operating_window_h=(7.0, 21.0))
        _, _, policy = _bound(BAATSlowdownPolicy(), scenario=sc)
        assert policy.monitor.window_end_h == 21.0

    def test_unbound_scenario_keeps_documented_default(self):
        sc = Scenario(n_nodes=3)
        cluster = sc.build_cluster()
        policy = BAATPolicy()
        policy.bind(cluster)  # no scenario handed over
        assert policy.monitor.window_end_h == DEFAULT_WINDOW_END_H == 18.5

    def test_explicit_config_overrides_scenario(self):
        sc = Scenario(n_nodes=3, operating_window_h=(6.0, 20.0))
        policy = BAATPolicy(config=SlowdownConfig(window_end_h=17.0))
        _bound(policy, scenario=sc)
        assert policy.monitor.window_end_h == 17.0

    def test_window_end_changes_ration_horizon(self):
        """A later window end rations over a longer horizon -> lower cap."""
        t = 12.0 * SECONDS_PER_HOUR  # noon
        caps = {}
        for end in (15.0, 22.0):
            sc = Scenario(n_nodes=3, operating_window_h=(6.0, end))
            _, cluster, policy = _bound(BAATPolicy(), scenario=sc)
            caps[end] = policy.monitor._ration_w(cluster.nodes[0], t)
        assert caps[22.0] < caps[15.0]

    def test_config_window_end_validated(self):
        with pytest.raises(ConfigurationError):
            SlowdownConfig(window_end_h=25.0)
        with pytest.raises(ConfigurationError):
            SlowdownConfig(window_end_h=0.0)


class TestBatteryBudgetExcludesParked:
    def test_parked_node_contributes_nothing(self):
        _, cluster, policy = _bound(BAATPolicy(), n=4)
        t = 10.0 * SECONDS_PER_HOUR
        full = policy._battery_budget_w(t)
        assert full > 0.0

        victim = cluster.nodes[1]
        victim.server.policy_off = True
        victim.discharge_cap_w = 0.0
        without = policy._battery_budget_w(t)

        # The parked node's term must vanish entirely; reconstruct it
        # from the same formula to pin the exact amount.
        monitor = policy.monitor
        remaining_s = max(
            600.0, (monitor.window_end_h - 10.0) * SECONDS_PER_HOUR
        )
        floor = monitor.protected_floor(victim)
        usable_ah = max(
            0.0,
            (victim.battery.soc - floor) * victim.battery.effective_capacity_ah,
        )
        term = (
            usable_ah
            * victim.battery.terminal_voltage(0.0)
            * SECONDS_PER_HOUR
            / remaining_s
        )
        assert term > 0.0
        assert without == pytest.approx(full - term)

    def test_all_parked_budget_is_zero(self):
        _, cluster, policy = _bound(BAATPolicy(), n=3)
        for node in cluster:
            node.server.policy_off = True
            node.discharge_cap_w = 0.0
        assert policy._battery_budget_w(0.0) == 0.0


class TestWakeAccounting:
    def _parked_cluster(self, n=6, parked=3):
        _, cluster, policy = _bound(BAATPolicy(), n=n)
        for node in cluster.nodes[:parked]:
            node.server.policy_off = True
            node.discharge_cap_w = 0.0
        return cluster, policy

    def test_wakes_stop_exactly_at_solar_headroom(self):
        cluster, policy = self._parked_cluster(n=6, parked=3)
        per_server = policy._per_server_planning_w()
        # Solar supports 5 servers; 3 are active -> exactly 2 wakes.
        policy._consolidate(t=0.0, solar_w=per_server * 5.5)
        parked = [n for n in cluster if n.server.policy_off]
        assert len(parked) == 1
        woken = [n for n in cluster if not n.server.policy_off]
        assert all(n.discharge_cap_w == float("inf") for n in woken)

    def test_headroom_beyond_parked_pool_wakes_everyone(self):
        cluster, policy = self._parked_cluster(n=6, parked=2)
        per_server = policy._per_server_planning_w()
        policy._consolidate(t=0.0, solar_w=per_server * 20.0)
        assert not any(n.server.policy_off for n in cluster)

    def test_no_wake_without_headroom(self):
        cluster, policy = self._parked_cluster(n=6, parked=3)
        per_server = policy._per_server_planning_w()
        # Solar supports only the 3 already-active servers.
        policy._consolidate(t=0.0, solar_w=per_server * 3.0)
        assert sum(1 for n in cluster if n.server.policy_off) == 3
