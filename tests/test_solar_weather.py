"""Unit tests for the weather model and cloud process."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rng import spawn
from repro.solar.weather import (
    DAY_CLEARNESS,
    CloudProcess,
    DayClass,
    WeatherModel,
    day_class_probabilities,
)


class TestDayClassProbabilities:
    def test_sums_to_one(self):
        for f in (0.0, 0.3, 0.5, 0.8, 1.0):
            probs = day_class_probabilities(f)
            assert sum(probs.values()) == pytest.approx(1.0)

    def test_sunny_monotone_in_sunshine(self):
        values = [day_class_probabilities(f / 10.0)[DayClass.SUNNY] for f in range(11)]
        assert values == sorted(values)

    def test_extremes(self):
        assert day_class_probabilities(1.0)[DayClass.SUNNY] == pytest.approx(1.0)
        assert day_class_probabilities(0.0)[DayClass.SUNNY] == 0.0

    def test_dark_locations_are_rain_heavy(self):
        probs = day_class_probabilities(0.1)
        assert probs[DayClass.RAINY] > probs[DayClass.CLOUDY]

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            day_class_probabilities(1.5)


class TestCloudProcess:
    @pytest.mark.parametrize("day_class", list(DayClass))
    def test_attenuation_bounded(self, day_class):
        clouds = CloudProcess(day_class, spawn(1, "t"))
        for _ in range(500):
            assert 0.0 <= clouds.attenuation(60.0) <= 1.05

    @pytest.mark.parametrize("day_class", list(DayClass))
    def test_mean_attenuation_matches_clearness(self, day_class):
        clouds = CloudProcess(day_class, spawn(2, "t"))
        values = [clouds.attenuation(60.0) for _ in range(20_000)]
        assert np.mean(values) == pytest.approx(DAY_CLEARNESS[day_class], rel=0.12)

    def test_sunny_steadier_than_cloudy(self):
        sunny = CloudProcess(DayClass.SUNNY, spawn(3, "s"))
        cloudy = CloudProcess(DayClass.CLOUDY, spawn(3, "c"))
        s = np.std([sunny.attenuation(60.0) for _ in range(5000)])
        c = np.std([cloudy.attenuation(60.0) for _ in range(5000)])
        assert c > s


class TestWeatherModel:
    def test_sample_count(self):
        days = WeatherModel(0.5).sample_days(30, spawn(4, "w"))
        assert len(days) == 30
        assert all(isinstance(d, DayClass) for d in days)

    def test_sunnier_locations_sample_more_sunny_days(self):
        rng_a = spawn(5, "a")
        rng_b = spawn(5, "a")
        dark = WeatherModel(0.2).sample_days(200, rng_a)
        bright = WeatherModel(0.9).sample_days(200, rng_b)
        assert bright.count(DayClass.SUNNY) > dark.count(DayClass.SUNNY)

    def test_deterministic_given_rng(self):
        a = WeatherModel(0.5).sample_days(50, spawn(6, "w"))
        b = WeatherModel(0.5).sample_days(50, spawn(6, "w"))
        assert a == b
