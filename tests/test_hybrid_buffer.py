"""Tests for the supercapacitor and hybrid energy buffer."""

import pytest

from repro.battery.hybrid import HybridBuffer
from repro.battery.supercap import Supercapacitor, SupercapParams
from repro.errors import ConfigurationError
from repro.experiments import extension_hybrid_buffer


class TestSupercap:
    def test_usable_energy(self):
        params = SupercapParams()
        # 0.5 * 58 * (16^2 - 8^2) J = 5568 J ~= 1.55 Wh
        assert params.usable_energy_wh == pytest.approx(5568.0 / 3600.0)

    def test_discharge_empties(self):
        cap = Supercapacitor()
        delivered = cap.discharge(400.0, 60.0)
        assert delivered > 0.0
        assert cap.soc < 1.0

    def test_cannot_overdraw(self):
        cap = Supercapacitor(initial_soc=0.0)
        assert cap.discharge(400.0, 60.0) == pytest.approx(0.0)

    def test_charge_refills(self):
        cap = Supercapacitor(initial_soc=0.2)
        cap.charge(200.0, 60.0)
        assert cap.soc > 0.2

    def test_round_trip_efficiency_high(self):
        cap = Supercapacitor(initial_soc=0.0)
        while cap.soc < 0.999:
            cap.charge(200.0, 10.0)
        out = 0.0
        while cap.soc > 1e-4:
            out += cap.discharge(200.0, 10.0) * 10.0 / 3600.0
        assert out / cap.energy_in_wh > 0.90

    def test_self_discharge(self):
        cap = Supercapacitor()
        cap.rest(86400.0)
        assert cap.soc == pytest.approx(0.951, abs=0.01)

    def test_power_limit(self):
        cap = Supercapacitor(SupercapParams(max_power_w=100.0))
        assert cap.discharge(10_000.0, 1.0) <= 100.0 + 1e-9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SupercapParams(capacitance_f=0.0)
        with pytest.raises(ConfigurationError):
            SupercapParams(v_min=20.0, v_max=16.0)
        with pytest.raises(ConfigurationError):
            Supercapacitor(initial_soc=2.0)


class TestHybridBuffer:
    def test_gentle_draw_uses_battery_only(self):
        hybrid = HybridBuffer()
        cap_before = hybrid.supercap.soc
        result = hybrid.discharge(40.0, 60.0)
        assert result.delivered_power_w == pytest.approx(40.0, rel=0.02)
        # Full cap stays full (no topup needed, no spike draw).
        assert hybrid.supercap.soc == pytest.approx(cap_before, abs=1e-6)

    def test_spike_served_by_cap(self):
        hybrid = HybridBuffer()
        result = hybrid.discharge(hybrid.gentle_power_w + 300.0, 10.0)
        assert result.delivered_power_w == pytest.approx(
            hybrid.gentle_power_w + 300.0, rel=0.05
        )
        assert hybrid.supercap.soc < 1.0
        # Battery current stayed at/below the gentle rate.
        gentle_a = 3.0 * hybrid.battery.params.reference_current
        assert abs(hybrid.battery.last_current_a) <= gentle_a * 1.05

    def test_battery_backstops_empty_cap(self):
        hybrid = HybridBuffer(supercap=Supercapacitor(initial_soc=0.0))
        want = hybrid.gentle_power_w + 100.0
        result = hybrid.discharge(want, 10.0)
        assert result.delivered_power_w == pytest.approx(want, rel=0.05)

    def test_calm_steps_refill_the_cap(self):
        hybrid = HybridBuffer(supercap=Supercapacitor(initial_soc=0.3))
        for _ in range(30):
            hybrid.discharge(20.0, 60.0)
        assert hybrid.supercap.soc > 0.3

    def test_charge_prioritises_cap(self):
        hybrid = HybridBuffer(supercap=Supercapacitor(initial_soc=0.0))
        hybrid.battery._soc = 0.5
        hybrid.charge(300.0, 60.0)
        assert hybrid.supercap.soc > 0.0

    def test_rest_advances_both(self):
        hybrid = HybridBuffer()
        hybrid.rest(3600.0)
        assert hybrid.battery.time_s == pytest.approx(3600.0)

    def test_validation(self):
        hybrid = HybridBuffer()
        with pytest.raises(ConfigurationError):
            hybrid.discharge(-1.0, 60.0)
        with pytest.raises(ConfigurationError):
            hybrid.charge(10.0, 0.0)


class TestExtensionExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return extension_hybrid_buffer.run(quick=True)

    def test_hybrid_cuts_battery_burst_exposure(self, result):
        assert result.headline["battery burst-exposure cut %"] > 50.0

    def test_hybrid_slows_battery_aging(self, result):
        assert result.headline["hybrid battery-aging cut %"] > 0.0

    def test_hybrid_serves_more_energy(self, result):
        by_label = {row[0]: row for row in result.rows}
        assert (
            by_label["hybrid (cap + battery)"][3] >= by_label["battery only"][3]
        )


class TestHybridEnergyConservation:
    def test_no_energy_created_over_a_duty_cycle(self):
        """Thermodynamic invariant: delivered energy never exceeds what
        the battery + cap initially stored plus what was charged in."""
        from repro.units import hours

        hybrid = HybridBuffer()
        initial_wh = (
            hybrid.battery.params.nominal_energy_wh
            + hybrid.supercap.params.usable_energy_wh
        )
        delivered_wh = 0.0
        charged_wh = 0.0
        for cycle in range(3):
            for _ in range(60):
                result = hybrid.discharge(150.0, 60.0)
                delivered_wh += result.delivered_power_w / 60.0
            for _ in range(120):
                result = hybrid.charge(60.0, 60.0)
                charged_wh += result.delivered_power_w / 60.0
        assert delivered_wh <= charged_wh + initial_wh + 1e-6

    def test_repeated_spikes_eventually_hit_battery(self):
        """The cap is finite: sustained over-gentle demand must spill to
        the battery rather than silently vanish."""
        hybrid = HybridBuffer()
        want = hybrid.gentle_power_w + 500.0
        gentle_a = 3.0 * hybrid.battery.params.reference_current
        saw_battery_spike = False
        for _ in range(120):
            hybrid.discharge(want, 10.0)
            if abs(hybrid.battery.last_current_a) > gentle_a * 1.05:
                saw_battery_spike = True
                break
        assert saw_battery_spike
