"""Unit tests for online lifetime prediction."""

import math

import pytest

from repro.analysis.prediction import (
    LifetimePredictor,
    predict_by_damage,
    predict_by_throughput,
)
from repro.battery.unit import BatteryUnit
from repro.errors import ConfigurationError
from repro.units import days, hours


def cycled_battery(n_days=30, discharge_w=40.0):
    """A battery that has run a daily cycle for ``n_days``."""
    battery = BatteryUnit(name="pred")
    for _ in range(n_days):
        for _ in range(5):
            battery.discharge(discharge_w, hours(1))
        for _ in range(8):
            battery.charge(45.0, hours(1))
        battery.rest(hours(11))
    return battery, n_days * 86400.0


class TestThroughputModel:
    def test_fresh_battery_predicts_infinite(self, battery):
        assert predict_by_throughput(battery, days(1)) == math.inf

    def test_steady_cycling_prediction(self):
        battery, elapsed = cycled_battery()
        remaining = predict_by_throughput(battery, elapsed)
        # At ~16 Ah/day against a 13 300 Ah budget, several hundred days.
        assert 100.0 < remaining < 3000.0

    def test_heavier_use_shortens_prediction(self):
        light, elapsed = cycled_battery(discharge_w=25.0)
        heavy, _ = cycled_battery(discharge_w=60.0)
        assert predict_by_throughput(heavy, elapsed) < predict_by_throughput(
            light, elapsed
        )

    def test_rejects_bad_elapsed(self, battery):
        with pytest.raises(ConfigurationError):
            predict_by_throughput(battery, 0.0)


class TestDamageModel:
    def test_fresh_battery_predicts_infinite(self, battery):
        assert predict_by_damage(battery, days(1)) == math.inf

    def test_prediction_consistent_with_observed_rate(self):
        battery, elapsed = cycled_battery()
        remaining = predict_by_damage(battery, elapsed)
        fade_rate = battery.capacity_fade / (elapsed / 86400.0)
        assert remaining == pytest.approx((0.20 - battery.capacity_fade) / fade_rate)

    def test_nearly_dead_battery_predicts_near_zero(self):
        battery, elapsed = cycled_battery(n_days=10)
        battery.aging.state.damage["active_mass"] = 0.199
        assert predict_by_damage(battery, elapsed) < 5.0


class TestBlendedPredictor:
    def test_agreement_metric(self):
        battery, elapsed = cycled_battery()
        prediction = LifetimePredictor().predict(battery, elapsed)
        assert 0.0 < prediction.agreement <= 1.0
        assert prediction.remaining_days > 0.0

    def test_blend_between_components(self):
        battery, elapsed = cycled_battery()
        p = LifetimePredictor().predict(battery, elapsed)
        lo = min(p.by_throughput_days, p.by_damage_days)
        hi = max(p.by_throughput_days, p.by_damage_days)
        assert lo - 1e-9 <= p.remaining_days <= hi + 1e-9

    def test_fresh_battery_blends_to_infinity(self, battery):
        p = LifetimePredictor().predict(battery, days(1))
        assert math.isinf(p.remaining_days)
        assert p.agreement == 1.0

    def test_damage_takes_over_near_eol(self):
        battery, elapsed = cycled_battery(n_days=10)
        battery.aging.state.damage["sulphation"] = 0.15
        p = LifetimePredictor().predict(battery, elapsed)
        # Heavy damage pulls the blend to the (short) damage estimate.
        assert p.remaining_days == pytest.approx(p.by_damage_days, rel=0.05)

    def test_years_property(self):
        battery, elapsed = cycled_battery()
        p = LifetimePredictor().predict(battery, elapsed)
        assert p.end_of_life_in_years == pytest.approx(p.remaining_days / 365.0)

    def test_rejects_negative_gain(self):
        with pytest.raises(ConfigurationError):
            LifetimePredictor(damage_weight_gain=-1.0)
