"""Unit tests for the rack-shared battery pool."""

import pytest

from repro.battery.pool import BatteryPool
from repro.battery.unit import BatteryUnit
from repro.errors import ConfigurationError
from repro.units import hours


def make_units(n=3, socs=None, params=None):
    from repro.battery.params import BatteryParams

    params = params or BatteryParams()
    socs = socs or [1.0] * n
    return [
        BatteryUnit(params, name=f"pool-{i}", initial_soc=socs[i]) for i in range(n)
    ]


class TestConstruction:
    def test_requires_units(self):
        with pytest.raises(ConfigurationError):
            BatteryPool([])

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ConfigurationError):
            BatteryPool(make_units(), strategy="magic")

    def test_len_and_iter(self):
        pool = BatteryPool(make_units(4))
        assert len(pool) == 4
        assert len(list(pool)) == 4


class TestAggregates:
    def test_full_pool_soc_is_one(self):
        assert BatteryPool(make_units()).soc == pytest.approx(1.0)

    def test_mixed_soc_is_charge_weighted(self):
        pool = BatteryPool(make_units(2, socs=[1.0, 0.5]))
        assert pool.soc == pytest.approx(0.75)

    def test_capacity_sums(self):
        pool = BatteryPool(make_units(3))
        assert pool.effective_capacity_ah == pytest.approx(3 * 35.0)

    def test_worst_unit(self):
        units = make_units(3)
        units[1].aging.state.damage["active_mass"] = 0.1
        pool = BatteryPool(units)
        assert pool.worst_unit() is units[1]


class TestProportionalDischarge:
    def test_meets_request(self):
        pool = BatteryPool(make_units(3))
        result = pool.discharge(300.0, 60.0)
        assert result.delivered_power_w == pytest.approx(300.0, rel=0.02)
        assert not result.curtailed

    def test_spreads_across_members(self):
        units = make_units(3)
        pool = BatteryPool(units)
        pool.discharge(300.0, hours(1))
        socs = [u.soc for u in units]
        assert max(socs) - min(socs) < 0.02

    def test_stronger_member_carries_more(self):
        units = make_units(2, socs=[1.0, 0.3])
        pool = BatteryPool(units)
        pool.discharge(200.0, hours(1))
        drop_full = 1.0 - units[0].soc
        drop_weak = 0.3 - units[1].soc
        assert drop_full > drop_weak

    def test_curtailed_when_empty(self, params):
        units = make_units(2, socs=[params.cutoff_soc, params.cutoff_soc])
        pool = BatteryPool(units)
        result = pool.discharge(100.0, 60.0)
        assert result.curtailed
        assert result.delivered_power_w == 0.0


class TestRoundRobin:
    def test_rotation_spreads_duty_over_calls(self):
        units = make_units(3)
        pool = BatteryPool(units, strategy="round_robin")
        for _ in range(3):
            pool.discharge(50.0, hours(1))
        discharged = [u.aging.state.discharged_ah for u in units]
        assert all(d > 0 for d in discharged)

    def test_spills_over_when_one_unit_cannot_carry(self, params):
        units = make_units(2, socs=[0.14, 1.0])
        pool = BatteryPool(units, strategy="round_robin")
        result = pool.discharge(150.0, 60.0)
        assert result.delivered_power_w > 100.0


class TestCharge:
    def test_emptiest_first(self):
        units = make_units(2, socs=[0.9, 0.3])
        pool = BatteryPool(units)
        pool.charge(30.0, hours(1))
        # The emptier unit should have received (almost) all the charge.
        assert (0.3 - 0.3) <= (units[1].soc - 0.3)
        assert units[1].soc - 0.3 > units[0].soc - 0.9

    def test_full_pool_absorbs_nothing(self):
        pool = BatteryPool(make_units(2))
        result = pool.charge(100.0, 60.0)
        assert result.delivered_power_w == pytest.approx(0.0)
        assert result.curtailed

    def test_rest_advances_everyone(self):
        units = make_units(2)
        pool = BatteryPool(units)
        pool.rest(hours(2))
        assert all(u.time_s == pytest.approx(hours(2)) for u in units)
