"""Unit tests for the aging-hiding scheduler (Fig. 8)."""

import pytest

from repro.core.controller import BAATController
from repro.core.scheduler import AgingHidingScheduler
from repro.datacenter.cluster import Cluster
from repro.datacenter.node import Node
from repro.datacenter.vm import VM
from repro.datacenter.workloads import PAPER_WORKLOADS, WorkloadProfile
from repro.errors import SchedulingError
from repro.metrics.weighted import MetricWeights


@pytest.fixture
def cluster():
    return Cluster([Node.build(f"node{i}") for i in range(3)])


@pytest.fixture
def scheduler(cluster):
    return AgingHidingScheduler(cluster, BAATController(cluster))


def stress(node, hours_deep=4.0):
    for _ in range(int(hours_deep * 4)):
        node.battery.discharge(120.0, 900.0)
        node.observe_battery(900.0)


def light_vm(name):
    profile = WorkloadProfile(
        name=f"wl-{name}", mean_util=0.3, burst_util=0.0, period_s=3600.0,
        burstiness=0.0,
    )
    return VM(name=name, workload=profile)


class TestProfiling:
    def test_weights_derived_from_table3(self, scheduler, cluster):
        vm = VM(name="heavy", workload=PAPER_WORKLOADS["software_testing"])
        weights = scheduler.profile_weights(vm, cluster.nodes[0])
        assert isinstance(weights, MetricWeights)
        # A large-power, more-energy workload weights every metric High.
        assert weights.nat == weights.cf == weights.pc == 0.5

    def test_light_workload_cf_weight_low(self, scheduler, cluster):
        """Small-power workloads weight CF Low in both Table-3 rows."""
        vm = light_vm("light")
        weights = scheduler.profile_weights(vm, cluster.nodes[0])
        assert weights.cf == pytest.approx(0.2)


class TestPlacement:
    def test_avoids_stressed_node(self, scheduler, cluster):
        stress(cluster.node("node0"))
        chosen = scheduler.place(light_vm("a"))
        assert chosen != "node0"

    def test_naive_placement_ignores_aging(self, scheduler, cluster):
        stress(cluster.node("node0"))
        # Naive balances by mean utilisation; all empty -> first by name.
        chosen = scheduler.place_naive(light_vm("a"))
        assert chosen == "node0"

    def test_respects_headroom(self, scheduler, cluster):
        heavy = WorkloadProfile(
            name="fat", mean_util=0.9, burst_util=0.0, period_s=3600.0, burstiness=0.0
        )
        for i in range(3):
            scheduler.place(VM(name=f"fat{i}", workload=heavy))
        with pytest.raises(SchedulingError):
            scheduler.place(VM(name="fat3", workload=heavy))

    def test_placements_counted(self, scheduler):
        scheduler.place(light_vm("a"))
        scheduler.place_naive(light_vm("b"))
        assert scheduler.placements == 2


class TestMigrationTarget:
    def test_prefers_healthiest(self, scheduler, cluster):
        stress(cluster.node("node1"))
        stress(cluster.node("node2"), hours_deep=8.0)
        vm = light_vm("a")
        cluster.place(vm, "node2")
        target = scheduler.migration_target(vm, "node2")
        assert target == "node0"

    def test_excludes_source(self, scheduler, cluster):
        vm = light_vm("a")
        cluster.place(vm, "node0")
        target = scheduler.migration_target(vm, "node0")
        assert target != "node0"

    def test_none_when_nothing_fits(self, scheduler, cluster):
        heavy = WorkloadProfile(
            name="fat", mean_util=0.95, burst_util=0.0, period_s=3600.0, burstiness=0.0
        )
        vms = [VM(name=f"fat{i}", workload=heavy) for i in range(3)]
        for vm, node in zip(vms, cluster.nodes):
            cluster.place(vm, node.name)
        target = scheduler.migration_target(vms[0], "node0")
        assert target is None
